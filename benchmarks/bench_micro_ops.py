"""Micro-benchmarks: throughput of the inner-loop primitives.

These are proper pytest-benchmark timings (many iterations) for the
operations the federated inner loop is made of: gradient estimators, the
quadratic prox, weighted aggregation, and the im2col convolution.  Use
them to catch performance regressions; `--benchmark-compare` works.
"""

import numpy as np
import pytest

from repro.core.estimators import make_estimator
from repro.core.proximal import QuadraticProx
from repro.fl.aggregation import weighted_average
from repro.models import MultinomialLogisticModel, make_paper_cnn_model
from repro.nn.im2col import col2im, im2col


@pytest.fixture(scope="module")
def logistic_problem():
    rng = np.random.default_rng(0)
    model = MultinomialLogisticModel(784, 10)
    X = rng.standard_normal((256, 784))
    y = rng.integers(0, 10, 256)
    w = model.init_parameters(0)
    return model, X, y, w


class TestEstimatorThroughput:
    @pytest.mark.parametrize("name", ["sgd", "svrg", "sarah"])
    def test_estimator_step(self, benchmark, name, logistic_problem):
        model, X, y, w = logistic_problem
        est = make_estimator(name)
        full = model.gradient(w, X, y)
        est.start_epoch(w, full)
        batch = slice(0, 32)
        w_t = w + 0.01

        benchmark(lambda: est.estimate(model, X[batch], y[batch], w_t))


class TestProxThroughput:
    def test_quadratic_prox_1m_params(self, benchmark):
        rng = np.random.default_rng(1)
        anchor = rng.standard_normal(1_000_000)
        x = rng.standard_normal(1_000_000)
        prox = QuadraticProx(0.1, anchor)
        benchmark(lambda: prox(x, 0.01))


class TestAggregationThroughput:
    def test_weighted_average_100_clients(self, benchmark):
        rng = np.random.default_rng(2)
        vectors = [rng.standard_normal(10_000) for _ in range(100)]
        weights = rng.uniform(0.5, 2.0, 100)
        out = np.empty(10_000)
        benchmark(lambda: weighted_average(vectors, weights, out=out))


class TestConvThroughput:
    def test_im2col_batch(self, benchmark):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((32, 8, 28, 28))
        benchmark(lambda: im2col(x, (5, 5), stride=1, padding=2))

    def test_col2im_batch(self, benchmark):
        rng = np.random.default_rng(4)
        x_shape = (32, 8, 28, 28)
        cols = rng.standard_normal((8 * 25, 32 * 28 * 28))
        benchmark(lambda: col2im(cols, x_shape, (5, 5), stride=1, padding=2))

    def test_cnn_gradient(self, benchmark):
        model = make_paper_cnn_model((1, 28, 28), 10, channel_scale=0.25, seed=0)
        rng = np.random.default_rng(5)
        X = rng.standard_normal((64, 784))
        y = rng.integers(0, 10, 64)
        w = model.init_parameters(0)
        benchmark(lambda: model.loss_and_gradient(w, X, y))
