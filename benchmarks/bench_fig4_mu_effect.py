"""Fig. 4 — effect of the proximal penalty mu on the Synthetic dataset.

The paper: with mu = 0 the FedProxVR training loss diverges; mu > 0
stabilizes it; larger mu converges more slowly.  We reproduce both
regimes:

* aggressive step size (eta deliberately too large for the data's true
  smoothness): mu = 0 stays stuck at a high loss while mu > 0 converges;
* conservative step size: convergence is monotone in mu — larger mu is
  strictly slower (the smoothness/speed trade-off of Remark 2(2)).
"""

from repro.datasets import make_synthetic
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled


def test_fig4_mu_effect(benchmark, save_json):
    dataset = make_synthetic(
        alpha=3.0, beta=3.0,
        num_devices=scaled(20), num_features=30, num_classes=5,
        min_size=40, max_size=200, seed=1,
    )

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    rounds = scaled(25)

    def run_mu(mu, *, aggressive):
        cfg = FederatedRunConfig(
            algorithm="fedproxvr-svrg",
            num_rounds=rounds,
            num_local_steps=30,
            beta=0.5 if aggressive else 5.0,
            smoothness=1.0 if aggressive else None,
            mu=mu,
            batch_size=16,
            seed=2,
            eval_every=max(1, rounds // 5),
        )
        history, _ = run_federated(dataset, factory, cfg)
        return history

    def experiment():
        return (
            {mu: run_mu(mu, aggressive=True) for mu in (0.0, 1.0, 5.0)},
            {mu: run_mu(mu, aggressive=False) for mu in (0.1, 1.0, 10.0)},
        )

    aggressive, conservative = run_once(benchmark, experiment)

    print("\n=== Fig. 4: proximal penalty mu (Synthetic) ===")
    print("-- aggressive eta: mu=0 unstable, mu>0 converges --")
    for mu, h in aggressive.items():
        print(f"  mu={mu:<4g} loss: " + " ".join(f"{r.train_loss:.3f}" for r in h.records))
    print("-- conservative eta: larger mu slower --")
    for mu, h in conservative.items():
        print(f"  mu={mu:<4g} loss: " + " ".join(f"{r.train_loss:.3f}" for r in h.records))

    # mu = 0 fails to converge where the proximal runs succeed
    loss0 = aggressive[0.0].final("train_loss")
    loss5 = aggressive[5.0].final("train_loss")
    assert loss5 < loss0 * 0.5, "mu>0 must stabilize the aggressive-step run"

    # conservative regime: monotone slowdown with mu
    finals = [conservative[mu].final("train_loss") for mu in (0.1, 1.0, 10.0)]
    assert finals[0] < finals[1] < finals[2], (
        "larger mu must converge more slowly in the stable regime"
    )

    save_json(
        "fig4_mu_effect",
        {
            "aggressive": {str(mu): h.to_dict() for mu, h in aggressive.items()},
            "conservative": {str(mu): h.to_dict() for mu, h in conservative.items()},
        },
    )
