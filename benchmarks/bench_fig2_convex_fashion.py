"""Fig. 2 — convex task (MLR) on the Fashion-MNIST-like dataset.

Paper setting: 100 devices, 2 labels/device, B = 32; panels compare
FedAvg vs FedProxVR(SVRG/SARAH) at (beta=5, tau=10), then (beta=7,
tau=20), and finally at a tau above the Lemma-1 upper bound where the
FedProxVR curves fluctuate.

Reduced scale: fewer devices/samples/rounds (see conftest.SCALE); the
comparisons and orderings are what we reproduce, not absolute accuracy.
"""

import numpy as np

from repro.datasets import make_fashion
from repro.fl.history import format_comparison
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled


ALGOS = [("fedavg", 0.0), ("fedproxvr-svrg", 0.1), ("fedproxvr-sarah", 0.1)]


def _dataset():
    return make_fashion(
        num_devices=scaled(20),
        num_samples=scaled(2400),
        labels_per_device=2,
        min_size=37,
        max_size=270,
        seed=0,
    )


def _run_setting(dataset, beta, tau, rounds, seed=1):
    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    histories = {}
    for algo, mu in ALGOS:
        cfg = FederatedRunConfig(
            algorithm=algo,
            num_rounds=rounds,
            num_local_steps=tau,
            beta=beta,
            mu=mu,
            batch_size=32,
            seed=seed,
            eval_every=max(1, rounds // 6),
        )
        histories[algo], _ = run_federated(dataset, factory, cfg)
    return histories


def test_fig2_convex_fashion(benchmark, save_json):
    dataset = _dataset()
    rounds = scaled(30)

    def experiment():
        return {
            "beta5_tau10": _run_setting(dataset, beta=5.0, tau=10, rounds=rounds),
            "beta7_tau20": _run_setting(dataset, beta=7.0, tau=20, rounds=rounds),
        }

    results = run_once(benchmark, experiment)

    print(f"\n=== Fig. 2: convex task on {dataset.name} ===")
    print(dataset.summary())
    for setting, histories in results.items():
        print(f"--- {setting} ---")
        for algo, h in histories.items():
            losses = " ".join(f"{r.train_loss:.4f}" for r in h.records)
            print(f"  {algo:>18s} loss: {losses}  | final acc {h.final('test_accuracy'):.4f}")
        print(format_comparison(list(histories.values())))

    # Shape 1: FedProxVR matches-or-beats FedAvg at matched settings.
    for setting, histories in results.items():
        avg = histories["fedavg"].final("train_loss")
        for algo in ("fedproxvr-svrg", "fedproxvr-sarah"):
            assert histories[algo].final("train_loss") <= avg * 1.03, (
                f"{algo} should not trail FedAvg materially at {setting}"
            )

    # Shape 2: the larger (beta, tau) setting converges further for every
    # algorithm (the paper's second observation).
    for algo, _ in ALGOS:
        assert (
            results["beta7_tau20"][algo].final("train_loss")
            < results["beta5_tau10"][algo].final("train_loss")
        )

    save_json(
        "fig2_convex_fashion",
        {
            setting: {algo: h.to_dict() for algo, h in hs.items()}
            for setting, hs in results.items()
        },
    )


def test_fig2_tau_above_bound_fluctuates(benchmark, save_json):
    """The paper's third observation: pushing tau above the Lemma 1
    upper bound makes the FedProxVR learning curve fluctuate more."""
    dataset = _dataset()
    rounds = scaled(24)
    beta = 4.0  # SARAH upper bound: (5*16-16)/8 = 8

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    def run_tau(tau, seed=2):
        cfg = FederatedRunConfig(
            algorithm="fedproxvr-sarah",
            num_rounds=rounds,
            num_local_steps=tau,
            beta=beta,
            # Effective L below the data's worst case — the regime where
            # the tau bound actually binds (with the conservative
            # worst-case L, every tau is stable and the effect vanishes).
            smoothness=5.0,
            mu=0.1,
            batch_size=32,
            seed=seed,
            eval_every=1,
        )
        history, _ = run_federated(dataset, factory, cfg)
        return history

    def experiment():
        return run_tau(8), run_tau(120)

    within, above = run_once(benchmark, experiment)

    def roughness(history):
        """Mean positive loss increment — zero for monotone curves."""
        losses = np.array(history.series("train_loss"))
        diffs = np.diff(losses)
        return float(np.clip(diffs, 0.0, None).mean())

    r_within, r_above = roughness(within), roughness(above)
    print("\n=== Fig. 2 (c): tau above the Lemma-1 bound ===")
    print(f"  tau=8   (within bound): roughness {r_within:.6f}, "
          f"final loss {within.final('train_loss'):.4f}")
    print(f"  tau=120 (above bound) : roughness {r_above:.6f}, "
          f"final loss {above.final('train_loss'):.4f}")

    assert r_above > r_within, (
        "a tau far above the Lemma-1 bound must make the curve fluctuate"
    )
    # ... and 15x the local work bought no better final loss.
    assert above.final("train_loss") > within.final("train_loss") * 0.95

    save_json(
        "fig2_tau_above_bound",
        {"within": within.to_dict(), "above": above.to_dict(),
         "roughness": {"within": r_within, "above": r_above}},
    )
