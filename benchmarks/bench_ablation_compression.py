"""Ablation — communication compression of local model updates.

Measures accuracy-vs-bandwidth when the devices' updates are compressed
before aggregation (top-k sparsification, 8-bit quantization, 1-bit
sign), against the uncompressed FedProxVR baseline.  Expected shape:
quantization is nearly free, top-k costs a little accuracy for order(s)
of magnitude less traffic, sign compression is the extreme point.
"""

import numpy as np

from repro.core.local import FedProxVRLocalSolver
from repro.datasets import make_synthetic
from repro.fl.client import Client
from repro.fl.compression import (
    IdentityCompressor,
    SignCompressor,
    TopKSparsifier,
    UniformQuantizer,
    compress_round,
)
from repro.fl.metrics import global_loss_and_gradient_norm
from repro.fl.aggregation import weighted_average
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled

COMPRESSORS = {
    "none": IdentityCompressor(),
    "quant8": UniformQuantizer(8),
    "topk10%": TopKSparsifier(fraction=0.10),
    "sign1bit": SignCompressor(),
}


def test_ablation_update_compression(benchmark, save_json):
    dataset = make_synthetic(
        alpha=1.0, beta=1.0,
        num_devices=scaled(12), num_features=30, num_classes=5,
        min_size=40, max_size=150, seed=0,
    )
    model = MultinomialLogisticModel(dataset.num_features, dataset.num_classes)
    X_all, y_all = dataset.global_train()
    L = model.smoothness(X_all)
    solver = FedProxVRLocalSolver(
        step_size=1.0 / (5 * L), num_steps=10, batch_size=16, mu=0.1,
        estimator="sarah", evaluate_final=False,
    )
    clients = [
        Client(d.device_id, d, model, solver, base_seed=3) for d in dataset.devices
    ]
    weights = dataset.weights()
    rounds = scaled(25)

    def train_with(compressor):
        w = model.init_parameters(0)
        ratios = []
        for s in range(1, rounds + 1):
            locals_ = [c.local_update(w, s).w_local for c in clients]
            reconstructed, ratio = compress_round(locals_, w, compressor)
            ratios.append(ratio)
            w = weighted_average(reconstructed, weights)
        loss, grad_norm = global_loss_and_gradient_norm(model, clients, w)
        return {
            "final_loss": loss,
            "grad_norm": grad_norm,
            "compression_ratio": float(np.mean(ratios)),
        }

    def experiment():
        return {name: train_with(comp) for name, comp in COMPRESSORS.items()}

    results = run_once(benchmark, experiment)

    print("\n=== Ablation: update compression (FedProxVR-SARAH) ===")
    print(f"{'scheme':>10s} {'final loss':>12s} {'|grad|':>10s} {'ratio':>8s}")
    for name, r in results.items():
        print(
            f"{name:>10s} {r['final_loss']:12.5f} {r['grad_norm']:10.4f} "
            f"{r['compression_ratio']:8.1f}x"
        )

    base = results["none"]["final_loss"]
    # 8-bit quantization is essentially free
    assert results["quant8"]["final_loss"] <= base * 1.05
    # every lossy scheme actually saves bandwidth, sign most of all
    for name in ("quant8", "topk10%", "sign1bit"):
        assert results[name]["compression_ratio"] > 4.0, name
    assert results["sign1bit"]["compression_ratio"] > max(
        results["quant8"]["compression_ratio"],
        results["topk10%"]["compression_ratio"],
    )
    # aggressiveness costs accuracy monotonically: none/quant8 <= topk <= sign
    assert results["topk10%"]["final_loss"] <= results["sign1bit"]["final_loss"]
    # every scheme still trains (loss below the initial ~log(5))
    for name, r in results.items():
        assert r["final_loss"] < np.log(5), f"{name} failed to train"

    save_json("ablation_compression", results)
