"""Lemma 1 / Remark 1 numerics: the tau-bound geometry and the
SARAH-vs-SVRG gap, as a table the analysis sections reference.

Not a paper figure per se, but the quantitative backbone of Remarks 1
and 2 — reported so a reader can see the feasibility windows that the
experiment configurations were drawn from.
"""

import numpy as np

from repro.core import theory
from repro.core.theory import ProblemConstants
from repro.exceptions import InfeasibleParametersError

from conftest import run_once

CONST = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=0.0)


def test_lemma1_bound_geometry(benchmark, save_json):
    betas = [5.0, 7.0, 10.0, 20.0, 50.0]
    thetas = [0.3, 0.5, 0.9]
    mu = 2.0

    def experiment():
        rows = []
        for beta in betas:
            for theta in thetas:
                lo = theory.tau_lower_bound(beta, theta, mu, CONST)
                hi_sarah = theory.tau_upper_bound_sarah(beta)
                hi_svrg = theory.tau_upper_bound_svrg(beta)
                rows.append(
                    {
                        "beta": beta,
                        "theta": theta,
                        "tau_lower": lo,
                        "tau_upper_sarah": hi_sarah,
                        "tau_upper_svrg": hi_svrg,
                        "feasible_sarah": lo <= hi_sarah,
                    }
                )
        return rows

    rows = run_once(benchmark, experiment)

    print("\n=== Lemma 1 tau-bound geometry (L=1, lambda=0.5, mu=2) ===")
    print(f"{'beta':>6} {'theta':>6} {'lower':>10} {'upper(SARAH)':>13} "
          f"{'upper(SVRG)':>12} {'SARAH ok':>9}")
    for r in rows:
        print(
            f"{r['beta']:6.1f} {r['theta']:6.2f} {r['tau_lower']:10.1f} "
            f"{r['tau_upper_sarah']:13.1f} {r['tau_upper_svrg']:12.1f} "
            f"{str(r['feasible_sarah']):>9}"
        )

    # SVRG upper bound always at most SARAH's (Remark 1(5))
    assert all(r["tau_upper_svrg"] <= r["tau_upper_sarah"] for r in rows)
    # larger beta eventually makes SARAH feasible for every theta here
    for theta in [0.3, 0.5, 0.9]:
        last = [r for r in rows if r["theta"] == theta][-1]
        assert last["feasible_sarah"]

    save_json("theory_bounds", rows)


def test_beta_min_table(benchmark, save_json):
    """Remark 1(3): beta_min and the matched tau* across theta."""
    thetas = np.linspace(0.2, 0.9, 8)
    mu = 2.0

    def experiment():
        rows = []
        for theta in thetas:
            beta = theory.beta_min(float(theta), mu, CONST)
            rows.append(
                {
                    "theta": float(theta),
                    "beta_min": beta,
                    "tau_star": theory.tau_star_sarah(beta),
                }
            )
        return rows

    rows = run_once(benchmark, experiment)

    print("\n=== Remark 1(3): beta_min(theta) and tau* (SARAH, mu=2) ===")
    for r in rows:
        print(f"  theta={r['theta']:.3f}  beta_min={r['beta_min']:9.3f}  "
              f"tau*={r['tau_star']:10.1f}")

    b = [r["beta_min"] for r in rows]
    assert all(x > y for x, y in zip(b, b[1:])), "beta_min must fall as theta rises"

    save_json("theory_beta_min", rows)


def test_svrg_feasibility_frontier(benchmark, save_json):
    """Where does SVRG's Lemma-1 system become feasible at all?"""
    mu = 30.0
    thetas = [0.5, 0.7, 0.8, 0.9, 0.95]

    def experiment():
        rows = []
        for theta in thetas:
            try:
                beta = theory.beta_min(theta, mu, CONST, estimator="svrg", beta_max=1e6)
                rows.append({"theta": theta, "beta_min_svrg": beta, "feasible": True})
            except InfeasibleParametersError:
                rows.append({"theta": theta, "beta_min_svrg": None, "feasible": False})
        return rows

    rows = run_once(benchmark, experiment)
    print("\n=== SVRG feasibility frontier (mu=30) ===")
    for r in rows:
        print(f"  theta={r['theta']:.2f}  feasible={r['feasible']}  "
              f"beta_min={r['beta_min_svrg']}")
    # feasibility is monotone: once feasible, stays feasible at looser theta
    flags = [r["feasible"] for r in rows]
    assert flags == sorted(flags), "SVRG feasibility must be monotone in theta"
    save_json("theory_svrg_frontier", rows)
