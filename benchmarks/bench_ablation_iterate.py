"""Ablation — Alg. 1 line 10's iterate selection rule.

The analysis requires returning a uniformly random iterate; practical
implementations return the last one.  This ablation quantifies the gap
(and the averaged-iterate middle ground) on the convex task.
"""

from repro.datasets import make_synthetic
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled

MODES = ("last", "average", "random")


def test_ablation_iterate_selection(benchmark, save_json):
    dataset = make_synthetic(
        alpha=1.0, beta=1.0,
        num_devices=scaled(15), num_features=30, num_classes=5,
        min_size=40, max_size=150, seed=0,
    )

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    rounds = scaled(30)

    def run_mode(mode):
        cfg = FederatedRunConfig(
            algorithm="fedproxvr-sarah",
            num_rounds=rounds,
            num_local_steps=15,
            beta=5.0,
            mu=0.1,
            batch_size=16,
            seed=6,
            eval_every=max(1, rounds // 6),
            solver_kwargs={"iterate_selection": mode},
        )
        history, _ = run_federated(dataset, factory, cfg)
        return history

    def experiment():
        return {mode: run_mode(mode) for mode in MODES}

    histories = run_once(benchmark, experiment)

    print("\n=== Ablation: iterate selection (Alg. 1 line 10) ===")
    for mode, h in histories.items():
        losses = " ".join(f"{r.train_loss:.4f}" for r in h.records)
        print(f"  {mode:>8s}: {losses}")

    # Everything converges; 'last' converges at least as fast as 'random'
    for mode, h in histories.items():
        assert h.final("train_loss") < h.records[0].train_loss, mode
    assert (
        histories["last"].final("train_loss")
        <= histories["random"].final("train_loss") + 1e-9
    )

    save_json(
        "ablation_iterate_selection",
        {m: h.to_dict() for m, h in histories.items()},
    )
