"""Table 1 — best-hyperparameter comparison on a convex task.

The paper runs a random search over (tau, beta, mu, B) per algorithm and
reports each algorithm's best test accuracy.  Expected shape: all three
algorithms land close together, with FedProxVR variants matching or
nudging past FedAvg (paper: 84.02 / 84.12 / 84.21 %).
"""

from repro.fl.tuning import SearchSpace, compare_algorithms, format_table
from repro.datasets import make_fashion
from repro.fl.runner import FederatedRunConfig
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled

ALGORITHMS = ["fedavg", "fedproxvr-svrg", "fedproxvr-sarah"]


def test_table1_convex_random_search(benchmark, save_json):
    dataset = make_fashion(
        num_devices=scaled(15),
        num_samples=scaled(1800),
        labels_per_device=2,
        min_size=37,
        max_size=260,
        seed=0,
    )

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    # Small enough that num_trials covers the FULL grid for every
    # algorithm: the comparison is exhaustive, not a lucky-draw contest.
    space = SearchSpace(
        tau=(10, 20), beta=(5.0, 10.0), mu=(0.0, 0.1), batch_size=(32,)
    )

    def experiment():
        return compare_algorithms(
            ALGORITHMS,
            dataset,
            factory,
            space=space,
            num_trials=space.size(),
            num_rounds=scaled(30),
            base_config=FederatedRunConfig(seed=3, eval_every=4),
            seed=7,
        )

    reports = run_once(benchmark, experiment)

    print("\n" + format_table(reports, f"Table 1 (convex, {dataset.name})"))

    best = {r.algorithm: r.best for r in reports}
    # Everyone learns far above chance.
    for algo, trial in best.items():
        assert trial.best_accuracy > 0.4, f"{algo} best acc too low"
    # FedProxVR's best is at least competitive with FedAvg's best.
    fedavg_acc = best["fedavg"].best_accuracy
    vr_best = max(
        best["fedproxvr-svrg"].best_accuracy, best["fedproxvr-sarah"].best_accuracy
    )
    assert vr_best >= fedavg_acc - 0.02

    save_json(
        "table1_convex_search",
        {
            r.algorithm: {
                "best_params": r.best.params,
                "best_accuracy": r.best.best_accuracy,
                "trials": [
                    {"params": t.params, "accuracy": t.best_accuracy}
                    for t in r.trials
                ],
            }
            for r in reports
        },
    )
