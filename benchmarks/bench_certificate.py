"""Theory-vs-practice: does Theorem 1's certificate hold empirically?

This is the paper's "experimental results ... validate the theoretical
convergence" claim, made quantitative: measure the problem constants on
a real federation, assemble Corollary 1's predicted iteration count for
a target stationarity eps, run FedProxVR, and check that the *measured*
mean squared gradient norm at the predicted T is within the bound
(Theorem 1 is an upper bound, so measured <= predicted must hold — and
typically holds with a large margin, since the constants are worst-case).
"""

import numpy as np

from repro.core import theory
from repro.core.certificates import certificate_report, measure_constants
from repro.datasets import make_synthetic
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled


def test_certificate_upper_bounds_measured_convergence(benchmark, save_json):
    dataset = make_synthetic(
        alpha=0.5, beta=0.5,
        num_devices=scaled(10), num_features=20, num_classes=4,
        min_size=40, max_size=120, seed=3,
    )

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    theta = 0.05
    rounds = scaled(40)

    def experiment():
        model = factory()
        w0 = model.init_parameters(0)
        consts = measure_constants(model, dataset, w0=w0, seed=0)
        pc = consts.to_problem_constants()
        mu = theory.best_mu_for_theta(theta, pc)
        factor = theory.federated_factor(theta, mu, pc)
        predicted_msq = theory.stationarity_bound(
            consts.delta0, theta, mu, pc, T=rounds
        )

        cfg = FederatedRunConfig(
            algorithm="fedproxvr-sarah",
            num_rounds=rounds,
            num_local_steps=20,
            beta=5.0,
            mu=min(mu, 10.0),  # theory's mu is worst-case huge; cap for practice
            batch_size=16,
            seed=4,
            eval_every=1,
        )
        history, _ = run_federated(dataset, factory, cfg, w0=w0)
        measured_msq = float(np.mean(np.square(history.series("grad_norm"))))
        return consts, mu, factor, predicted_msq, measured_msq, history

    consts, mu, factor, predicted, measured, history = run_once(benchmark, experiment)

    print("\n=== Convergence certificate vs measurement ===")
    print(certificate_report(consts, theta=theta, mu=mu, eps=0.01))
    print(f"  Theorem 1 bound on mean ||grad F||^2 after T={rounds}: {predicted:.4g}")
    print(f"  measured mean ||grad F||^2 over the run            : {measured:.4g}")

    assert factor > 0, "certificate must be feasible on this benign federation"
    assert measured <= predicted, (
        "Theorem 1 is an upper bound; the measured stationarity gap must not exceed it"
    )

    save_json(
        "certificate",
        {
            "constants": vars(consts),
            "theta": theta,
            "mu_certificate": mu,
            "federated_factor": factor,
            "predicted_mean_sq_grad": predicted,
            "measured_mean_sq_grad": measured,
            "history": history.to_dict(),
        },
    )
