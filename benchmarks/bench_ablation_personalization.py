"""Ablation — Moreau-envelope personalization (pFedMe-style extension).

On pathologically non-IID data (2 labels/device), a single global model
is structurally limited; the personalized solver's *per-device* models
should beat the global model on each device's own test shard, while the
personalized global model remains competitive with FedProxVR's.
"""

import numpy as np

from repro.core.local import PersonalizedProxLocalSolver
from repro.datasets import make_synthetic
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled


def test_ablation_personalization(benchmark, save_json):
    dataset = make_synthetic(
        alpha=2.0, beta=2.0,
        num_devices=scaled(12), num_features=30, num_classes=5,
        min_size=60, max_size=200, seed=0,
    )

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    rounds = scaled(30)

    def experiment():
        base = dict(
            num_rounds=rounds, num_local_steps=15, beta=5.0,
            batch_size=16, seed=3, eval_every=rounds,
        )
        h_global, w_global = run_federated(
            dataset, factory,
            FederatedRunConfig(algorithm="fedproxvr-svrg", mu=0.5, **base),
        )
        h_pfedme, w_pfedme = run_federated(
            dataset, factory,
            FederatedRunConfig(
                algorithm="pfedme", mu=0.5,
                solver_kwargs={"global_lr": 1.0}, **base,
            ),
        )
        # Personalize from the trained pFedMe global model and compare
        # per-device test accuracy: personalized theta_n vs global w.
        model = factory()
        X_all, _ = dataset.global_train()
        L = model.smoothness(X_all)
        personalizer = PersonalizedProxLocalSolver(
            step_size=1.0 / (5 * L), num_steps=60, batch_size=16, mu=0.5,
        )
        per_device = []
        for dev in dataset.devices:
            if dev.num_test == 0:
                continue
            theta = personalizer.personalized_model(
                model, dev.X_train, dev.y_train, w_pfedme,
                np.random.default_rng(dev.device_id),
            )
            per_device.append(
                {
                    "device": dev.device_id,
                    "global_acc": model.accuracy(w_pfedme, dev.X_test, dev.y_test),
                    "personalized_acc": model.accuracy(theta, dev.X_test, dev.y_test),
                }
            )
        return h_global, h_pfedme, per_device

    h_global, h_pfedme, per_device = run_once(benchmark, experiment)

    global_acc = float(np.mean([d["global_acc"] for d in per_device]))
    personalized_acc = float(np.mean([d["personalized_acc"] for d in per_device]))

    print("\n=== Ablation: personalization (pFedMe-style) ===")
    print(f"  FedProxVR global model  : loss {h_global.final('train_loss'):.4f} "
          f"acc {h_global.final('test_accuracy'):.4f}")
    print(f"  pFedMe global model     : loss {h_pfedme.final('train_loss'):.4f} "
          f"acc {h_pfedme.final('test_accuracy'):.4f}")
    print(f"  per-device mean accuracy: global {global_acc:.4f} -> "
          f"personalized {personalized_acc:.4f}")

    # personalization must help on non-IID shards, and substantially
    assert personalized_acc > global_acc + 0.02
    # the personalized-training global model still trains
    assert h_pfedme.final("train_loss") < h_pfedme.records[0].train_loss * 1.01

    save_json(
        "ablation_personalization",
        {
            "global_history": h_global.to_dict(),
            "pfedme_history": h_pfedme.to_dict(),
            "per_device": per_device,
            "mean_global_acc": global_acc,
            "mean_personalized_acc": personalized_acc,
        },
    )
