"""Shared benchmark infrastructure.

Each bench_* file regenerates one table or figure of the paper at a
reduced, laptop-friendly scale (see DESIGN.md §4 for the mapping), prints
the paper-style rows/series, asserts the qualitative *shape*, and writes
a JSON artifact into ``benchmarks/results/``.

Benchmarks run their experiment exactly once inside
``benchmark.pedantic`` — the timing numbers locate the compute cost; the
scientific content is in the printed series and saved artifacts.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_json(results_dir):
    def _save(name: str, payload) -> Path:
        path = results_dir / f"{name}.json"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, default=float)
        return path

    return _save


def run_once(benchmark, fn):
    """Execute ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


# Scale knob: CI=1 keeps everything under ~10 min total; larger values
# approach the paper's scales (REPRO_BENCH_SCALE=4 roughly quadruples
# devices/samples/rounds).
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))


def scaled(base: int, minimum: int = 1) -> int:
    """Scale an integer workload parameter by REPRO_BENCH_SCALE."""
    return max(minimum, int(round(base * SCALE)))
