"""Micro-benchmark: sequential vs thread-pool client execution.

Semantics are identical (asserted by the test suite); this bench
measures the wall-clock effect of running clients concurrently when the
gradient work is BLAS-heavy and releases the GIL.  A companion
telemetry pass records the per-executor straggler gap (max − median
client seconds, from the executors' ``local_solve`` spans) through the
``repro.obs`` metrics CSV sink into ``benchmarks/results/``.
"""

import numpy as np
import pytest

from repro.core.local import FedAvgLocalSolver
from repro.datasets import make_synthetic
from repro.fl.client import Client
from repro.fl.executor import SequentialExecutor, ThreadPoolClientExecutor
from repro.models import MultinomialLogisticModel
from repro.obs import CsvMetricsSink, telemetry


@pytest.fixture(scope="module")
def federation():
    dataset = make_synthetic(
        alpha=1.0, beta=1.0, num_devices=8, num_features=400,
        num_classes=10, min_size=400, max_size=800, seed=0,
    )
    solver = FedAvgLocalSolver(step_size=0.001, num_steps=10, batch_size=128)

    def clients():
        return [
            Client(
                d.device_id,
                d,
                MultinomialLogisticModel(dataset.num_features, dataset.num_classes),
                solver,
                base_seed=0,
            )
            for d in dataset.devices
        ]

    w0 = MultinomialLogisticModel(
        dataset.num_features, dataset.num_classes
    ).init_parameters(0)
    return clients, w0


def test_sequential_round(benchmark, federation):
    clients_fn, w0 = federation
    clients = clients_fn()
    executor = SequentialExecutor()
    benchmark(lambda: executor.run_round(clients, w0, 1))


def test_threaded_round(benchmark, federation):
    clients_fn, w0 = federation
    clients = clients_fn()
    with ThreadPoolClientExecutor(max_workers=4) as executor:
        benchmark(lambda: executor.run_round(clients, w0, 1))


def test_straggler_gap_csv(federation, results_dir):
    """Record sequential vs thread-pool straggler gaps via the CSV sink."""
    clients_fn, w0 = federation
    out_path = results_dir / "micro_executor_straggler.csv"
    telemetry.configure([CsvMetricsSink(str(out_path))])
    try:
        executors = {
            "sequential": SequentialExecutor(),
            "thread": ThreadPoolClientExecutor(max_workers=4),
        }
        gaps = {}
        try:
            for name, executor in executors.items():
                clients = clients_fn()
                executor.run_round(clients, w0, 1)
                secs = executor.last_client_seconds
                assert secs is not None and len(secs) == len(clients)
                gap = max(secs) - float(np.median(secs))
                gaps[name] = gap
                telemetry.gauge_set("bench.executor.straggler_gap", gap, key=name)
                telemetry.gauge_set(
                    "bench.executor.round_seconds", sum(secs), key=name
                )
        finally:
            for executor in executors.values():
                executor.close()
    finally:
        telemetry.shutdown()
    assert out_path.exists()
    header = out_path.read_text(encoding="utf-8").splitlines()[0]
    assert header.startswith("scope,round,metric")
    assert all(g >= 0.0 for g in gaps.values())
    print("straggler gaps:", {k: f"{v:.6f}s" for k, v in gaps.items()})
