"""Multi-seed significance check of the headline comparison.

The paper's figures are single runs; this bench replicates the Fig. 2
convex comparison across seeds and reports the *paired* per-seed
advantage of FedProxVR over FedAvg (same seeds ⇒ same initialization
and client data order, isolating the algorithmic difference).  The
claim holds when the mean paired advantage is positive and FedProxVR
wins on (almost) every seed.
"""

from repro.analysis import compare_replicated, paired_seed_advantage, summarize
from repro.datasets import make_synthetic
from repro.fl.runner import FederatedRunConfig
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled


def test_multiseed_fedproxvr_vs_fedavg(benchmark, save_json):
    dataset = make_synthetic(
        alpha=1.0, beta=1.0,
        num_devices=scaled(12), num_features=30, num_classes=5,
        min_size=40, max_size=150, seed=0,
    )

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    rounds = scaled(25)
    base = dict(
        num_rounds=rounds, num_local_steps=15, beta=5.0,
        batch_size=16, eval_every=max(1, rounds // 5),
    )
    configs = {
        "fedavg": FederatedRunConfig(algorithm="fedavg", mu=0.0, **base),
        "fedproxvr-sarah": FederatedRunConfig(
            algorithm="fedproxvr-sarah", mu=0.1, **base
        ),
    }
    seeds = list(range(scaled(5)))

    def experiment():
        return compare_replicated(dataset, factory, configs, seeds=seeds)

    runs = run_once(benchmark, experiment)

    stats = paired_seed_advantage(
        runs["fedproxvr-sarah"], runs["fedavg"], metric="train_loss"
    )
    print("\n=== Multi-seed paired comparison (train loss) ===")
    print(summarize(runs))
    print(
        f"\npaired advantage of FedProxVR-SARAH over FedAvg: "
        f"{stats['mean_advantage']:.5f} +- {stats['std_advantage']:.5f} "
        f"(win fraction {stats['win_fraction']:.2f} over {stats['num_seeds']} seeds)"
    )

    assert stats["mean_advantage"] > 0, "FedProxVR must win on average"
    assert stats["win_fraction"] >= 0.8, "FedProxVR must win on nearly every seed"

    save_json(
        "multiseed_significance",
        {
            "paired_stats": stats,
            "final_losses": {
                label: run.final_values("train_loss").tolist()
                for label, run in runs.items()
            },
        },
    )
