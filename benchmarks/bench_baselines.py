"""Related-work panorama: every implemented algorithm on one task.

Not a single paper figure, but the comparison the related-work section
(§2) sets up: FedAvg [20], FedProx [16], FSVRG [12], full GD [31], and
the paper's FedProxVR variants, all at matched ``(beta, tau, B)`` on the
heterogeneous convex task.  Expected shape: the variance-reduced
proximal methods lead; FSVRG (global anchor, no prox) is competitive;
GD converges but would be far slower in eq.-(19) time (see
``bench_gd_compute_cost``).
"""

from repro.fl.fsvrg import run_fsvrg
from repro.datasets import make_synthetic
from repro.fl.history import format_comparison
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled

FEDERATED_ALGOS = [
    ("fedavg", 0.0),
    ("fedprox", 0.1),
    ("fedproxvr-sgd", 0.1),
    ("fedproxvr-svrg", 0.1),
    ("fedproxvr-sarah", 0.1),
    ("gd", 0.1),
]


def test_baseline_panorama(benchmark, save_json):
    dataset = make_synthetic(
        alpha=1.0, beta=1.0,
        num_devices=scaled(15), num_features=30, num_classes=5,
        min_size=40, max_size=150, seed=0,
    )

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    rounds = scaled(30)

    def experiment():
        histories = {}
        for algo, mu in FEDERATED_ALGOS:
            cfg = FederatedRunConfig(
                algorithm=algo,
                num_rounds=rounds,
                num_local_steps=15,
                beta=5.0,
                mu=mu,
                batch_size=16,
                seed=5,
                eval_every=max(1, rounds // 5),
            )
            histories[algo], _ = run_federated(dataset, factory, cfg)
        fsvrg_cfg = FederatedRunConfig(
            num_rounds=rounds, num_local_steps=15, beta=5.0,
            batch_size=16, seed=5, eval_every=max(1, rounds // 5),
        )
        histories["fsvrg"], _ = run_fsvrg(dataset, factory, fsvrg_cfg)
        return histories

    histories = run_once(benchmark, experiment)

    print(f"\n=== Related-work panorama on {dataset.name} (T={rounds}) ===")
    print(format_comparison(list(histories.values())))

    final = {name: h.final("train_loss") for name, h in histories.items()}
    # every algorithm converges
    for name, h in histories.items():
        assert h.final("train_loss") < h.records[0].train_loss, name
    # the paper's methods lead the SGD-based baselines at matched settings
    best_vr = min(final["fedproxvr-svrg"], final["fedproxvr-sarah"])
    assert best_vr <= final["fedavg"] + 1e-9
    assert best_vr <= final["fedprox"] + 1e-9

    save_json(
        "baseline_panorama", {name: h.to_dict() for name, h in histories.items()}
    )
