"""The introduction's compute argument: GD vs stochastic local solvers.

The paper motivates (VR-)SGD over GD because GD's per-step cost "scales
linearly with respect to the number of data samples" — prohibitive for
battery-limited devices.  This bench makes that claim quantitative in
the simulated-time model of eq. (19): at matched convergence quality,
GD's training time is dominated by compute while FedProxVR's is
dominated by communication.
"""

from repro.datasets import make_synthetic
from repro.fl.delays import make_uniform_delays
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import MultinomialLogisticModel

from conftest import run_once, scaled


def test_gd_compute_cost(benchmark, save_json):
    dataset = make_synthetic(
        alpha=1.0, beta=1.0,
        num_devices=scaled(10), num_features=30, num_classes=5,
        min_size=200, max_size=600, seed=0,
    )
    # One minibatch-gradient evaluation costs 5% of a round trip: the
    # regime where local compute is non-negligible (gamma = 0.05).
    delays = make_uniform_delays(dataset.num_devices, d_cmp=5e-2, d_com=1.0)

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    rounds = scaled(20)

    def run_algo(algo, tau, mu):
        cfg = FederatedRunConfig(
            algorithm=algo,
            num_rounds=rounds,
            num_local_steps=tau,
            beta=3.0,
            mu=mu,
            batch_size=32,
            seed=1,
            eval_every=rounds,
            delay_model=delays,
        )
        history, _ = run_federated(dataset, factory, cfg)
        return history

    def experiment():
        return {
            # GD: few local steps, each a full pass over D_n samples
            "gd": run_algo("gd", tau=10, mu=0.1),
            # FedProxVR: same number of parameter updates on minibatches
            "fedproxvr-sarah": run_algo("fedproxvr-sarah", tau=10, mu=0.1),
        }

    results = run_once(benchmark, experiment)

    print("\n=== Intro claim: GD vs FedProxVR compute cost (eq. 19 time) ===")
    rows = {}
    for algo, h in results.items():
        rows[algo] = {
            "final_loss": h.final("train_loss"),
            "sim_time": h.final("sim_time"),
            "mean_grad_evals_per_round": h.final("mean_gradient_evaluations"),
        }
        print(
            f"  {algo:>16s}: final loss {rows[algo]['final_loss']:.4f}  "
            f"simulated time {rows[algo]['sim_time']:10.2f}  "
            f"(grad-evals/round {rows[algo]['mean_grad_evals_per_round']:.0f})"
        )

    # GD reaches a similar loss but pays far more simulated time, because
    # each of its steps costs a full local pass.
    assert rows["gd"]["sim_time"] > 3 * rows["fedproxvr-sarah"]["sim_time"]
    assert rows["gd"]["final_loss"] < 2.0  # GD does converge; it is just slow

    save_json("gd_compute_cost", rows)
