"""Tooling benchmark — reprolint whole-program analysis cost.

The v2 engine does strictly more work per run than the v1 per-file
rules (project index construction, CFG + fixpoint dataflow per file),
so this benchmark locates where the time goes and guards against the
linter becoming a tax on tier-1 pytest, which runs the full suite as a
gate.  Phases timed separately over the real ``src/`` tree:

* parse       — reading + ``ast.parse`` for every file,
* index       — :class:`ProjectIndex` (symbols, import graph, calls),
* dataflow    — CFG build + provenance fixpoint for every module,
* shapes      — the v4 shape/dtype abstract interpretation fixpoint,
* v3 lint     — the engine with every pre-v4 family (no ``arrays``),
* full lint   — the end-to-end engine with every rule family on.

Expected shape: parse and index are linear sweeps and cheap; dataflow
and shapes dominate among the analysis phases; the full lint stays
within an order of magnitude of a bare parse (it is all stdlib ``ast``,
no I/O beyond the source read) and within 2x of the v3 family set —
the gate that keeps the RL9xx domain from becoming a tax on tier-1
pytest.
"""

import dataclasses
import time
from pathlib import Path

from tools.reprolint.config import ALL_FAMILIES, load_config
from tools.reprolint.dataflow import ModuleDataflow
from tools.reprolint.engine import (
    _parse_file,
    build_index,
    iter_python_files,
    lint_paths,
)
from tools.reprolint.shapes import ModuleShapes

from conftest import run_once

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_reprolint_phases(benchmark, save_json):
    # The committed [tool.reprolint] config, so the clean-tree assertion
    # sees the same layer map / families the CI lint step does.
    config = load_config(REPO_ROOT / "pyproject.toml")
    paths = sorted(iter_python_files([REPO_ROOT / "src"]))
    assert len(paths) > 20, "src/ tree unexpectedly small"

    def phase(fn):
        start = time.perf_counter()
        out = fn()
        return out, time.perf_counter() - start

    parsed, t_parse = phase(
        lambda: [_parse_file(p, config) for p in paths]
    )
    index, t_index = phase(lambda: build_index(parsed))
    _, t_dataflow = phase(
        lambda: [ModuleDataflow(p.tree) for p in parsed if p.tree is not None]
    )
    summaries, method_summaries = index.shape_summaries()
    _, t_shapes = phase(
        lambda: [
            ModuleShapes(
                p.tree,
                p.lines,
                module_name=p.module_name,
                summaries=summaries,
                method_summaries=method_summaries,
            )
            for p in parsed
            if p.tree is not None
        ]
    )

    v3_config = dataclasses.replace(
        config,
        enabled_families=[f for f in ALL_FAMILIES if f != "arrays"],
    )
    _, t_v3 = phase(lambda: lint_paths([REPO_ROOT / "src"], v3_config))

    report = run_once(benchmark, lambda: lint_paths([REPO_ROOT / "src"], config))
    t_full = benchmark.stats.stats.total

    per_file_ms = 1e3 * t_full / len(paths)
    print(f"\nreprolint over {len(paths)} files in src/:")
    print(f"  parse      {1e3 * t_parse:8.1f} ms")
    print(f"  index      {1e3 * t_index:8.1f} ms")
    print(f"  dataflow   {1e3 * t_dataflow:8.1f} ms")
    print(f"  shapes     {1e3 * t_shapes:8.1f} ms")
    print(f"  v3 lint    {1e3 * t_v3:8.1f} ms  (families sans 'arrays')")
    print(f"  full lint  {1e3 * t_full:8.1f} ms  ({per_file_ms:.2f} ms/file)")

    # Shape assertions: the committed tree lints clean, the analysis
    # overhead stays in interactive territory, and the v4 shapes domain
    # costs at most as much again as everything that came before it.
    assert report.gating == []
    assert per_file_ms < 200.0
    assert t_full <= 2.0 * t_v3, (
        f"arrays family costs too much: full {t_full:.2f}s vs v3 {t_v3:.2f}s"
    )

    save_json(
        "bench_reprolint",
        {
            "files": len(paths),
            "parse_s": t_parse,
            "index_s": t_index,
            "dataflow_s": t_dataflow,
            "shapes_s": t_shapes,
            "v3_lint_s": t_v3,
            "full_lint_s": t_full,
            "per_file_ms": per_file_ms,
            "findings": len(report.findings),
        },
    )
