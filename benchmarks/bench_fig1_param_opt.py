"""Fig. 1 — optimal FedProxVR parameters vs the weight factor gamma.

Paper setting: L = 1, lambda = 0.5; panels show optimal beta, mu, theta,
Theta and the (scaled) minimum training time as gamma = d_cmp/d_com
sweeps from communication-dominated (1e-4) to compute-comparable (1).

Shape checks (the paper's §4.3 observations):
* optimal beta (and tau) decrease as gamma grows;
* optimal mu increases as gamma grows;
* larger sigma_bar^2 increases optimal mu and beta, decreases theta*, Theta*.
"""

import numpy as np

from repro.core.param_opt import sweep_gamma
from repro.core.theory import ProblemConstants

from conftest import run_once


GAMMAS = np.geomspace(1e-4, 1.0, 9)


def test_fig1_parameter_sweep(benchmark, save_json):
    constants_hom = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=0.0)
    constants_het = ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=2.0)

    def experiment():
        return (
            sweep_gamma(GAMMAS, constants_hom),
            sweep_gamma(GAMMAS, constants_het),
        )

    hom, het = run_once(benchmark, experiment)

    print("\n=== Fig. 1: optimal parameters vs gamma (L=1, lambda=0.5) ===")
    for label, sweep in (("sigma^2=0", hom), ("sigma^2=2", het)):
        print(f"--- {label} ---")
        for opt in sweep:
            print("  " + opt.as_row())

    # shape assertions
    betas = [o.beta for o in hom]
    mus = [o.mu for o in hom]
    thetas = [o.theta for o in hom]
    assert betas[0] > betas[-1], "optimal beta must fall as gamma rises"
    assert mus[-1] > mus[0], "optimal mu must rise as gamma rises"
    assert thetas[-1] > thetas[0], "optimal theta must rise as gamma rises"

    # heterogeneity effects at fixed gamma
    for o_hom, o_het in zip(hom, het):
        assert o_het.mu > o_hom.mu
        assert o_het.theta < o_hom.theta
        assert o_het.federated_factor < o_hom.federated_factor
        assert o_het.beta > o_hom.beta

    save_json(
        "fig1_param_opt",
        {
            "gammas": list(GAMMAS),
            "sigma0": [vars(o) for o in hom],
            "sigma2": [vars(o) for o in het],
        },
    )
