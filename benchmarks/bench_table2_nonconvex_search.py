"""Table 2 — best-hyperparameter comparison on a non-convex task (CNN).

Reduced scale: a channel-scaled paper CNN, few devices, a small search
grid.  Expected shape (paper: 93.52 / 94.06 / 93.75 %): FedProxVR's best
configuration matches or beats FedAvg's.
"""

from repro.fl.tuning import SearchSpace, compare_algorithms, format_table
from repro.datasets import make_digits
from repro.fl.runner import FederatedRunConfig
from repro.models import make_paper_cnn_model

from conftest import run_once, scaled

ALGORITHMS = ["fedavg", "fedproxvr-svrg", "fedproxvr-sarah"]


def test_table2_nonconvex_random_search(benchmark, save_json):
    dataset = make_digits(
        num_devices=scaled(4),
        num_samples=scaled(500),
        labels_per_device=2,
        min_size=50,
        max_size=220,
        seed=0,
    )

    def factory():
        return make_paper_cnn_model(
            image_shape=(1, 28, 28), num_classes=10, channel_scale=0.12, seed=0
        )

    # Full-grid coverage per algorithm (see bench_table1): exhaustive
    # rather than randomly sampled, so the comparison is fair at CI scale.
    space = SearchSpace(
        tau=(10, 20), beta=(10.0,), mu=(0.0, 0.01), batch_size=(32,)
    )

    def experiment():
        return compare_algorithms(
            ALGORITHMS,
            dataset,
            factory,
            space=space,
            num_trials=space.size(),
            num_rounds=scaled(6),
            base_config=FederatedRunConfig(
                seed=4, eval_every=2, executor="thread", max_workers=4
            ),
            seed=11,
        )

    reports = run_once(benchmark, experiment)

    print("\n" + format_table(reports, f"Table 2 (non-convex CNN, {dataset.name})"))

    best = {r.algorithm: r.best for r in reports}
    for algo, trial in best.items():
        assert trial.best_accuracy > 0.15, f"{algo} failed to learn"
    fedavg_acc = best["fedavg"].best_accuracy
    vr_best = max(
        best["fedproxvr-svrg"].best_accuracy, best["fedproxvr-sarah"].best_accuracy
    )
    assert vr_best >= fedavg_acc - 0.05

    save_json(
        "table2_nonconvex_search",
        {
            r.algorithm: {
                "best_params": r.best.params,
                "best_accuracy": r.best.best_accuracy,
                "trials": [
                    {"params": t.params, "accuracy": t.best_accuracy}
                    for t in r.trials
                ],
            }
            for r in reports
        },
    )
