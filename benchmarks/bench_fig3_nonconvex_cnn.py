"""Fig. 3 — non-convex task (CNN) on the MNIST-like dataset.

Paper setting: 10 devices, 2-layer CNN (32/64 channels), B = 64.
Reduced scale: 5 devices and a channel-scaled CNN (identical
architecture and code path, ~1/16 the FLOPs) so the bench completes in
minutes.  The comparison — FedProxVR converging at least as fast as
FedAvg, with a slightly larger gap than the convex case — is the
reproduced shape.
"""

from repro.datasets import make_digits
from repro.fl.history import format_comparison
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models import make_paper_cnn_model

from conftest import run_once, scaled


def test_fig3_nonconvex_cnn(benchmark, save_json):
    dataset = make_digits(
        num_devices=scaled(5),
        num_samples=scaled(700),
        labels_per_device=2,
        min_size=50,
        max_size=250,
        seed=0,
    )

    def factory():
        return make_paper_cnn_model(
            image_shape=(1, 28, 28), num_classes=10, channel_scale=0.25, seed=0
        )

    rounds = scaled(8)

    def run_algo(algo, mu):
        cfg = FederatedRunConfig(
            algorithm=algo,
            num_rounds=rounds,
            num_local_steps=10,
            beta=10.0,
            mu=mu,
            batch_size=64,
            seed=4,
            eval_every=2,
            executor="thread",
            max_workers=5,
        )
        history, _ = run_federated(dataset, factory, cfg)
        return history

    def experiment():
        return {
            "fedavg": run_algo("fedavg", 0.0),
            "fedproxvr-svrg": run_algo("fedproxvr-svrg", 0.01),
            "fedproxvr-sarah": run_algo("fedproxvr-sarah", 0.01),
        }

    histories = run_once(benchmark, experiment)

    print(f"\n=== Fig. 3: non-convex CNN on {dataset.name} ===")
    print(dataset.summary())
    for algo, h in histories.items():
        losses = " ".join(f"{r.train_loss:.4f}" for r in h.records)
        print(f"  {algo:>18s} loss: {losses}  | final acc {h.final('test_accuracy'):.4f}")
    print(format_comparison(list(histories.values())))

    avg_loss = histories["fedavg"].final("train_loss")
    for algo in ("fedproxvr-svrg", "fedproxvr-sarah"):
        assert histories[algo].final("train_loss") <= avg_loss * 1.03, (
            f"{algo} should converge at least as fast as FedAvg (Fig. 3)"
        )
    # everyone actually learned something
    for algo, h in histories.items():
        assert h.final("test_accuracy") > 0.15, f"{algo} failed to learn"

    save_json(
        "fig3_nonconvex_cnn", {a: h.to_dict() for a, h in histories.items()}
    )
