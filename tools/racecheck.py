"""Runtime interleaving stress harness for the concurrent executors.

The static RL8xx rules (``tools/reprolint/rules/concurrency.py``) argue
the thread-pool path *cannot* race; this harness checks the claim the
only way a scheduler respects — by running it under deliberately
adversarial interleavings and demanding bit-identical results:

1. **Bit-identity stress** — the same federated problem is solved once
   sequentially (the reference) and repeatedly on a thread pool whose
   workers rendezvous at a :class:`threading.Barrier` before every local
   solve, so client updates start as close to simultaneously as the OS
   allows.  Every worker count and every repeat must reproduce the
   sequential history and final weights exactly (``==``, not
   ``allclose``) — per-(client, round) RNG streams make scheduling
   invisible, or the run fails.
2. **ShmArena leak audit** — arenas are torn down mid-population by an
   injected failure; any segment still attachable afterwards is an
   orphan (it would survive the process) and fails the audit.

Usage::

    python -m tools.racecheck --workers 2 8 --rounds 3 --repeats 2

Exit status 0 = all identical and no leaks; 1 otherwise.  CI runs a
reduced-scale invocation (see ``.github/workflows/ci.yml``); the
integration test ``tests/integration/test_race_stress.py`` drives the
same entry points in-process.
"""

from __future__ import annotations

import argparse
import sys
import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.shm import ShmArena, attach_array
from repro.core.algorithms import make_local_solver
from repro.datasets import make_synthetic
from repro.fl.executor import SequentialExecutor, ThreadPoolClientExecutor
from repro.fl.runner import build_clients, resolve_smoothness
from repro.fl.server import FederatedServer
from repro.models import MultinomialLogisticModel
from repro.utils.rng import spawn_seeds


class BarrierThreadExecutor(ThreadPoolClientExecutor):
    """Thread-pool executor that herds workers into lockstep starts.

    A fresh barrier per round makes every pool worker wait until the
    whole first wave is ready before any local solve begins — the most
    contended schedule a pool of that width can produce.  Stragglers of
    a ragged final wave time out quickly (a broken barrier waves the
    rest through), so the stress never deadlocks.
    """

    def __init__(self, max_workers: int) -> None:
        super().__init__(max_workers=max_workers)
        self.barrier_parties = max_workers

    def run_round(self, clients, w_global, round_index):
        if self._closed:
            raise RuntimeError("executor already closed")
        self._validate_clients(clients)
        pool = self._ensure_pool(len(clients))
        parties = min(self.barrier_parties, len(clients))
        barrier = threading.Barrier(parties)

        def contended_update(client):
            try:
                barrier.wait(timeout=0.25)
            except threading.BrokenBarrierError:
                pass  # ragged wave: start anyway, contention already peaked
            return client.local_update(w_global, round_index)

        futures = [pool.submit(contended_update, c) for c in clients]
        return [f.result() for f in futures]


def build_problem(num_devices: int, seed: int):
    """A small heterogeneous softmax problem with one shard per device."""
    dataset = make_synthetic(
        0.5,
        0.5,
        num_devices=num_devices,
        num_features=12,
        num_classes=4,
        min_size=24,
        max_size=96,
        seed=seed,
    )

    def model_factory():
        return MultinomialLogisticModel(
            dataset.num_features, dataset.num_classes, l2=1e-4
        )

    return dataset, model_factory


def run_once(
    dataset,
    model_factory,
    executor,
    *,
    seed: int,
    num_rounds: int,
) -> Tuple[List[float], np.ndarray]:
    """One training run; returns ``(per-round train losses, w_final)``.

    Mirrors ``run_federated``'s wiring (same seed derivation, same step
    size, same solver) but always builds per-client model instances so
    sequential and thread runs share identical arithmetic and differ
    only in scheduling.
    """
    init_seed, server_seed = (s.entropy for s in spawn_seeds(seed, 2))
    probe_model = model_factory()
    L = resolve_smoothness(probe_model, dataset, seed=seed)
    solver = make_local_solver(
        "fedproxvr-sarah",
        step_size=1.0 / (5.0 * L),
        num_steps=4,
        batch_size=16,
        mu=0.1,
    )
    clients = build_clients(
        dataset, model_factory, solver, share_model=False, seed=seed
    )
    server = FederatedServer(
        clients, eval_model=probe_model, executor=executor, seed=server_seed
    )
    w0 = probe_model.init_parameters(init_seed)
    try:
        history, w_final = server.train(w0, num_rounds)
    finally:
        executor.close()
    return [r.train_loss for r in history.records], w_final


def stress_bit_identity(
    *,
    worker_counts: Sequence[int],
    num_devices: int,
    num_rounds: int,
    repeats: int,
    seed: int,
) -> List[str]:
    """Compare barrier-stressed thread runs against the sequential run.

    Returns a list of mismatch descriptions (empty = bit-identical).
    """
    dataset, model_factory = build_problem(num_devices, seed)
    ref_losses, ref_w = run_once(
        dataset,
        model_factory,
        SequentialExecutor(),
        seed=seed,
        num_rounds=num_rounds,
    )
    failures: List[str] = []
    for workers in worker_counts:
        for attempt in range(repeats):
            losses, w = run_once(
                dataset,
                model_factory,
                BarrierThreadExecutor(max_workers=workers),
                seed=seed,
                num_rounds=num_rounds,
            )
            tag = f"workers={workers} attempt={attempt + 1}/{repeats}"
            if losses != ref_losses:
                failures.append(
                    f"{tag}: per-round losses diverge from sequential "
                    f"({losses} != {ref_losses})"
                )
            if not (
                w.shape == ref_w.shape
                and w.dtype == ref_w.dtype
                and np.array_equal(w, ref_w)
            ):
                delta = float(np.max(np.abs(w - ref_w))) if (
                    w.shape == ref_w.shape
                ) else float("nan")
                failures.append(
                    f"{tag}: final weights differ (max |delta| = {delta:g})"
                )
    return failures


def audit_shm_leaks(*, num_segments: int = 4, seed: int = 0) -> List[str]:
    """Fail an arena mid-population; report segments that survive.

    Returns the names of orphaned segments (empty = clean teardown).
    """
    rng = np.random.default_rng(seed)  # reprolint: disable=RL600
    specs = []
    try:
        with ShmArena() as arena:
            for _ in range(num_segments):
                specs.append(arena.put(rng.standard_normal(64)))
            raise RuntimeError("injected mid-population failure")
    except RuntimeError:
        pass
    orphans: List[str] = []
    for spec in specs:
        try:
            _, handle = attach_array(spec)
        except FileNotFoundError:
            continue
        handle.close()
        orphans.append(spec.shm_name)
    return orphans


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="racecheck",
        description="interleaving stress + shm leak audit for the "
        "concurrent federated executors",
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[2, 8],
        help="thread-pool widths to stress (default: 2 8)",
    )
    parser.add_argument("--devices", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="stressed runs per worker count (default: 2)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--skip-shm-audit",
        action="store_true",
        help="run only the bit-identity stress",
    )
    args = parser.parse_args(argv)

    failures = stress_bit_identity(
        worker_counts=args.workers,
        num_devices=args.devices,
        num_rounds=args.rounds,
        repeats=args.repeats,
        seed=args.seed,
    )
    runs = len(args.workers) * args.repeats
    if failures:
        for failure in failures:
            print(f"FAIL {failure}")
    else:
        print(
            f"bit-identity: {runs} stressed run(s) at workers="
            f"{args.workers} all match sequential exactly"
        )

    if not args.skip_shm_audit:
        orphans = audit_shm_leaks(seed=args.seed)
        if orphans:
            failures.append(f"shm audit: orphaned segments {orphans}")
            print(f"FAIL shm audit: orphaned segments {orphans}")
        else:
            print("shm audit: failure-injected arena left no orphans")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
