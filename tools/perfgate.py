"""Gate the committed perf trajectory against a fresh perfbench run.

Usage::

    PYTHONPATH=src python -m tools.perfbench --scale 0.4 -o /tmp/bench.json
    PYTHONPATH=src python -m tools.perfgate /tmp/bench.json \
        --baseline BENCH_pr6.json --tolerance 0.6

The gate compares *speedup ratios* (sequential / batched wall time per
algorithm), never absolute seconds: both executors run the same FLOPs
through the same BLAS, so the ratio is roughly machine-independent
while raw timings are not.  A current run passes when, for every
algorithm in the baseline:

* the batched result is still bit-identical to sequential, and
* ``current_speedup >= baseline_speedup * tolerance``.

``--update`` rewrites the baseline from the current run — the ratchet:
run it after a deliberate perf change, commit the new baseline, and
regressions against the improved numbers start failing.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from typing import Dict, List, Optional, Tuple

SCHEMA = "repro.perfbench/v1"


def load_report(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("results"), dict) or not payload["results"]:
        raise ValueError(f"{path}: no results")
    return payload


def check(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float,
) -> Tuple[bool, List[str]]:
    """Evaluate the gate; returns (passed, report lines)."""
    lines: List[str] = []
    passed = True
    for algorithm, base in baseline["results"].items():
        cur = current["results"].get(algorithm)
        if cur is None:
            lines.append(f"FAIL {algorithm}: missing from current run")
            passed = False
            continue
        if not cur.get("identical", False):
            lines.append(
                f"FAIL {algorithm}: batched result no longer bit-identical "
                f"to sequential"
            )
            passed = False
            continue
        floor = float(base["speedup"]) * tolerance
        speedup = float(cur["speedup"])
        verdict = "ok  " if speedup >= floor else "FAIL"
        if speedup < floor:
            passed = False
        lines.append(
            f"{verdict} {algorithm}: speedup {speedup:.2f}x "
            f"(baseline {float(base['speedup']):.2f}x, floor {floor:.2f}x)"
        )
    return passed, lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="perfbench JSON from the current tree")
    parser.add_argument("--baseline", default="BENCH_pr6.json",
                        help="committed trajectory artifact (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.6,
                        help="fraction of the baseline speedup that must "
                             "survive (default: %(default)s; guards against "
                             "scheduler noise without hiding real regressions)")
    parser.add_argument("--update", action="store_true",
                        help="ratchet: overwrite the baseline with the "
                             "current run instead of gating")
    args = parser.parse_args(argv)

    current = load_report(args.current)
    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline {args.baseline} updated from {args.current}")
        return 0
    baseline = load_report(args.baseline)
    passed, lines = check(current, baseline, args.tolerance)
    for line in lines:
        print(line)
    print("perf gate:", "PASS" if passed else "FAIL")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
