"""Gate the committed perf trajectory against a fresh perfbench run.

Usage::

    PYTHONPATH=src python -m tools.perfbench --scale 0.4 -o /tmp/bench.json
    PYTHONPATH=src python -m tools.perfgate /tmp/bench.json \
        --baseline BENCH_pr6.json --tolerance 0.6

The gate compares *speedup ratios* (sequential / batched wall time per
algorithm), never absolute seconds: both executors run the same FLOPs
through the same BLAS, so the ratio is roughly machine-independent
while raw timings are not.  A current run passes when, for every
algorithm in the baseline:

* the batched result is still bit-identical to sequential, and
* ``current_speedup >= baseline_speedup * tolerance``.

Artifacts carrying a ``client_scaling`` section (``perfbench
--client-scaling``) are additionally gated on the massive-cohort claim:
setup time, peak memory, and per-round wall time at the largest ``N``
must stay within ``--scaling-tolerance`` times the smallest-``N`` cell
(i.e. roughly flat in the registered-population size, because only the
``K`` hydrated clients are ever resident).  Small absolute floors keep
sub-resolution timing noise from tripping the ratio.  ``--scaling-*``
budget flags add absolute ceilings for CI smoke jobs.

``--update`` rewrites the baseline from the current run — the ratchet:
run it after a deliberate perf change, commit the new baseline, and
regressions against the improved numbers start failing.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from typing import Dict, List, Optional, Tuple

SCHEMA = "repro.perfbench/v1"

#: ratio floors: differences below these absolute magnitudes are noise,
#: not scaling behaviour (sub-resolution timer reads, allocator jitter)
SETUP_FLOOR_SECONDS = 0.05
ROUND_FLOOR_SECONDS = 0.05
MEM_FLOOR_MB = 8.0


def load_report(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {payload.get('schema')!r}"
        )
    has_macro = isinstance(payload.get("results"), dict) and payload["results"]
    has_scaling = isinstance(payload.get("client_scaling"), dict)
    if not has_macro and not has_scaling:
        raise ValueError(f"{path}: no results and no client_scaling section")
    return payload


def check(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float,
) -> Tuple[bool, List[str]]:
    """Evaluate the speedup-ratchet gate; returns (passed, report lines)."""
    lines: List[str] = []
    passed = True
    for algorithm, base in baseline["results"].items():
        cur = current["results"].get(algorithm)
        if cur is None:
            lines.append(f"FAIL {algorithm}: missing from current run")
            passed = False
            continue
        if not cur.get("identical", False):
            lines.append(
                f"FAIL {algorithm}: batched result no longer bit-identical "
                f"to sequential"
            )
            passed = False
            continue
        floor = float(base["speedup"]) * tolerance
        speedup = float(cur["speedup"])
        verdict = "ok  " if speedup >= floor else "FAIL"
        if speedup < floor:
            passed = False
        lines.append(
            f"{verdict} {algorithm}: speedup {speedup:.2f}x "
            f"(baseline {float(base['speedup']):.2f}x, floor {floor:.2f}x)"
        )
    return passed, lines


def _ratio_check(
    label: str,
    small: float,
    large: float,
    tolerance: float,
    floor: float,
    unit: str,
) -> Tuple[bool, str]:
    """Pass when the largest-N value is within ``tolerance``x of the
    smallest-N value, after lifting both to the noise floor."""
    ceiling = max(small, floor) * tolerance
    effective = max(large, floor)
    ok = effective <= ceiling
    verdict = "ok  " if ok else "FAIL"
    return ok, (
        f"{verdict} scaling {label}: {large:.4g}{unit} at max N vs "
        f"{small:.4g}{unit} at min N (ceiling {ceiling:.4g}{unit})"
    )


def check_scaling(
    current: Dict[str, object],
    tolerance: float,
    *,
    setup_budget: Optional[float] = None,
    mem_budget_mb: Optional[float] = None,
    round_budget: Optional[float] = None,
) -> Tuple[bool, List[str]]:
    """Gate the client-scaling section's flat-in-N claim.

    Compares the largest-``N`` cell against the smallest one; the axis
    is self-contained (no baseline needed) because the claim is about
    the *shape* of the trajectory, not absolute host speed.  Optional
    budgets bound the max-``N`` cell absolutely for CI smoke jobs.
    """
    section = current.get("client_scaling")
    lines: List[str] = []
    if not isinstance(section, dict) or not section.get("cells"):
        return False, ["FAIL scaling: no client_scaling cells in artifact"]
    cells = sorted(
        section["cells"], key=lambda c: int(c["registered_clients"])
    )
    lo, hi = cells[0], cells[-1]
    if len(cells) < 2:
        lines.append(
            "note scaling: single cell — ratio checks skipped, "
            "budgets still apply"
        )
        passed = True
    else:
        lines.append(
            f"     scaling N range: {lo['registered_clients']} -> "
            f"{hi['registered_clients']} "
            f"(K={section.get('participants')}, "
            f"x{int(hi['registered_clients']) // int(lo['registered_clients'])} "
            f"population growth)"
        )
        checks = [
            _ratio_check(
                "setup_seconds",
                float(lo["setup_seconds"]),
                float(hi["setup_seconds"]),
                tolerance,
                SETUP_FLOOR_SECONDS,
                "s",
            ),
            _ratio_check(
                "peak_mem_mb",
                float(lo["peak_mem_mb"]),
                float(hi["peak_mem_mb"]),
                tolerance,
                MEM_FLOOR_MB,
                "MB",
            ),
            _ratio_check(
                "per_round_seconds",
                float(lo["per_round_seconds"]),
                float(hi["per_round_seconds"]),
                tolerance,
                ROUND_FLOOR_SECONDS,
                "s",
            ),
        ]
        passed = all(ok for ok, _ in checks)
        lines.extend(line for _, line in checks)
    budgets = [
        ("setup_seconds", setup_budget, float(hi["setup_seconds"]), "s"),
        ("peak_mem_mb", mem_budget_mb, float(hi["peak_mem_mb"]), "MB"),
        (
            "per_round_seconds",
            round_budget,
            float(hi["per_round_seconds"]),
            "s",
        ),
    ]
    for label, budget, value, unit in budgets:
        if budget is None:
            continue
        ok = value <= budget
        if not ok:
            passed = False
        lines.append(
            f"{'ok  ' if ok else 'FAIL'} scaling budget {label}: "
            f"{value:.4g}{unit} <= {budget:.4g}{unit} at max N"
        )
    return passed, lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="perfbench JSON from the current tree")
    parser.add_argument("--baseline", default="BENCH_pr6.json",
                        help="committed trajectory artifact (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.6,
                        help="fraction of the baseline speedup that must "
                             "survive (default: %(default)s; guards against "
                             "scheduler noise without hiding real regressions)")
    parser.add_argument("--scaling-tolerance", type=float, default=2.0,
                        help="max-N cells may cost at most this multiple of "
                             "the min-N cell (default: %(default)s — the "
                             "'within ~2x' sublinearity claim)")
    parser.add_argument("--scaling-setup-budget", type=float, default=None,
                        help="absolute ceiling (seconds) on max-N setup time")
    parser.add_argument("--scaling-mem-budget-mb", type=float, default=None,
                        help="absolute ceiling (MB) on max-N tracemalloc peak")
    parser.add_argument("--scaling-round-budget", type=float, default=None,
                        help="absolute ceiling (seconds) on max-N per-round "
                             "wall time")
    parser.add_argument("--update", action="store_true",
                        help="ratchet: overwrite the baseline with the "
                             "current run instead of gating")
    args = parser.parse_args(argv)

    current = load_report(args.current)
    if args.update:
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline {args.baseline} updated from {args.current}")
        return 0
    passed = True
    if isinstance(current.get("results"), dict) and current["results"]:
        baseline = load_report(args.baseline)
        macro_passed, lines = check(current, baseline, args.tolerance)
        passed = passed and macro_passed
        for line in lines:
            print(line)
    if "client_scaling" in current:
        scaling_passed, lines = check_scaling(
            current,
            args.scaling_tolerance,
            setup_budget=args.scaling_setup_budget,
            mem_budget_mb=args.scaling_mem_budget_mb,
            round_budget=args.scaling_round_budget,
        )
        passed = passed and scaling_passed
        for line in lines:
            print(line)
    print("perf gate:", "PASS" if passed else "FAIL")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
