"""Rule base class, per-file context, and the global rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Type

from tools.reprolint.config import LintConfig
from tools.reprolint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from tools.reprolint.dataflow import ModuleDataflow
    from tools.reprolint.projectindex import ProjectIndex
    from tools.reprolint.shapes import ModuleShapes


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis.

    ``tree`` and ``index`` are populated by the two-phase engine
    (:func:`tools.reprolint.engine.lint_paths`); standalone
    :func:`lint_file` calls leave ``index`` as None and whole-program
    rules must degrade gracefully.
    """

    path: Path
    display_path: str
    module_name: Optional[str]
    source: str
    lines: List[str]
    config: LintConfig
    tree: Optional[ast.AST] = None
    index: Optional["ProjectIndex"] = None
    _dataflow: Optional["ModuleDataflow"] = field(
        default=None, repr=False, compare=False
    )
    _shapes: Optional["ModuleShapes"] = field(
        default=None, repr=False, compare=False
    )

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def dataflow(self) -> "ModuleDataflow":
        """The file's provenance analysis, built on first use and cached."""
        if self._dataflow is None:
            if self.tree is None:
                raise ValueError("FileContext has no tree; cannot run dataflow")
            from tools.reprolint.dataflow import ModuleDataflow

            self._dataflow = ModuleDataflow(
                self.tree,
                blessed_factories=tuple(self.config.rng_factories),
                theory_checks=tuple(self.config.theory_check_functions),
                positive_checks=tuple(self.config.positive_check_functions),
            )
        return self._dataflow

    def shapes(self) -> "ModuleShapes":
        """The file's shape/dtype analysis, built on first use and cached.

        When the engine supplied a :class:`ProjectIndex`, annotated
        summaries from *other* modules seed interprocedural call sites;
        standalone contexts fall back to local annotations only.
        """
        if self._shapes is None:
            if self.tree is None:
                raise ValueError("FileContext has no tree; cannot run shapes")
            from tools.reprolint.shapes import ModuleShapes

            summaries = None
            method_summaries = None
            if self.index is not None:
                summaries, method_summaries = self.index.shape_summaries()
            self._shapes = ModuleShapes(
                self.tree,
                self.lines,
                module_name=self.module_name,
                summaries=summaries,
                method_summaries=method_summaries,
            )
        return self._shapes


class Rule:
    """One statically-checkable invariant.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects.  Use :meth:`make_finding` so the
    severity override and source-line capture are applied uniformly.
    """

    rule_id: str = ""
    family: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        raise NotImplementedError

    def make_finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        **extra: object,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            message=message,
            path=ctx.display_path,
            line=lineno,
            col=col,
            severity=ctx.config.severity_for(self.rule_id, self.severity),
            source_line=ctx.source_line(lineno),
            extra=dict(extra),
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id or not cls.family:
        raise ValueError(f"rule {cls.__name__} must define rule_id and family")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> List[Type[Rule]]:
    # Side-effect import: loading the package runs every @register
    # decorator and populates _REGISTRY; the binding itself is unused.
    from tools.reprolint import rules as _rules  # noqa: F401  # reprolint: disable=RL704

    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def active_rules(config: LintConfig) -> List[Rule]:
    return [
        cls()
        for cls in all_rules()
        if config.rule_enabled(cls.rule_id, cls.family)
    ]
