"""Forward value-provenance dataflow over the reprolint CFG.

A small abstract domain tracks where values *come from*, which is what
the RL6xx rules need to ask:

* ``literal``  — a numeric literal (constant-folded through ``+ - * /``
  and ``**`` and through augmented assignment), carrying its value;
* ``checked``  — a literal that has since been passed through a
  :mod:`repro.core.theory` bound-check call, carrying the same value;
* ``rng_raw``  — the result of calling ``numpy.random.default_rng``
  directly (outside the blessed ``repro.utils.rng`` lineage);
* ``rng_raw_factory`` — a reference to ``numpy.random.default_rng``
  itself (calling it later yields ``rng_raw``);
* ``rng_blessed`` — a Generator/SeedSequence obtained from
  ``repro.utils.rng`` (``as_generator`` / ``spawn_generators`` /
  ``spawn_seeds`` / ``derive_generator``), including elements obtained
  by subscripting or iterating the spawned list;
* ``param``    — a function parameter (the caller's responsibility);
* ``positive`` — a value proven strictly positive: it passed a runtime
  positivity check (``check_positive``/``check_positive_int`` with
  default strictness), or came out of ``x or <positive literal>`` /
  ``max(x, eps)`` / ``np.maximum(x, eps)`` with a positive floor; RL404
  skips divisions whose denominators carry only this fact (or positive
  literals);
* ``unordered`` — a value with no deterministic iteration order (set
  literals, ``set()``/``frozenset()`` calls, set comprehensions); the
  RL805 bit-identity rule asks whether such a value feeds aggregation;
* ``unknown``  — everything else.

Beyond value provenance, each scope exposes its **submission sites**
(:meth:`ScopeAnalysis.submission_sites`): the ``<pool>.submit(fn, ...)``
/ ``<pool>.map(fn, it)`` calls that hand work to an executor, with the
names each task captures and the loops enclosing the call.  The RL8xx
concurrency rules combine these escape facts with provenance to reason
about values shared across executor boundaries.

The analysis is a may-analysis (join = set union) run to fixpoint per
scope (module body and each function body, including nested functions).
Comprehension targets bind in their own scope in Python 3 and are
deliberately *not* modelled, so a comprehension variable never clobbers
an outer variable's provenance.  Literal sets are capped to keep loop
constant-folding finite.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.asthelpers import (
    NumpyAliases,
    callable_bare_name,
    submission_captured_names,
    submission_method,
)
from tools.reprolint.cfg import CFG, build_cfg

#: Functions whose result carries the blessed RNG lineage.
RNG_BLESSED_FACTORIES = (
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "derive_generator",
)

#: repro.core.theory entry points that validate hyperparameters at
#: runtime; a literal passed through any of these counts as checked.
THEORY_CHECK_FUNCTIONS = (
    "lemma1_feasible",
    "tau_lower_bound",
    "tau_upper_bound_sarah",
    "tau_upper_bound_svrg",
    "beta_min",
    "tau_star_sarah",
    "theta_from_beta",
    "federated_factor",
    "global_iterations_required",
    "stationarity_bound",
)

#: repro.utils.validation helpers whose 2nd (``value``) argument is
#: strictly positive after the call returns — unless relaxed by
#: ``strict=False`` or a non-positive ``minimum=``.
POSITIVE_CHECK_FUNCTIONS = (
    "check_positive",
    "check_positive_int",
)

#: Cap on distinct literal values per variable before collapsing to
#: ``unknown`` (keeps loop constant-folding from diverging).
_LITERAL_CAP = 8

_MAX_ITERATIONS = 64


@dataclass(frozen=True)
class AbstractValue:
    """One provenance fact about a value."""

    kind: str
    value: Optional[float] = None
    origin_line: int = 0

    def is_literal(self) -> bool:
        return self.kind == "literal"


UNKNOWN = AbstractValue("unknown")

Env = Dict[str, FrozenSet[AbstractValue]]
ValueSet = FrozenSet[AbstractValue]

_UNKNOWN_SET: ValueSet = frozenset({UNKNOWN})


def _cap(values: Iterable[AbstractValue]) -> ValueSet:
    vals = set(values)
    literals = [v for v in vals if v.is_literal()]
    if len(literals) > _LITERAL_CAP:
        vals -= set(literals)
        vals.add(UNKNOWN)
    return frozenset(vals)


def join_envs(envs: Sequence[Env]) -> Env:
    out: Dict[str, Set[AbstractValue]] = {}
    for env in envs:
        for name, vals in env.items():
            out.setdefault(name, set()).update(vals)
    return {name: _cap(vals) for name, vals in out.items()}


@dataclass(frozen=True)
class SubmissionSite:
    """One executor hand-off (``pool.submit``/``pool.map``) in a scope."""

    call: ast.Call
    method: str  # "submit" | "map"
    callable_node: ast.AST
    callable_name: Optional[str]
    #: ``Name`` loads whose values escape into the submitted task
    #: (task args, bound-method receivers, lambda free variables).
    captured: Tuple[ast.Name, ...]
    #: loops of *this scope* enclosing the call, outermost first.
    loops: Tuple[ast.stmt, ...]


class _SubmissionScanner(ast.NodeVisitor):
    """Collect a scope's submission sites without entering nested scopes."""

    def __init__(self) -> None:
        self.sites: List[SubmissionSite] = []
        self._loops: List[ast.stmt] = []

    # Nested defs/lambdas are separate scopes with their own analysis.
    def visit_FunctionDef(self, node: ast.AST) -> None:
        return None

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def visit_For(self, node: ast.AST) -> None:
        self._loops.append(node)
        self.generic_visit(node)
        self._loops.pop()

    visit_AsyncFor = visit_For
    visit_While = visit_For

    def visit_Call(self, node: ast.Call) -> None:
        method = submission_method(node)
        if method is not None:
            self.sites.append(
                SubmissionSite(
                    call=node,
                    method=method,
                    callable_node=node.args[0],
                    callable_name=callable_bare_name(node.args[0]),
                    captured=tuple(submission_captured_names(node)),
                    loops=tuple(self._loops),
                )
            )
        self.generic_visit(node)


def scan_submissions(body: List[ast.stmt]) -> List[SubmissionSite]:
    """Submission sites lexically in ``body`` (nested scopes excluded)."""
    scanner = _SubmissionScanner()
    for stmt in body:
        scanner.visit(stmt)
    return scanner.sites


def _terminal_name(func: ast.AST) -> Optional[str]:
    """``f`` for ``f(...)``, ``m.f`` or ``pkg.m.f`` — the called name."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ScopeAnalysis:
    """Fixed-point provenance analysis of one scope."""

    def __init__(
        self,
        body: List[ast.stmt],
        aliases: NumpyAliases,
        *,
        scope_node: Optional[ast.AST] = None,
        blessed_factories: Tuple[str, ...] = RNG_BLESSED_FACTORIES,
        theory_checks: Tuple[str, ...] = THEORY_CHECK_FUNCTIONS,
        positive_checks: Tuple[str, ...] = POSITIVE_CHECK_FUNCTIONS,
    ) -> None:
        self.scope_node = scope_node
        self.body = body
        self._submissions: Optional[List[SubmissionSite]] = None
        self.cfg: CFG = build_cfg(body)
        self._aliases = aliases
        self._blessed = set(blessed_factories)
        self._checks = set(theory_checks)
        self._positive_checks = set(positive_checks)
        self._env_before_unit: Dict[int, Env] = {}
        self._unit_of_node: Dict[int, ast.stmt] = {}
        self._solve(self._initial_env())
        self._index_units()

    # -- public query API --------------------------------------------------

    def env_before(self, unit: ast.stmt) -> Env:
        return self._env_before_unit.get(id(unit), {})

    def enclosing_unit(self, node: ast.AST) -> Optional[ast.stmt]:
        return self._unit_of_node.get(id(node))

    def provenance(self, expr: ast.AST) -> ValueSet:
        """Abstract value of ``expr`` at its program point.

        ``expr`` must live inside one of this scope's units (headers of
        compound statements included); returns ``{unknown}`` otherwise.
        """
        unit = self.enclosing_unit(expr)
        if unit is None:
            return _UNKNOWN_SET
        return self.eval(expr, self.env_before(unit))

    def submission_sites(self) -> List[SubmissionSite]:
        """Executor hand-offs in this scope (computed once, cached)."""
        if self._submissions is None:
            self._submissions = scan_submissions(self.body)
        return self._submissions

    # -- construction ------------------------------------------------------

    def _initial_env(self) -> Env:
        env: Env = {}
        if isinstance(
            self.scope_node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            args = self.scope_node.args
            names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
            if args.vararg:
                names.append(args.vararg.arg)
            if args.kwarg:
                names.append(args.kwarg.arg)
            lineno = getattr(self.scope_node, "lineno", 0)
            for name in names:
                env[name] = frozenset({AbstractValue("param", origin_line=lineno)})
        return env

    @staticmethod
    def _header_nodes(unit: ast.stmt) -> List[ast.AST]:
        """The sub-nodes that evaluate *at* this unit's program point.

        For simple statements that is the whole statement; for compound
        headers only the condition/iterable/context expressions (their
        bodies execute in other blocks, nested defs in other scopes).
        """
        if isinstance(unit, (ast.If, ast.While)):
            return [unit.test]
        if isinstance(unit, (ast.For, ast.AsyncFor)):
            return [unit.iter, unit.target]
        if isinstance(unit, (ast.With, ast.AsyncWith)):
            return list(unit.items)
        if isinstance(unit, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            nodes: List[ast.AST] = list(unit.decorator_list)
            if hasattr(unit, "args"):
                nodes += list(unit.args.defaults)
                nodes += [d for d in unit.args.kw_defaults if d is not None]
            return nodes
        if isinstance(unit, ast.ExceptHandler):
            return [unit.type] if unit.type else []
        return [unit]

    def _index_units(self) -> None:
        for block in self.cfg.blocks.values():
            for unit in block.units:
                for node in self._header_nodes(unit):
                    for sub in ast.walk(node):
                        self._unit_of_node.setdefault(id(sub), unit)

    def _solve(self, initial: Env) -> None:
        in_env: Dict[int, Env] = {self.cfg.entry: initial}
        out_env: Dict[int, Env] = {}
        order = self.cfg.rpo()
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for bid in order:
                block = self.cfg.blocks[bid]
                preds = [out_env[p] for p in block.pred if p in out_env]
                if bid == self.cfg.entry:
                    preds = preds + [initial]
                env = join_envs(preds) if preds else {}
                in_env[bid] = env
                env = dict(env)
                for unit in block.units:
                    self._env_before_unit[id(unit)] = dict(env)
                    env = self._transfer(unit, env)
                if out_env.get(bid) != env:
                    out_env[bid] = env
                    changed = True
            if not changed:
                break
        # Units in unreachable blocks still deserve an (empty) entry.
        for block in self.cfg.blocks.values():
            for unit in block.units:
                self._env_before_unit.setdefault(id(unit), {})

    # -- transfer functions ------------------------------------------------

    def _transfer(self, unit: ast.stmt, env: Env) -> Env:
        env = dict(env)
        # Any theory-check call anywhere in the unit upgrades the literal
        # provenance of its Name arguments: the runtime check now governs.
        self._apply_theory_checks(unit, env)

        if isinstance(unit, ast.Assign):
            values = self.eval(unit.value, env)
            for target in unit.targets:
                self._bind_target(target, unit.value, values, env)
        elif isinstance(unit, ast.AnnAssign) and unit.value is not None:
            values = self.eval(unit.value, env)
            self._bind_target(unit.target, unit.value, values, env)
        elif isinstance(unit, ast.AugAssign):
            folded = self._eval_binop_sets(
                self.eval(unit.target, env), self.eval(unit.value, env), unit.op,
                getattr(unit, "lineno", 0),
            )
            if isinstance(unit.target, ast.Name):
                env[unit.target.id] = folded
        elif isinstance(unit, (ast.For, ast.AsyncFor)):
            self._bind_target(
                unit.target, unit.iter, self._eval_iteration(unit.iter, env), env
            )
        elif isinstance(unit, (ast.With, ast.AsyncWith)):
            for item in unit.items:
                if item.optional_vars is not None:
                    self._bind_target(
                        item.optional_vars,
                        item.context_expr,
                        self.eval(item.context_expr, env),
                        env,
                    )
        elif isinstance(unit, ast.ExceptHandler):
            if unit.name:
                env[unit.name] = _UNKNOWN_SET
        elif isinstance(unit, (ast.Import, ast.ImportFrom)):
            for alias in unit.names:
                binding = (alias.asname or alias.name).split(".")[0]
                env[binding] = _UNKNOWN_SET
        elif isinstance(unit, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env[unit.name] = _UNKNOWN_SET
        elif isinstance(unit, (ast.Delete,)):
            for target in unit.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        return env

    def _bind_target(
        self, target: ast.AST, value_expr: ast.AST, values: ValueSet, env: Env
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = values
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
                value_expr.elts
            ) == len(target.elts):
                for t, v in zip(target.elts, value_expr.elts):
                    self._bind_target(t, v, self.eval(v, env), env)
            else:
                # Unpacking an opaque value: element provenance only
                # survives for the RNG kinds (list-of-generators idiom).
                element = self._project_elements(values)
                for t in target.elts:
                    self._bind_target(t, value_expr, element, env)
        # Attribute/Subscript stores: no tracked heap, drop silently.

    def _apply_theory_checks(self, unit: ast.stmt, env: Env) -> None:
        for header in self._header_nodes(unit):
            for node in ast.walk(header):
                if not isinstance(node, ast.Call):
                    continue
                self._apply_one_check(node, env)
                self._apply_positive_check(node, env)

    def _apply_positive_check(self, node: ast.Call, env: Env) -> None:
        if _terminal_name(node.func) not in self._positive_checks:
            return
        for kw in node.keywords:
            # strict=False admits zero; minimum=<non-positive literal>
            # admits zero or negatives — neither proves positivity.
            if (
                kw.arg == "strict"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
            ):
                return
            if kw.arg == "minimum" and isinstance(kw.value, ast.Constant):
                if (
                    isinstance(kw.value.value, (int, float))
                    and not isinstance(kw.value.value, bool)
                    and kw.value.value <= 0
                ):
                    return
        value_node: Optional[ast.AST] = (
            node.args[1] if len(node.args) >= 2 else None
        )
        if value_node is None:
            for kw in node.keywords:
                if kw.arg == "value":
                    value_node = kw.value
        if isinstance(value_node, ast.Name) and value_node.id in env:
            line = getattr(node, "lineno", 0)
            # The check raises on non-positive input, so *every* kind
            # (param, literal, unknown …) is positive downstream of it.
            env[value_node.id] = frozenset(
                {
                    AbstractValue("positive", v.value, line)
                    for v in env[value_node.id]
                }
            )

    def _apply_one_check(self, node: ast.Call, env: Env) -> None:
        if _terminal_name(node.func) not in self._checks:
            return
        arg_names = [a.id for a in node.args if isinstance(a, ast.Name)]
        arg_names += [
            kw.value.id
            for kw in node.keywords
            if kw.arg is not None and isinstance(kw.value, ast.Name)
        ]
        line = getattr(node, "lineno", 0)
        for name in arg_names:
            if name in env:
                env[name] = frozenset(
                    AbstractValue("checked", v.value, line) if v.is_literal() else v
                    for v in env[name]
                )

    # -- abstract expression evaluation ------------------------------------

    def eval(self, expr: ast.AST, env: Env) -> ValueSet:
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                expr.value, (int, float)
            ):
                return _UNKNOWN_SET
            return frozenset(
                {AbstractValue("literal", float(expr.value), expr.lineno)}
            )
        if isinstance(expr, ast.UnaryOp) and isinstance(
            expr.op, (ast.USub, ast.UAdd)
        ):
            inner = self.eval(expr.operand, env)
            sign = -1.0 if isinstance(expr.op, ast.USub) else 1.0
            return _cap(
                AbstractValue("literal", sign * v.value, v.origin_line)
                if v.is_literal() and v.value is not None
                else UNKNOWN
                for v in inner
            )
        if isinstance(expr, ast.BinOp):
            return self._eval_binop_sets(
                self.eval(expr.left, env),
                self.eval(expr.right, env),
                expr.op,
                getattr(expr, "lineno", 0),
            )
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _UNKNOWN_SET)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Attribute):
            if self._aliases.random_member(expr) == "default_rng":
                return frozenset(
                    {AbstractValue("rng_raw_factory", origin_line=expr.lineno)}
                )
            return _UNKNOWN_SET
        if isinstance(expr, ast.Subscript):
            return self._project_elements(self.eval(expr.value, env))
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        if isinstance(expr, ast.IfExp):
            return _cap(
                set(self.eval(expr.body, env)) | set(self.eval(expr.orelse, env))
            )
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            # Containers: provenance of the *elements*, so that a list of
            # spawned generators keeps the blessed lineage through
            # subscripting/iteration.  Set displays additionally carry
            # the ``unordered`` fact — iterating them has no stable order.
            merged: Set[AbstractValue] = set()
            for elt in expr.elts:
                merged |= set(self.eval(elt, env))
            if isinstance(expr, ast.Set):
                merged.add(
                    AbstractValue("unordered", origin_line=expr.lineno)
                )
            return _cap(merged) if merged else _UNKNOWN_SET
        if isinstance(expr, ast.SetComp):
            return frozenset(
                {AbstractValue("unordered", origin_line=expr.lineno)}
            )
        if isinstance(expr, ast.BoolOp) and isinstance(expr.op, ast.Or):
            # ``len(xs) or 1``: falsy left operands fall through to the
            # final operand, so a positive-literal default proves the
            # result positive (any truthy numeric earlier is non-zero,
            # and these denominators are non-negative counts).
            last = expr.values[-1]
            if (
                isinstance(last, ast.Constant)
                and isinstance(last.value, (int, float))
                and not isinstance(last.value, bool)
                and last.value > 0
            ):
                return frozenset(
                    {AbstractValue("positive", origin_line=expr.lineno)}
                )
            return _UNKNOWN_SET
        return _UNKNOWN_SET

    def _eval_call(self, call: ast.Call, env: Env) -> ValueSet:
        if self._aliases.random_member(call.func) == "default_rng":
            return frozenset({AbstractValue("rng_raw", origin_line=call.lineno)})
        name = _terminal_name(call.func)
        if name in self._blessed:
            return frozenset({AbstractValue("rng_blessed", origin_line=call.lineno)})
        if isinstance(call.func, ast.Name) and call.func.id in (
            "set",
            "frozenset",
        ):
            return frozenset(
                {AbstractValue("unordered", origin_line=call.lineno)}
            )
        if isinstance(call.func, ast.Name):
            callee = env.get(call.func.id, frozenset())
            if any(v.kind == "rng_raw_factory" for v in callee):
                return frozenset(
                    {AbstractValue("rng_raw", origin_line=call.lineno)}
                )
        # max(x, eps) / np.maximum(x, eps): a provably-positive floor on
        # any operand makes the result positive.
        if name in ("max", "maximum") and len(call.args) >= 2:
            for arg in call.args:
                vals = self.eval(arg, env)
                if vals and all(self._is_positive_fact(v) for v in vals):
                    return frozenset(
                        {AbstractValue("positive", origin_line=call.lineno)}
                    )
        return _UNKNOWN_SET

    @staticmethod
    def _is_positive_fact(v: AbstractValue) -> bool:
        if v.kind == "positive":
            return True
        return (
            v.kind in ("literal", "checked")
            and v.value is not None
            and v.value > 0
        )

    def _eval_iteration(self, iterable: ast.AST, env: Env) -> ValueSet:
        if isinstance(iterable, (ast.Tuple, ast.List, ast.Set)):
            merged: Set[AbstractValue] = set()
            for elt in iterable.elts:
                merged |= set(self.eval(elt, env))
            return _cap(merged) if merged else _UNKNOWN_SET
        return self._project_elements(self.eval(iterable, env))

    @staticmethod
    def _project_elements(values: ValueSet) -> ValueSet:
        """Element provenance when subscripting/iterating ``values``.

        Only the RNG kinds survive projection (the spawned-list idiom);
        a subscripted literal or unknown yields unknown.
        """
        kept = {v for v in values if v.kind in ("rng_raw", "rng_blessed")}
        return frozenset(kept) if kept else _UNKNOWN_SET

    def _eval_binop_sets(
        self, left: ValueSet, right: ValueSet, op: ast.operator, lineno: int
    ) -> ValueSet:
        out: Set[AbstractValue] = set()
        for lv in left:
            for rv in right:
                if (
                    lv.is_literal()
                    and rv.is_literal()
                    and lv.value is not None
                    and rv.value is not None
                ):
                    folded = _fold(lv.value, rv.value, op)
                    out.add(
                        AbstractValue("literal", folded, lineno)
                        if folded is not None
                        else UNKNOWN
                    )
                else:
                    out.add(UNKNOWN)
        return _cap(out) if out else _UNKNOWN_SET


def _fold(a: float, b: float, op: ast.operator) -> Optional[float]:
    try:
        if isinstance(op, ast.Add):
            return a + b
        if isinstance(op, ast.Sub):
            return a - b
        if isinstance(op, ast.Mult):
            return a * b
        if isinstance(op, ast.Div):
            return a / b
        if isinstance(op, ast.FloorDiv):
            return float(a // b)
        if isinstance(op, ast.Pow):
            return float(a**b)
        if isinstance(op, ast.Mod):
            return float(a % b)
    except (ZeroDivisionError, OverflowError, ValueError):
        return None
    return None


class ModuleDataflow:
    """Provenance analyses for every scope of one module.

    Built lazily by :meth:`FileContext.dataflow`; rules query
    :meth:`provenance` with any expression node from the module tree.
    """

    def __init__(
        self,
        tree: ast.AST,
        *,
        blessed_factories: Tuple[str, ...] = RNG_BLESSED_FACTORIES,
        theory_checks: Tuple[str, ...] = THEORY_CHECK_FUNCTIONS,
        positive_checks: Tuple[str, ...] = POSITIVE_CHECK_FUNCTIONS,
    ) -> None:
        aliases = NumpyAliases(tree)
        self.scopes: List[ScopeAnalysis] = []
        bodies: List[Tuple[Optional[ast.AST], List[ast.stmt]]] = [(None, tree.body)]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bodies.append((node, node.body))
        for scope_node, body in bodies:
            self.scopes.append(
                ScopeAnalysis(
                    body,
                    aliases,
                    scope_node=scope_node,
                    blessed_factories=blessed_factories,
                    theory_checks=theory_checks,
                    positive_checks=positive_checks,
                )
            )

    def provenance(self, expr: ast.AST) -> ValueSet:
        """Provenance of ``expr`` in whichever scope contains it."""
        # Innermost scope wins: scan in reverse discovery order so a
        # nested function shadows the module-level mapping.
        for scope in reversed(self.scopes):
            unit = scope.enclosing_unit(expr)
            if unit is not None:
                return scope.eval(expr, scope.env_before(unit))
        return _UNKNOWN_SET

    def submission_sites(self) -> List[Tuple["ScopeAnalysis", SubmissionSite]]:
        """Every executor hand-off in the module, paired with its scope."""
        out: List[Tuple[ScopeAnalysis, SubmissionSite]] = []
        for scope in self.scopes:
            for site in scope.submission_sites():
                out.append((scope, site))
        return out

    def unreachable_units(self) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        for scope in self.scopes:
            out.extend(scope.cfg.unreachable_units())
        return out

    def unreachable_blocks(self) -> List[List[ast.stmt]]:
        """Unreachable units grouped by straight-line region across scopes."""
        out: List[List[ast.stmt]] = []
        for scope in self.scopes:
            out.extend(scope.cfg.unreachable_blocks())
        return out
