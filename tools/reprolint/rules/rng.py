"""RL2xx — RNG discipline.

Reproducibility in the federated simulator rests on the
``SeedSequence``-spawning discipline of :mod:`repro.utils.rng`: every
stochastic actor (client x round, data generation, search) draws from
its own derived :class:`numpy.random.Generator`.  The legacy global API
(``np.random.seed`` + module-level draws) is hidden shared state — it
makes results depend on call order and breaks thread-pool execution —
so it is banned outright in ``src/``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.reprolint.asthelpers import NumpyAliases
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register

#: Modern, order-independent numpy.random members that remain allowed.
_ALLOWED_RANDOM_MEMBERS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
}


def _in_src_package(ctx: FileContext) -> bool:
    return ctx.module_name is not None


@register
class GlobalSeedRule(Rule):
    """RL200: ``np.random.seed`` mutates hidden global state."""

    rule_id = "RL200"
    family = "rng"
    severity = Severity.ERROR
    description = (
        "np.random.seed() mutates the process-global legacy RNG; seed a "
        "Generator via repro.utils.rng instead."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not _in_src_package(ctx):
            return
        aliases = NumpyAliases(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Call) and aliases.random_member(node.func) == "seed":
                yield self.make_finding(
                    ctx,
                    node,
                    "np.random.seed() sets process-global state; use "
                    "repro.utils.rng.as_generator / spawn_seeds and thread "
                    "the Generator explicitly",
                )


@register
class LegacyRandomStateRule(Rule):
    """RL201: ``np.random.RandomState`` is the legacy, frozen-bit-stream API."""

    rule_id = "RL201"
    family = "rng"
    severity = Severity.ERROR
    description = (
        "np.random.RandomState is legacy; use numpy.random.Generator via "
        "repro.utils.rng."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not _in_src_package(ctx):
            return
        aliases = NumpyAliases(tree)
        for node in ast.walk(tree):
            # Flag any reference (call or not): holding a RandomState is
            # already a contract violation for the solver interfaces.
            if aliases.random_member(node) == "RandomState" and not isinstance(
                node, (ast.Import, ast.ImportFrom)
            ):
                yield self.make_finding(
                    ctx,
                    node,
                    "np.random.RandomState is the legacy RNG; accept/produce "
                    "numpy.random.Generator (see repro.utils.rng)",
                )
                break  # one finding per file is enough signal


@register
class ModuleLevelDrawRule(Rule):
    """RL202: module-level draw from the global RNG (``np.random.rand`` etc.)."""

    rule_id = "RL202"
    family = "rng"
    severity = Severity.ERROR
    description = (
        "Module-level np.random draws consume hidden global state; draw "
        "from an explicitly threaded Generator."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not _in_src_package(ctx):
            return
        aliases = NumpyAliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            member = aliases.random_member(node.func)
            if member is None or member in _ALLOWED_RANDOM_MEMBERS:
                continue
            # RL200/RL201's findings; avoid double-reporting the same call
            if member in ("seed", "RandomState"):
                continue
            yield self.make_finding(
                ctx,
                node,
                f"np.random.{member}() draws from the process-global RNG; "
                "use a numpy.random.Generator from repro.utils.rng "
                "(as_generator / spawn_generators / derive_generator)",
                member=member,
            )
