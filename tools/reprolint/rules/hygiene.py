"""RL7xx — whole-program hygiene.

These rules consume the project index (import graph, symbol tables,
export usage) and the per-file CFG; they keep the module graph and the
public surface from rotting as the codebase grows:

* RL700 — import cycles among project modules (the layering DAG rule
  RL100 catches *upward* edges; a cycle of same-layer modules slips
  past it);
* RL701 — ``__all__`` names the module neither defines nor imports
  (a star-import or ``help()`` would raise ``AttributeError``) —
  auto-fixable by pruning the entry;
* RL702 — advisory: an export no other project module consumes
  (candidate dead public API; a library legitimately exports outward-
  facing names, hence INFO);
* RL703 — statements no control-flow path reaches (code after
  ``return``/``raise``/``break``/``continue``, or after a
  ``while True`` with no break);
* RL704 — imported bindings never used in the file — auto-fixable by
  removing the binding.
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import Iterable, List, Set, Tuple

from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register


def _type_checking_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """Line spans of ``if TYPE_CHECKING:`` bodies (imports there feed
    string annotations, which a Name-load scan cannot observe)."""
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = (
            test.id
            if isinstance(test, ast.Name)
            else test.attr if isinstance(test, ast.Attribute) else None
        )
        if name == "TYPE_CHECKING":
            end = max(
                (getattr(s, "end_lineno", s.lineno) or s.lineno for s in node.body),
                default=node.lineno,
            )
            spans.append((node.lineno, end))
    return spans


@register
class ImportCycleRule(Rule):
    """RL700: the project import graph contains a cycle."""

    rule_id = "RL700"
    family = "hygiene"
    severity = Severity.ERROR
    description = (
        "Import cycle among project modules; cycles make import order "
        "load-bearing and defeat the layering DAG."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        index = ctx.index
        if index is None or ctx.module_name not in getattr(index, "modules", {}):
            return
        for cycle in index.import_cycles():
            # One finding per cycle, reported on its lexicographically
            # first member so the cycle is flagged exactly once per run.
            if cycle[0] != ctx.module_name:
                continue
            succ = cycle[1] if len(cycle) > 1 else cycle[0]
            lineno = index.import_line(cycle[0], succ)
            node = SimpleNamespace(lineno=lineno, col_offset=0)
            chain = " -> ".join(cycle + [cycle[0]])
            yield self.make_finding(
                ctx,
                node,
                f"import cycle: {chain}; break the cycle (move the shared "
                "piece down a layer or defer one import)",
                cycle=list(cycle),
            )


@register
class BrokenExportRule(Rule):
    """RL701: ``__all__`` entry that names nothing in the module."""

    rule_id = "RL701"
    family = "hygiene"
    severity = Severity.ERROR
    description = (
        "__all__ names a symbol the module neither defines nor imports; "
        "star-imports would raise AttributeError.  --fix prunes the entry."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        index = ctx.index
        if index is None or ctx.module_name not in getattr(index, "modules", {}):
            return
        info = index.modules[ctx.module_name]
        bindings = info.binding_lines()
        for name, lineno in info.exports:
            if name in bindings or name.startswith("__"):
                continue
            node = SimpleNamespace(lineno=lineno, col_offset=0)
            yield self.make_finding(
                ctx,
                node,
                f"__all__ exports {name!r} but the module neither defines "
                "nor imports it",
                export=name,
                fixable="prune_export",
            )


@register
class DeadExportRule(Rule):
    """RL702: export never consumed anywhere in the project (advisory)."""

    rule_id = "RL702"
    family = "hygiene"
    severity = Severity.INFO
    description = (
        "__all__ export no other project module imports or references — "
        "candidate dead public API (advisory: outward-facing exports are "
        "legitimate)."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        index = ctx.index
        if index is None or ctx.module_name not in getattr(index, "modules", {}):
            return
        info = index.modules[ctx.module_name]
        if info.is_package_init:
            return  # package __all__ is the outward API boundary by design
        bindings = info.binding_lines()
        for name, lineno in info.exports:
            if name not in bindings:
                continue  # RL701's finding
            if index.export_consumed(ctx.module_name, name):
                continue
            node = SimpleNamespace(lineno=lineno, col_offset=0)
            yield self.make_finding(
                ctx,
                node,
                f"export {name!r} is not imported or referenced by any "
                "other project module",
                export=name,
            )


@register
class UnreachableCodeRule(Rule):
    """RL703: statements no control-flow path reaches."""

    rule_id = "RL703"
    family = "hygiene"
    severity = Severity.WARNING
    description = (
        "Unreachable statement (after return/raise/break/continue or an "
        "always-true loop with no break)."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        # One finding per straight-line dead region, anchored on its first
        # statement; nested regions (a dead compound's body) fall inside
        # the header statement's span and are folded into it.
        regions = []
        for group in ctx.dataflow().unreachable_blocks():
            lead = group[0]
            end = max(
                getattr(u, "end_lineno", u.lineno) or u.lineno for u in group
            )
            regions.append((lead.lineno, lead.col_offset, end, lead))
        regions.sort(key=lambda r: (r[0], r[1]))
        reported_end = 0
        for lineno, _col, end, lead in regions:
            if lineno <= reported_end:
                reported_end = max(reported_end, end)
                continue  # inside a region already reported
            reported_end = end
            yield self.make_finding(
                ctx,
                lead,
                "unreachable code: no control-flow path reaches this "
                "statement",
            )


@register
class UnusedImportRule(Rule):
    """RL704: imported binding never used in the file."""

    rule_id = "RL704"
    family = "hygiene"
    severity = Severity.WARNING
    description = (
        "Imported name is never used in this file.  --fix removes the "
        "binding (package __init__ re-exports listed in __all__ are kept)."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        used: Set[str] = set()
        exported: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                used.add(node.id)
        for node in tree.body if hasattr(tree, "body") else []:
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                if isinstance(node.value, (ast.List, ast.Tuple, ast.Set)):
                    exported |= {
                        e.value
                        for e in node.value.elts
                        if isinstance(e, ast.Constant) and isinstance(e.value, str)
                    }
        is_init = ctx.path.name == "__init__.py"
        has_all = bool(exported)
        type_checking = _type_checking_spans(tree)
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)) and any(
                start <= node.lineno <= end for start, end in type_checking
            ):
                # TYPE_CHECKING imports serve string annotations the
                # Name-load scan cannot see.
                continue
            if isinstance(node, ast.Import):
                for alias in node.names:
                    binding = alias.asname or alias.name.split(".")[0]
                    yield from self._flag_if_unused(
                        ctx, node, alias, binding, used, exported, is_init, has_all
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    if alias.asname is not None and alias.asname == alias.name:
                        continue  # ``import x as x``: explicit re-export idiom
                    binding = alias.asname or alias.name
                    yield from self._flag_if_unused(
                        ctx, node, alias, binding, used, exported, is_init, has_all
                    )

    def _flag_if_unused(
        self,
        ctx: FileContext,
        node: ast.stmt,
        alias: ast.alias,
        binding: str,
        used: Set[str],
        exported: Set[str],
        is_init: bool,
        has_all: bool,
    ) -> Iterable[Finding]:
        if binding in used or binding in exported:
            return
        if is_init and not has_all:
            # __init__ without __all__: imports define the implicit
            # public surface; removal would change the package API.
            return
        yield self.make_finding(
            ctx,
            node,
            f"imported name {binding!r} is never used in this file",
            binding=binding,
            fixable="remove_import",
        )
