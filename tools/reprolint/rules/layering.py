"""RL1xx — import-layering rules.

The intended package DAG (configured under ``[tool.reprolint.layers]``)::

    utils/exceptions  ->  nn/models/datasets  ->  core  ->  fl  ->  cli/analysis/viz

A module may import from its own layer or below; an import pointing at a
*higher* layer couples low-level algorithm code to orchestration code,
which is exactly how the original ``repro.core -> repro.fl`` cycle risk
crept in.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register


def _imported_modules(tree: ast.AST, module_name: str) -> List[Tuple[str, ast.AST]]:
    """Absolute module targets of every import statement in the file."""
    out: List[Tuple[str, ast.AST]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                out.append((alias.name, node))
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_from(node, module_name)
            if target:
                out.append((target, node))
    return out


def _resolve_from(node: ast.ImportFrom, module_name: str) -> Optional[str]:
    if node.level == 0:
        return node.module
    # Relative import: climb ``level`` packages up from this module.
    parts = module_name.split(".")
    # ``from . import x`` inside package ``a.b`` (module a.b.c) targets a.b
    base = parts[: len(parts) - node.level]
    if not base:
        return None
    prefix = ".".join(base)
    return f"{prefix}.{node.module}" if node.module else prefix


@register
class UpwardImportRule(Rule):
    """RL100: import points at a higher layer than the importing module."""

    rule_id = "RL100"
    family = "layering"
    severity = Severity.ERROR
    description = (
        "Upward import across the configured layer DAG "
        "(utils -> nn/models/datasets -> core -> fl -> cli/analysis/viz)."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        own_layer = ctx.config.layer_of(ctx.module_name)
        if own_layer is None:
            return
        for target, node in _imported_modules(tree, ctx.module_name):
            target_layer = ctx.config.layer_of(target)
            if target_layer is None:
                continue  # stdlib / third-party
            if target_layer > own_layer:
                yield self.make_finding(
                    ctx,
                    node,
                    f"{ctx.module_name} (layer {own_layer}) imports {target} "
                    f"(layer {target_layer}): imports must point at the same "
                    "or a lower layer",
                    importer=ctx.module_name,
                    imported=target,
                )


@register
class InitOnlyAggregationRule(Rule):
    """RL101: wildcard import inside the package (hides layering edges)."""

    rule_id = "RL101"
    family = "layering"
    severity = Severity.WARNING
    description = "``from repro.x import *`` hides which layers a module uses."

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.ImportFrom)
                and any(a.name == "*" for a in node.names)
            ):
                target = _resolve_from(node, ctx.module_name) or "?"
                if ctx.config.layer_of(target) is None:
                    continue
                yield self.make_finding(
                    ctx,
                    node,
                    f"wildcard import from {target}: layering cannot be "
                    "checked through *-imports; import names explicitly",
                    imported=target,
                )
