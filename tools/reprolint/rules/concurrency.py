"""RL8xx — concurrency & shared-state rules over escape + lock analyses.

PRs 6–7 made the hot path genuinely concurrent (thread pool, shared-
memory process pool, LRU client pool, thread-local telemetry state)
while the headline guarantee stayed *bit-identical results across all
four executors*.  These rules statically police the invariants that
guarantee rests on:

* **Lock discipline** (RL800) — a per-class map of which ``self``
  attributes are mutated under ``with self._lock`` and which are not;
  mixing the two silently races under any concurrent caller.
* **Escape analysis** (RL801/RL803/RL804) — which values flow into
  closures/arguments submitted via ``Executor.submit``/``map``
  (:meth:`tools.reprolint.dataflow.ScopeAnalysis.submission_sites`, plus
  the project-wide submission edges on
  :class:`tools.reprolint.projectindex.ProjectIndex`).  An RNG stream
  captured by two tasks makes draw order scheduling-dependent; an
  ndarray mutated in-place after escaping is a data race; a
  ``threading.local`` read inside a submitted callable sees a fresh,
  empty instance on the worker thread.
* **Resource paths** (RL802) — every CFG path from a
  ``shared_memory.SharedMemory(...)`` construction to scope exit
  (exception edges included) must release the handle
  (``close``/``unlink``) or transfer ownership (return it, store it,
  pass it on).
* **Iteration order** (RL805) — aggregating over an unordered
  collection (set literals/comprehensions, ``set()``/``frozenset()``)
  makes float summation order — and therefore bitwise results — a
  function of hash seeds and object addresses.

All six rules are heuristic under-approximations tuned for zero false
positives on this repository; genuinely safe sites that still trip a
rule should carry a ``# reprolint: disable=RL80x`` comment explaining
why (see docs/LINTING.md).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from tools.reprolint.asthelpers import attribute_chain
from tools.reprolint.dataflow import ScopeAnalysis, SubmissionSite
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register

#: provenance kinds that mark a value as an RNG stream
_RNG_KINDS = ("rng_raw", "rng_blessed")

#: methods that mutate their receiver in place (lists/dicts/sets/arrays)
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "sort",
        "reverse",
        "fill",
        "partition",
        "put",
        "resize",
    }
)

#: ndarray in-place methods for RL803 (beyond the shared mutator set)
_INPLACE_ARRAY_METHODS = frozenset(
    {"fill", "sort", "partition", "put", "resize", "itemset", "setfield"}
)

#: aggregation callables whose float result depends on operand order
_AGGREGATORS = frozenset(
    {
        "sum",
        "fsum",
        "mean",
        "average",
        "dot",
        "reduce",
        "prod",
        "cumsum",
        "weighted_average",
        "weighted_mean",
    }
)

#: methods constructors named like these are never flagged by RL800
_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def _terminal(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


# ---------------------------------------------------------------------------
# Lock-discipline analysis (RL800)
# ---------------------------------------------------------------------------


def _self_lock_name(expr: ast.AST) -> Optional[str]:
    """``_lock`` for ``self._lock`` (any attr containing "lock")."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and "lock" in expr.attr.lower()
    ):
        return expr.attr
    return None


class _AttrWrite:
    __slots__ = ("attr", "node", "method", "lock")

    def __init__(
        self, attr: str, node: ast.AST, method: str, lock: Optional[str]
    ) -> None:
        self.attr = attr
        self.node = node
        self.method = method
        self.lock = lock  # guarding lock attr name, None when unguarded


class _LockDisciplineVisitor(ast.NodeVisitor):
    """Collect ``self.<attr>`` mutations in one method, lock-aware.

    Guardedness is lexical: a write inside ``with self.<*lock*>:`` is
    guarded by that lock.  ``acquire()``/``release()`` pairs are not
    modelled (this codebase uses ``with`` exclusively).
    """

    def __init__(self, method_name: str) -> None:
        self.method = method_name
        self.writes: List[_AttrWrite] = []
        self._locks: List[str] = []

    def visit_With(self, node: ast.With) -> None:
        held = [
            name
            for item in node.items
            if (name := _self_lock_name(item.context_expr)) is not None
        ]
        self._locks.extend(held)
        self.generic_visit(node)
        if held:
            del self._locks[-len(held):]

    visit_AsyncWith = visit_With

    def _record(self, attr: str, node: ast.AST) -> None:
        lock = self._locks[-1] if self._locks else None
        self.writes.append(_AttrWrite(attr, node, self.method, lock))

    def _record_target(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) and target.value.id == "self":
                self._record(target.attr, node)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                self._record(base.attr, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_target(elt, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_target(node.target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
        ):
            self._record(func.value.attr, node)
        self.generic_visit(node)


def class_lock_discipline(
    classdef: ast.ClassDef,
) -> Dict[str, List[_AttrWrite]]:
    """Per-attribute write records over the class's non-constructor methods."""
    writes: Dict[str, List[_AttrWrite]] = {}
    for stmt in classdef.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if stmt.name in _CONSTRUCTION_METHODS:
            continue  # construction happens-before publication
        visitor = _LockDisciplineVisitor(stmt.name)
        visitor.visit(stmt)
        for write in visitor.writes:
            writes.setdefault(write.attr, []).append(write)
    return writes


@register
class MixedLockDisciplineRule(Rule):
    """RL800: attribute written both under and outside its guarding lock."""

    rule_id = "RL800"
    family = "concurrency"
    severity = Severity.ERROR
    description = (
        "A shared mutable attribute is written both inside and outside "
        "'with self._lock' blocks; the unguarded write races with every "
        "guarded one."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for attr, writes in sorted(class_lock_discipline(node).items()):
                guarded = [w for w in writes if w.lock is not None]
                unguarded = [w for w in writes if w.lock is None]
                if not guarded or not unguarded:
                    continue
                first = min(unguarded, key=lambda w: w.node.lineno)
                locked = min(guarded, key=lambda w: w.node.lineno)
                yield self.make_finding(
                    ctx,
                    first.node,
                    f"self.{attr} is written under self.{locked.lock} in "
                    f"{node.name}.{locked.method} (line "
                    f"{locked.node.lineno}) but without it here in "
                    f"{node.name}.{first.method}; hold the lock for every "
                    "write or document why this one cannot race",
                    attribute=attr,
                    lock=locked.lock,
                    guarded_line=locked.node.lineno,
                )


# ---------------------------------------------------------------------------
# RNG capture across executor boundaries (RL801)
# ---------------------------------------------------------------------------


def _rebound_in(loop: ast.AST, name: str) -> bool:
    """Is ``name`` rebound anywhere inside ``loop``'s subtree?

    Loop targets, plain/augmented/annotated assignments, and ``with``
    as-bindings all count.  The walk includes nested defs — an over-
    approximation that only ever produces *fewer* findings.
    """
    for sub in ast.walk(loop):
        targets: List[ast.AST] = []
        if isinstance(sub, (ast.For, ast.AsyncFor)):
            targets = [sub.target]
        elif isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            targets = [
                item.optional_vars
                for item in sub.items
                if item.optional_vars is not None
            ]
        for target in targets:
            for part in ast.walk(target):
                if isinstance(part, ast.Name) and part.id == name:
                    return True
    return False


@register
class SharedRngCaptureRule(Rule):
    """RL801: one RNG stream captured by more than one submitted task."""

    rule_id = "RL801"
    family = "concurrency"
    severity = Severity.ERROR
    description = (
        "An np.random.Generator is captured by multiple executor tasks "
        "(or by every iteration of a submission loop); concurrent draws "
        "make results scheduling-dependent — derive one stream per task."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        for scope in ctx.dataflow().scopes:
            yield from self._check_scope(ctx, scope)

    def _check_scope(
        self, ctx: FileContext, scope: ScopeAnalysis
    ) -> Iterable[Finding]:
        sites = scope.submission_sites()
        if not sites:
            return
        # (name, creation line) -> capturing (site, Name) pairs.  The
        # origin line identifies the *object*: a reassignment between two
        # submissions changes the origin, so distinct generators reused
        # under one variable name do not alias into a false positive.
        captures: Dict[
            Tuple[str, int], List[Tuple[SubmissionSite, ast.Name]]
        ] = {}
        for site in sites:
            seen: Set[Tuple[str, int]] = set()
            for name_node in site.captured:
                origins = {
                    v.origin_line
                    for v in scope.provenance(name_node)
                    if v.kind in _RNG_KINDS
                }
                for origin in origins:
                    key = (name_node.id, origin)
                    if key in seen:
                        continue
                    seen.add(key)
                    captures.setdefault(key, []).append((site, name_node))
        flagged: Set[str] = set()
        for (name, origin), entries in sorted(captures.items()):
            if name in flagged:
                continue
            if len(entries) >= 2:
                flagged.add(name)
                _, name_node = entries[1]
                yield self.make_finding(
                    ctx,
                    name_node,
                    f"RNG stream '{name}' (created at line {origin}) is "
                    f"captured by {len(entries)} submitted tasks; "
                    "concurrent tasks sharing one Generator make draw "
                    "order scheduling-dependent — derive a per-task "
                    "stream (repro.utils.rng.derive_generator)",
                    name=name,
                    origin_line=origin,
                    capture_count=len(entries),
                )
                continue
            site, name_node = entries[0]
            if not site.loops:
                continue
            loop = site.loops[-1]
            loop_end = getattr(loop, "end_lineno", loop.lineno) or loop.lineno
            created_in_loop = loop.lineno <= origin <= loop_end
            if created_in_loop or _rebound_in(loop, name):
                continue  # fresh stream per iteration: the correct idiom
            flagged.add(name)
            yield self.make_finding(
                ctx,
                name_node,
                f"RNG stream '{name}' (created at line {origin}, outside "
                f"the loop at line {loop.lineno}) is captured by every "
                "task this loop submits; all tasks share one Generator — "
                "derive a per-task stream "
                "(repro.utils.rng.derive_generator)",
                name=name,
                origin_line=origin,
                loop_line=loop.lineno,
            )


# ---------------------------------------------------------------------------
# SharedMemory release on every CFG path (RL802)
# ---------------------------------------------------------------------------


def _sharedmemory_assignment(unit: ast.stmt) -> Optional[str]:
    """Bound name when ``unit`` is ``x = SharedMemory(...)``."""
    if isinstance(unit, ast.Assign) and len(unit.targets) == 1:
        target, value = unit.targets[0], unit.value
    elif isinstance(unit, ast.AnnAssign) and unit.value is not None:
        target, value = unit.target, unit.value
    else:
        return None
    if (
        isinstance(target, ast.Name)
        and isinstance(value, ast.Call)
        and _terminal(value.func) == "SharedMemory"
    ):
        return target.id
    return None


def _unit_effect(unit: ast.stmt, var: str, creation: ast.stmt) -> Optional[str]:
    """How ``unit`` affects the tracked handle ``var``.

    ``"release"`` — calls ``var.close()`` or ``var.unlink()``;
    ``"transfer"`` — rebinds ``var`` or uses it as a bare value (stored,
    returned, passed along: ownership leaves this scope's control);
    ``None`` — no effect (attribute reads like ``var.buf`` included).
    """
    if unit is creation:
        return None
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(unit):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    for node in ast.walk(unit):
        if not isinstance(node, ast.Name) or node.id != var:
            continue
        if isinstance(node.ctx, ast.Store):
            return "transfer"  # rebound: the original object is out of reach
        parent = parents.get(id(node))
        if isinstance(parent, ast.Attribute):
            if parent.attr in ("close", "unlink"):
                grand = parents.get(id(parent))
                if isinstance(grand, ast.Call) and grand.func is parent:
                    return "release"
            continue  # plain attribute read (.buf, .name): not a transfer
        if isinstance(parent, ast.Delete):
            return "transfer"
        return "transfer"  # bare use: arg, return element, alias, container
    return None


def _is_handler_block(units: List[ast.stmt]) -> bool:
    return bool(units) and isinstance(units[0], ast.ExceptHandler)


def _leaking_path_exists(
    scope: ScopeAnalysis, creation: ast.stmt, var: str
) -> bool:
    """Does some CFG path from ``creation`` reach scope exit unreleased?"""
    cfg = scope.cfg
    start_bid = start_idx = None
    for bid, block in cfg.blocks.items():
        for i, unit in enumerate(block.units):
            if unit is creation:
                start_bid, start_idx = bid, i + 1
                break
        if start_bid is not None:
            break
    if start_bid is None:  # pragma: no cover - creation outside the CFG
        return False
    seen: Set[int] = set()
    stack: List[Tuple[int, int]] = [(start_bid, start_idx)]
    while stack:
        bid, idx = stack.pop()
        block = cfg.blocks[bid]
        effect = None
        for unit in block.units[idx:]:
            effect = _unit_effect(unit, var, creation)
            if effect is not None:
                break
        if effect is None:
            if bid == cfg.exit:
                return True
            for succ in block.succ:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, 0))
            continue
        # Released/transferred on the straight-line path — but any unit
        # before the release may raise, so exception successors (handler
        # entry blocks) still need the handle released on their paths.
        for succ in block.succ:
            if succ in seen:
                continue
            if _is_handler_block(cfg.blocks[succ].units):
                seen.add(succ)
                stack.append((succ, 0))
    return False


@register
class SharedMemoryReleaseRule(Rule):
    """RL802: SharedMemory handle not released on every CFG path."""

    rule_id = "RL802"
    family = "concurrency"
    severity = Severity.ERROR
    description = (
        "A shared_memory.SharedMemory(...) handle must reach close()/"
        "unlink() (or have its ownership transferred) on every CFG path, "
        "exception edges included; a leaked segment survives the process."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        for scope in ctx.dataflow().scopes:
            for block in scope.cfg.blocks.values():
                for unit in block.units:
                    var = _sharedmemory_assignment(unit)
                    if var is None:
                        continue
                    if _leaking_path_exists(scope, unit, var):
                        yield self.make_finding(
                            ctx,
                            unit,
                            f"SharedMemory handle '{var}' is not closed/"
                            "unlinked (or ownership-transferred) on every "
                            "path out of this scope — an exception or "
                            "early return here orphans the segment until "
                            "reboot; close it in a finally block or hand "
                            "it to an owning container",
                            handle=var,
                        )


# ---------------------------------------------------------------------------
# In-place mutation of executor-escaped arrays (RL803)
# ---------------------------------------------------------------------------


class _MutationScanner(ast.NodeVisitor):
    """In-place mutations of bare names in one scope (nested defs skipped)."""

    def __init__(self) -> None:
        self.mutations: List[Tuple[str, ast.AST, str]] = []

    def visit_FunctionDef(self, node: ast.AST) -> None:
        return None

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef

    def _subscript_base(self, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            return target.value.id
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            base = self._subscript_base(target)
            if base is not None:
                self.mutations.append((base, node, "subscript store"))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.mutations.append(
                (node.target.id, node, "augmented assignment")
            )
        else:
            base = self._subscript_base(node.target)
            if base is not None:
                self.mutations.append((base, node, "augmented subscript"))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            attr = func.attr
            if attr in _INPLACE_ARRAY_METHODS or (
                attr.endswith("_") and not attr.startswith("_")
            ):
                self.mutations.append(
                    (func.value.id, node, f".{attr}() call")
                )
        for kw in node.keywords:
            if kw.arg == "out" and isinstance(kw.value, ast.Name):
                self.mutations.append(
                    (kw.value.id, node, "out= argument")
                )
        self.generic_visit(node)


@register
class EscapedArrayMutationRule(Rule):
    """RL803: in-place mutation of a value escaping into executor tasks."""

    rule_id = "RL803"
    family = "concurrency"
    severity = Severity.WARNING
    description = (
        "A value submitted to an executor task is mutated in place "
        "(+=, x[...]=, out=, .fill()/.apply_()) in the submitting scope; "
        "a pool worker may observe the mutation mid-solve."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        for scope in ctx.dataflow().scopes:
            yield from self._check_scope(ctx, scope)

    def _check_scope(
        self, ctx: FileContext, scope: ScopeAnalysis
    ) -> Iterable[Finding]:
        sites = scope.submission_sites()
        if not sites:
            return
        first_capture: Dict[str, int] = {}
        capture_loops: Dict[str, List[ast.stmt]] = {}
        for site in sites:
            for name_node in site.captured:
                line = site.call.lineno
                prev = first_capture.get(name_node.id)
                if prev is None or line < prev:
                    first_capture[name_node.id] = line
                capture_loops.setdefault(name_node.id, []).extend(site.loops)
        scanner = _MutationScanner()
        for stmt in scope.body:
            scanner.visit(stmt)
        reported: Set[Tuple[str, int]] = set()
        for name, node, how in scanner.mutations:
            if name not in first_capture:
                continue
            line = getattr(node, "lineno", 0)
            after_capture = line > first_capture[name]
            in_capture_loop = any(
                loop.lineno
                <= line
                <= (getattr(loop, "end_lineno", loop.lineno) or loop.lineno)
                for loop in capture_loops.get(name, ())
            )
            if not (after_capture or in_capture_loop):
                continue  # mutation fully precedes every escape
            key = (name, line)
            if key in reported:
                continue
            reported.add(key)
            yield self.make_finding(
                ctx,
                node,
                f"'{name}' escaped into an executor task (first submitted "
                f"at line {first_capture[name]}) and is mutated in place "
                f"here ({how}); a worker holding the same object may "
                "observe the write mid-task — mutate a copy, or move the "
                "write before any submission",
                name=name,
                mutation=how,
                first_capture_line=first_capture[name],
            )


# ---------------------------------------------------------------------------
# threading.local state read from submitted callables (RL804)
# ---------------------------------------------------------------------------


def _threadlocal_classes(tree: ast.AST) -> Set[str]:
    """Names of classes in this file subclassing ``threading.local``."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            chain = attribute_chain(base)
            if chain == ["threading", "local"] or (
                isinstance(base, ast.Name) and base.id == "local"
            ):
                out.add(node.name)
    return out


@register
class ThreadLocalEscapeRule(Rule):
    """RL804: threading.local state read inside a submitted callable."""

    rule_id = "RL804"
    family = "concurrency"
    severity = Severity.WARNING
    description = (
        "A threading.local subclass's state is read inside a function "
        "that executor workers run; each worker thread sees a fresh, "
        "empty instance — pass the state explicitly (e.g. a parent "
        "span) instead."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        tl_classes = _threadlocal_classes(tree)
        if not tl_classes:
            return
        # Instances: module/class-level names and self attributes bound
        # to a threading.local subclass constructed in this file.
        instance_names: Set[str] = set()
        instance_attrs: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in tl_classes
            ):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    instance_names.add(target.id)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    instance_attrs.add(target.attr)
        if not instance_names and not instance_attrs:
            return
        submitted = self._submitted_names(ctx)
        if not submitted:
            return
        for node in ast.walk(tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            qualified = (
                f"{ctx.module_name}.{node.name}" if ctx.module_name else None
            )
            if node.name not in submitted and qualified not in submitted:
                continue
            for read in self._threadlocal_reads(
                node, instance_names, instance_attrs
            ):
                yield self.make_finding(
                    ctx,
                    read,
                    f"'{node.name}' runs on executor workers (it is "
                    "submitted to a pool) but reads threading.local state "
                    "here; worker threads see a fresh, empty instance — "
                    "pass the state in explicitly",
                    function=node.name,
                )

    @staticmethod
    def _submitted_names(ctx: FileContext) -> Set[str]:
        names: Set[str] = set()
        for _, site in ctx.dataflow().submission_sites():
            if site.callable_name:
                names.add(site.callable_name)
        if ctx.index is not None:
            names |= ctx.index.submitted_callables()
        return names

    @staticmethod
    def _threadlocal_reads(
        func: ast.AST, instance_names: Set[str], instance_attrs: Set[str]
    ) -> List[ast.AST]:
        reads: List[ast.AST] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Attribute) or not isinstance(
                node.ctx, ast.Load
            ):
                continue
            base = node.value
            if isinstance(base, ast.Name) and base.id in instance_names:
                reads.append(node)
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in instance_attrs
            ):
                reads.append(node)
        return reads


# ---------------------------------------------------------------------------
# Unordered iteration feeding aggregation (RL805)
# ---------------------------------------------------------------------------


def _is_unordered(ctx: FileContext, expr: ast.AST) -> bool:
    return any(
        v.kind == "unordered" for v in ctx.dataflow().provenance(expr)
    )


def _body_aggregates(body: List[ast.stmt]) -> Optional[ast.AST]:
    """First aggregation-ish node in a loop body (nested defs skipped)."""

    class _Scan(ast.NodeVisitor):
        found: Optional[ast.AST] = None

        def visit_FunctionDef(self, node: ast.AST) -> None:
            return None

        visit_AsyncFunctionDef = visit_FunctionDef
        visit_Lambda = visit_FunctionDef

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            if self.found is None:
                self.found = node
            self.generic_visit(node)

        def visit_Call(self, node: ast.Call) -> None:
            if self.found is None and _terminal(node.func) in _AGGREGATORS:
                self.found = node
            self.generic_visit(node)

    scanner = _Scan()
    for stmt in body:
        scanner.visit(stmt)
    return scanner.found


@register
class UnorderedAggregationRule(Rule):
    """RL805: iteration over an unordered collection feeds aggregation."""

    rule_id = "RL805"
    family = "concurrency"
    severity = Severity.WARNING
    description = (
        "Accumulating over a set/frozenset iterates in hash order (object "
        "ids, interpreter salt); float summation order then varies run to "
        "run — a bit-identity hazard.  Sort first, or use a list/array."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if not _is_unordered(ctx, node.iter):
                    continue
                hit = _body_aggregates(node.body)
                if hit is not None:
                    yield self.make_finding(
                        ctx,
                        node,
                        "this loop iterates an unordered collection and "
                        f"accumulates (line {hit.lineno}); iteration order "
                        "follows hashes, so float accumulation is not "
                        "bit-stable — iterate sorted(...) or a list",
                        aggregation_line=hit.lineno,
                    )
            elif isinstance(node, ast.Call):
                if _terminal(node.func) not in _AGGREGATORS:
                    continue
                for arg in node.args:
                    target: Optional[ast.AST] = None
                    if isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ):
                        for gen in arg.generators:
                            if _is_unordered(ctx, gen.iter):
                                target = gen.iter
                                break
                    elif _is_unordered(ctx, arg):
                        target = arg
                    if target is not None:
                        yield self.make_finding(
                            ctx,
                            node,
                            f"{_terminal(node.func)}(...) aggregates over "
                            "an unordered collection; float reduction "
                            "order follows hashes, so the result is not "
                            "bit-stable — sort first or use a list",
                        )
                        break
