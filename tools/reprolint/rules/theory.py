"""RL5xx — theory contracts (ICPP'20 Lemma 1).

The paper's local-convergence lemma constrains the hyperparameters that
appear all over configs, benches, and examples:

* the step-size parameter must satisfy ``beta > 3`` (the tau lower
  bound (55) diverges as ``beta -> 3+``);
* the local iteration count is capped by eq. (13) for SARAH
  (``tau <= (5 beta^2 - 4 beta)/8``) and the smaller self-consistent
  eq. (14) bound for SVRG.

These are *statically decidable* whenever both values are literals at a
call site, so misconfigured experiments are caught at lint time instead
of via a diverged training curve.  Bounds are computed by
:mod:`repro.core.theory` when importable (the single source of truth);
closed-form fallbacks keep the linter dependency-free otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from tools.reprolint.asthelpers import keyword_map, numeric_literal, string_literal
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register

#: Keywords that denote the paper's tau (local iteration count).
_TAU_KEYWORDS = ("tau", "num_local_steps")


def _theory_module():
    """``repro.core.theory`` if importable, else None (use fallbacks)."""
    try:
        from repro.core import theory  # type: ignore

        return theory
    except ImportError:
        pass
    # Running standalone from the repo root without PYTHONPATH=src: the
    # source tree sits next to the tools package.
    src = Path(__file__).resolve().parents[3] / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))
        try:
            from repro.core import theory  # type: ignore

            return theory
        except ImportError:
            pass
    return None


def _tau_upper_bound(beta: float, estimator: str) -> float:
    theory = _theory_module()
    if theory is not None:
        if estimator == "svrg":
            return float(theory.tau_upper_bound_svrg(beta))
        return float(theory.tau_upper_bound_sarah(beta))
    # Fallback closed forms (paper eqs. (13)/(14) with a_min from (65)).
    if estimator != "svrg":
        return (5.0 * beta**2 - 4.0 * beta) / 8.0
    import math

    base = 5.0 * beta**2 - 4.0 * beta

    def a_min(tau: float) -> float:
        return 4.0 * (math.sqrt(tau + 1.0) + math.sqrt(tau + 2.0)) ** 2

    tau = 0
    while tau + 1 <= base / (8.0 * a_min(tau + 1)) - 2.0:
        tau += 1
    return float(tau)


def _beta_values(node: ast.AST) -> List[float]:
    """Literal beta value(s): a scalar or a tuple/list grid of literals."""
    v = numeric_literal(node)
    if v is not None:
        return [v]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        vals = [numeric_literal(e) for e in node.elts]
        return [v for v in vals if v is not None]
    return []


def _estimator_hint(call: ast.Call) -> str:
    """'svrg'/'sarah' when the call names the estimator, else 'sarah'.

    The SARAH bound is the laxer of the two, so defaulting to it keeps
    the rule free of false positives when the estimator is unknown.
    """
    kwargs = keyword_map(call)
    for key in ("algorithm", "estimator"):
        s = string_literal(kwargs.get(key, ast.Constant(value=None)))
        if s is not None:
            s = s.lower()
            if "svrg" in s:
                return "svrg"
            if "sarah" in s:
                return "sarah"
    return "sarah"


@register
class BetaBoundRule(Rule):
    """RL500: literal ``beta <= 3`` violates Lemma 1."""

    rule_id = "RL500"
    family = "theory"
    severity = Severity.ERROR
    description = (
        "Lemma 1 requires beta > 3 (the tau lower bound (55) diverges at "
        "beta = 3); a literal beta <= 3 can never satisfy the theory."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            beta_node = keyword_map(node).get("beta")
            if beta_node is None:
                continue
            for value in _beta_values(beta_node):
                if value <= 3.0:
                    yield self.make_finding(
                        ctx,
                        beta_node,
                        f"beta={value:g} violates Lemma 1 (requires beta > 3; "
                        "eta = 1/(beta L) with beta <= 3 admits no feasible "
                        "local iteration count)",
                        beta=value,
                    )


@register
class TauUpperBoundRule(Rule):
    """RL501: literal tau exceeds the Lemma 1 upper bound for literal beta."""

    rule_id = "RL501"
    family = "theory"
    severity = Severity.ERROR
    description = (
        "tau above the Lemma 1 cap — eq. (13) for SARAH, eq. (14) for "
        "SVRG — voids the convergence guarantee."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            kwargs = keyword_map(node)
            beta_node = kwargs.get("beta")
            if beta_node is None:
                continue
            betas = [b for b in _beta_values(beta_node) if b > 3.0]
            if not betas:
                continue  # beta <= 3 is RL500's finding
            tau_node: Optional[ast.AST] = None
            for key in _TAU_KEYWORDS:
                if key in kwargs:
                    tau_node = kwargs[key]
                    break
            if tau_node is None:
                continue
            tau = numeric_literal(tau_node)
            if tau is None:
                continue
            estimator = _estimator_hint(node)
            # A grid is compatible if at least one beta admits this tau.
            bound = max(_tau_upper_bound(b, estimator) for b in betas)
            if tau > bound:
                yield self.make_finding(
                    ctx,
                    tau_node,
                    f"tau={tau:g} exceeds the Lemma 1 {estimator.upper()} "
                    f"upper bound {bound:g} for beta={max(betas):g}; reduce "
                    "tau or raise beta",
                    tau=tau,
                    bound=bound,
                    estimator=estimator,
                )
