"""Rule implementations; importing this package registers every rule."""

from tools.reprolint.rules import (  # noqa: F401
    arrays,
    concurrency,
    dtype,
    hygiene,
    layering,
    provenance,
    rng,
    safety,
    theory,
)
