"""Rule implementations; importing this package registers every rule."""

from tools.reprolint.rules import dtype, layering, rng, safety, theory  # noqa: F401
