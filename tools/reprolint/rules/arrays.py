"""RL9xx — ndarray shape/dtype abstract interpretation.

These rules consume the :mod:`tools.reprolint.shapes` domain (via the
lazily built ``ctx.shapes()`` analysis): symbolic/literal dimension
tracking with broadcasting and matmul transfer functions, a float64-
centred dtype lattice, and ``# shape:`` annotation summaries applied
interprocedurally over the ProjectIndex call graph.

The error rules (RL900–RL902) only fire on *provable* facts — a
literal-vs-literal dimension conflict, a rank change both sides of
which demonstrably contribute extent, a concrete narrow dtype reached
through inferred flow — so they are safe to gate CI on.  RL903/RL904
are warnings: hot-loop allocation pressure and annotation drift are
worth a look but admit legitimate exceptions.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Tuple

from tools.reprolint.asthelpers import NumpyAliases, keyword_map, walk_with_parents
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register
from tools.reprolint.shapes import (
    DTYPE_TOP,
    SUB_FLOAT64,
    ShapeVal,
    broadcast_shapes,
    dims_equal_provable,
    format_shape,
    matmul_shapes,
    promote_dtypes,
)

#: Elementwise binary operators with broadcast semantics.
_ELEMENTWISE_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)

#: Call names (terminal attribute) treated as matmul contractions.
_MATMUL_CALLS = ("matmul", "batched_matmul", "dot")

#: np.<name> binary ufuncs whose operands must broadcast.
_BINARY_UFUNC_CALLS = (
    "add", "subtract", "multiply", "divide", "true_divide", "maximum",
    "minimum", "power", "hypot", "arctan2",
)

#: Reductions/contractions that accumulate over elements: a silent
#: rank-changing broadcast feeding one of these corrupts sums instead
#: of crashing.
_ACCUMULATORS = (
    "sum", "mean", "prod", "std", "var", "norm", "dot", "matmul",
    "batched_matmul", "average", "einsum", "trace",
)

#: ``np.<name>`` calls that materialize a fresh array (RL903).  Views
#: (``reshape``/``transpose``/``ravel``) and the no-copy ``asarray``
#: fast path are deliberately absent.
_NP_ALLOCATORS = (
    "zeros", "ones", "empty", "full", "zeros_like", "ones_like",
    "empty_like", "full_like", "array", "arange", "linspace",
    "concatenate", "stack", "vstack", "hstack", "column_stack", "tile",
    "repeat", "pad", "copy", "ascontiguousarray",
)

#: Method calls that copy regardless of receiver module.
_METHOD_ALLOCATORS = ("copy", "astype", "flatten")


def _terminal_call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _stamp_parents(tree: ast.AST) -> None:
    for _ in walk_with_parents(tree):
        pass


def _known(val: Optional[ShapeVal]) -> bool:
    return val is not None and val.shape is not None


@register
class ShapeMismatchRule(Rule):
    """RL900: provably incompatible shapes meet at a matmul or
    elementwise site.

    Fires only when both operands have inferred shapes and a literal
    dimension pair (or the matmul contraction pair) can never match —
    symbolic or unknown dims never trigger it.
    """

    rule_id = "RL900"
    family = "arrays"
    severity = Severity.ERROR
    description = (
        "Provable shape mismatch: inferred operand shapes can never "
        "broadcast/contract at this site."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        shapes = ctx.shapes()
        for node in ast.walk(tree):
            if isinstance(node, ast.BinOp):
                scope = shapes.scope_containing(node)
                if scope is None:
                    continue
                a = scope.array_of(node.left)
                b = scope.array_of(node.right)
                if not (_known(a) and _known(b)):
                    continue
                if isinstance(node.op, ast.MatMult):
                    out = matmul_shapes(a.shape, b.shape)
                    if out.mismatch:
                        yield self.make_finding(
                            ctx,
                            node,
                            f"matmul of {format_shape(a.shape)} @ "
                            f"{format_shape(b.shape)}: {out.reason}",
                        )
                elif isinstance(node.op, _ELEMENTWISE_OPS):
                    out = broadcast_shapes(a.shape, b.shape)
                    if out.mismatch:
                        yield self.make_finding(
                            ctx,
                            node,
                            "elementwise op on shapes "
                            f"{format_shape(a.shape)} and "
                            f"{format_shape(b.shape)}: axis "
                            f"{out.mismatch_axis} extents can never "
                            "broadcast",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(node, ctx, shapes)

    def _check_call(self, call: ast.Call, ctx, shapes) -> Iterator[Finding]:
        name = _terminal_call_name(call)
        scope = shapes.scope_containing(call)
        if scope is None:
            return
        operands: Optional[Tuple[ast.AST, ast.AST]] = None
        if name in _MATMUL_CALLS:
            if isinstance(call.func, ast.Attribute):
                recv = scope.array_of(call.func.value)
                if _known(recv) and len(call.args) >= 1:
                    a, b = recv, scope.array_of(call.args[0])
                    if _known(b):
                        out = matmul_shapes(a.shape, b.shape)
                        if out.mismatch:
                            yield self.make_finding(
                                ctx,
                                call,
                                f"{name} of {format_shape(a.shape)} and "
                                f"{format_shape(b.shape)}: {out.reason}",
                            )
                    return
            if len(call.args) >= 2:
                a = scope.array_of(call.args[0])
                b = scope.array_of(call.args[1])
                if _known(a) and _known(b):
                    out = matmul_shapes(a.shape, b.shape)
                    if out.mismatch:
                        yield self.make_finding(
                            ctx,
                            call,
                            f"{name} of {format_shape(a.shape)} and "
                            f"{format_shape(b.shape)}: {out.reason}",
                        )
            return
        if name in _BINARY_UFUNC_CALLS and len(call.args) >= 2:
            operands = (call.args[0], call.args[1])
        if operands is None:
            return
        a = scope.array_of(operands[0])
        b = scope.array_of(operands[1])
        if _known(a) and _known(b):
            out = broadcast_shapes(a.shape, b.shape)
            if out.mismatch:
                yield self.make_finding(
                    ctx,
                    call,
                    f"{name} on shapes {format_shape(a.shape)} and "
                    f"{format_shape(b.shape)}: axis {out.mismatch_axis} "
                    "extents can never broadcast",
                )


@register
class SilentBroadcastRule(Rule):
    """RL901: a rank-changing mutual broadcast feeds an accumulation.

    ``(K, 1)`` meeting ``(K,)`` silently manufactures a ``(K, K)``
    outer product; when that lands in a ``sum``/``mean``/``@``/``+=``
    the result is numerically wrong without any exception.  Fires only
    when the ranks differ *and* both operands provably contribute
    extent on a broadcast axis.
    """

    rule_id = "RL901"
    family = "arrays"
    severity = Severity.ERROR
    description = (
        "Rank-changing silent broadcast ((K,1) meets (K,)) reaching an "
        "accumulation — the blown-up outer product sums without error."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        shapes = ctx.shapes()
        _stamp_parents(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.BinOp) or not isinstance(
                node.op, _ELEMENTWISE_OPS
            ):
                continue
            scope = shapes.scope_containing(node)
            if scope is None:
                continue
            a = scope.array_of(node.left)
            b = scope.array_of(node.right)
            if not (_known(a) and _known(b)):
                continue
            out = broadcast_shapes(a.shape, b.shape)
            if not out.mutual or out.mismatch:
                continue
            if self._reaches_accumulation(node):
                yield self.make_finding(
                    ctx,
                    node,
                    f"shapes {format_shape(a.shape)} and "
                    f"{format_shape(b.shape)} broadcast to "
                    f"{format_shape(out.shape)} — a rank-changing blowup "
                    "feeding an accumulation; reshape or ravel one "
                    "operand so the ranks agree",
                )

    @staticmethod
    def _reaches_accumulation(node: ast.AST) -> bool:
        current = node
        for _ in range(32):
            parent = getattr(current, "_reprolint_parent", None)
            if parent is None or isinstance(parent, ast.stmt):
                return isinstance(parent, ast.AugAssign)
            if isinstance(parent, ast.Call):
                name = _terminal_call_name(parent)
                if name in _ACCUMULATORS:
                    return True
            if isinstance(parent, ast.BinOp) and isinstance(
                parent.op, ast.MatMult
            ):
                return True
            current = parent
        return False


@register
class DtypeDriftRule(Rule):
    """RL902: float64 data reaches a sub-float64 or object dtype through
    *inferred* flow.

    A literal narrow dtype at the call site is RL3xx territory; this
    rule catches the cases literals cannot — an ``astype`` whose target
    dtype arrives through a variable, an ``out=`` buffer inferred
    narrower than the float64 inputs it receives, and arithmetic whose
    inferred operand dtypes produce an object array.
    """

    rule_id = "RL902"
    family = "arrays"
    severity = Severity.ERROR
    description = (
        "Dtype drift: float64 computation reaches sub-float64/object "
        "dtype through inferred (non-literal) flow."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        shapes = ctx.shapes()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                yield from self._check_astype(node, ctx, shapes)
                yield from self._check_out_buffer(node, ctx, shapes)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, _ELEMENTWISE_OPS + (ast.MatMult,)
            ):
                scope = shapes.scope_containing(node)
                if scope is None:
                    continue
                a = scope.array_of(node.left)
                b = scope.array_of(node.right)
                if a is None or b is None:
                    continue
                pair = {a.dtype, b.dtype}
                if "object" in pair and "float64" in pair:
                    yield self.make_finding(
                        ctx,
                        node,
                        "float64 operand meets an object-dtype array: the "
                        "result degrades to object (boxed scalars, no "
                        "BLAS); coerce the object operand first",
                    )

    def _check_astype(self, call: ast.Call, ctx, shapes) -> Iterator[Finding]:
        if not (
            isinstance(call.func, ast.Attribute) and call.func.attr == "astype"
        ):
            return
        scope = shapes.scope_containing(call)
        if scope is None:
            return
        recv = scope.array_of(call.func.value)
        if recv is None or recv.dtype != "float64":
            return
        dt_node = call.args[0] if call.args else keyword_map(call).get("dtype")
        # Only *variable* targets: a literal np.float32 here is RL3xx.
        if not isinstance(dt_node, ast.Name):
            return
        dts = {
            v.dtype for v in scope.value_of(dt_node) if v.kind == "dtype"
        }
        if dts and dts <= (SUB_FLOAT64 | {"object"}):
            yield self.make_finding(
                ctx,
                call,
                f"float64 array cast to {'/'.join(sorted(dts))} through "
                f"variable {dt_node.id!r}: inferred dtype drift below "
                "float64",
            )

    def _check_out_buffer(self, call: ast.Call, ctx, shapes) -> Iterator[Finding]:
        out_node = keyword_map(call).get("out")
        if out_node is None:
            return
        scope = shapes.scope_containing(call)
        if scope is None:
            return
        ov = scope.array_of(out_node)
        if ov is None or ov.dtype not in SUB_FLOAT64:
            return
        promoted = None
        for arg in call.args:
            a = scope.array_of(arg)
            if a is None or a.dtype == DTYPE_TOP:
                return  # unknown input: not provable
            promoted = (
                a.dtype if promoted is None else promote_dtypes(promoted, a.dtype)
            )
        if promoted == "float64":
            yield self.make_finding(
                ctx,
                call,
                f"float64 inputs written into a {ov.dtype} out= buffer: "
                "the store truncates every element",
            )


@register
class HotLoopAllocationRule(Rule):
    """RL903: a fresh array allocation inside a hot loop.

    "Hot" means the enclosing function is in the call-graph closure of
    the configured ``hot-path-roots`` (``solve_cohort``, local-solver
    inner loops, ``im2col``, …).  Allocations that immediately escape —
    into ``list.append``/``extend`` or a ``return``/``yield`` — are the
    collect-results idiom and stay clean; everything else repeated per
    iteration belongs hoisted, or routed through the backend seam's
    ``scratch()``/``out=`` forms.
    """

    rule_id = "RL903"
    family = "arrays"
    severity = Severity.WARNING
    description = (
        "Array allocation inside a hot loop; hoist it or use the "
        "backend scratch()/out= forms."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        roots = list(ctx.config.hot_path_roots)
        if not roots:
            return
        if ctx.index is not None:
            hot = ctx.index.hot_functions(roots)
        else:
            hot = set(roots)
        aliases = NumpyAliases(tree)
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            qual = (
                f"{ctx.module_name}.{fn.name}" if ctx.module_name else fn.name
            )
            if qual not in hot and fn.name not in hot:
                continue
            for alloc, kind in self._loop_allocations(fn, aliases):
                yield self.make_finding(
                    ctx,
                    alloc,
                    f"{kind} allocates a fresh array on every iteration of "
                    f"a hot loop (in {fn.name}, reachable from a hot-path "
                    "root); hoist it out of the loop or use a preallocated "
                    "scratch/out= buffer",
                    function=fn.name,
                )

    def _loop_allocations(
        self, fn: ast.AST, aliases: NumpyAliases
    ) -> List[Tuple[ast.Call, str]]:
        out: List[Tuple[ast.Call, str]] = []

        def scan(node: ast.AST, depth: int, stack: Tuple[ast.AST, ...]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                     ast.ClassDef),
                ):
                    continue  # separate scope
                child_depth = depth + (
                    1
                    if isinstance(child, (ast.For, ast.AsyncFor, ast.While))
                    else 0
                )
                if (
                    depth >= 1
                    and isinstance(child, ast.Call)
                    and not self._escapes(stack)
                ):
                    kind = self._allocator_kind(child, aliases)
                    if kind is not None:
                        out.append((child, kind))
                scan(child, child_depth, stack + (child,))

        scan(fn, 0, ())
        return out

    def _escapes(self, stack: Tuple[ast.AST, ...]) -> bool:
        """The allocation is the collect-results idiom, not loop churn.

        Either it sits lexically inside an ``append``/``extend`` call or
        a ``return``/``yield``, or it is bound to a name that the
        enclosing loop body later hands to one of those.
        """
        for anc in stack:
            if isinstance(anc, (ast.Return, ast.Yield, ast.YieldFrom)):
                return True
            if (
                isinstance(anc, ast.Call)
                and isinstance(anc.func, ast.Attribute)
                and anc.func.attr in ("append", "extend", "insert",
                                      "setdefault", "put")
            ):
                return True
        if len(stack) >= 2 and isinstance(stack[-1], ast.Assign):
            assign = stack[-1]
            if len(assign.targets) == 1 and isinstance(
                assign.targets[0], ast.Name
            ):
                loop = next(
                    (
                        anc
                        for anc in reversed(stack)
                        if isinstance(anc, (ast.For, ast.AsyncFor, ast.While))
                    ),
                    None,
                )
                if loop is not None and self._name_escapes(
                    loop, assign.targets[0].id
                ):
                    return True
        return False

    @staticmethod
    def _name_escapes(loop: ast.AST, name: str) -> bool:
        def mentions(node: ast.AST) -> bool:
            return any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(node)
            )

        for sub in ast.walk(loop):
            if isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                if mentions(sub):
                    return True
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in ("append", "extend", "insert")
                and any(mentions(arg) for arg in sub.args)
            ):
                return True
        return False

    @staticmethod
    def _allocator_kind(call: ast.Call, aliases: NumpyAliases) -> Optional[str]:
        if aliases.is_numpy_attr(call.func, *_NP_ALLOCATORS):
            return f"np.{call.func.attr}"  # type: ignore[union-attr]
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _METHOD_ALLOCATORS
            and not aliases.is_numpy_attr(call.func)
        ):
            return f".{call.func.attr}()"
        return None


@register
class ShapeAnnotationContractRule(Rule):
    """RL904: inferred return shape/dtype contradicts the function's
    ``# shape:`` annotation.

    For every annotated function, parameters are seeded from the
    annotation and each ``return`` expression is evaluated in the
    domain; the rule reports only provable contradictions — a known
    rank that differs from the annotated rank, a literal-vs-literal
    dimension conflict, or concrete disagreeing dtypes.  Symbolic and
    unknown dims never fire.
    """

    rule_id = "RL904"
    family = "arrays"
    severity = Severity.WARNING
    description = (
        "# shape: annotation contradicted by the inferred return "
        "shape/dtype."
    )

    _WEAK = {"weak_int", "weak_float", "weak_bool", DTYPE_TOP}

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        shapes = ctx.shapes()
        for fn in ast.walk(tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scope = shapes.scope_for_def(fn)
            if scope is None or scope.summary is None:
                continue
            spec = scope.summary.ret
            if spec is None:
                continue
            for block in scope.cfg.blocks.values():
                for unit in block.units:
                    if not isinstance(unit, ast.Return) or unit.value is None:
                        continue
                    inferred = scope.array_of(unit.value)
                    problem = self._contradiction(spec, inferred)
                    if problem is not None:
                        yield self.make_finding(
                            ctx,
                            unit,
                            f"return of {fn.name} contradicts its shape "
                            f"annotation: {problem}",
                            function=fn.name,
                        )

    def _contradiction(self, spec, inferred: Optional[ShapeVal]) -> Optional[str]:
        if inferred is None:
            return None
        if spec.dims is not None and inferred.shape is not None:
            if len(spec.dims) != len(inferred.shape):
                return (
                    f"annotated rank {len(spec.dims)} "
                    f"({format_shape(spec.dims)}) vs inferred "
                    f"{format_shape(inferred.shape)}"
                )
            for i, (want, got) in enumerate(zip(spec.dims, inferred.shape)):
                if dims_equal_provable(want, got) is False:
                    return (
                        f"axis {i}: annotated {want} vs inferred {got} "
                        f"(annotation {format_shape(spec.dims)}, inferred "
                        f"{format_shape(inferred.shape)})"
                    )
        if (
            spec.dtype != DTYPE_TOP
            and inferred.dtype not in self._WEAK
            and inferred.dtype != spec.dtype
        ):
            return (
                f"annotated dtype {spec.dtype} vs inferred {inferred.dtype}"
            )
        return None
