"""RL4xx — numerical and exception safety.

Bare excepts and mutable default arguments are banned repo-wide; the
unclamped-``log``/``exp`` and unguarded-division checks are scoped to
the configured ``numeric-modules`` (loss and prox code), where a silent
``-inf``/overflow corrupts training instead of crashing it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.reprolint.asthelpers import (
    NumpyAliases,
    contains_call_to,
    contains_literal_offset,
    numeric_literal,
    walk_with_parents,
)
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register

#: Calls inside an argument expression that count as clamping/guarding.
_GUARD_CALLS = ("clip", "maximum", "minimum", "abs", "where", "nan_to_num",
                "log1p", "expm1", "max", "min")


def _numeric_scope(ctx: FileContext) -> bool:
    return ctx.config.module_matches(ctx.module_name, ctx.config.numeric_modules)


@register
class BareExceptRule(Rule):
    """RL400: ``except:`` swallows everything, including KeyboardInterrupt."""

    rule_id = "RL400"
    family = "safety"
    severity = Severity.ERROR
    description = "Bare except: catches SystemExit/KeyboardInterrupt; name the exception."

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.make_finding(
                    ctx,
                    node,
                    "bare 'except:' hides real failures (and catches "
                    "KeyboardInterrupt); catch a named exception",
                )


@register
class MutableDefaultRule(Rule):
    """RL401: mutable default argument is shared across calls."""

    rule_id = "RL401"
    family = "safety"
    severity = Severity.ERROR
    description = "Mutable default argument ([], {}, set(), …) is evaluated once."

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.make_finding(
                        ctx,
                        default,
                        f"mutable default argument in {node.name}(): the same "
                        "object is shared across every call; default to None",
                        function=node.name,
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False


@register
class UnclampedLogRule(Rule):
    """RL402: ``np.log`` of an unguarded expression in loss/prox code."""

    rule_id = "RL402"
    family = "safety"
    severity = Severity.WARNING
    description = (
        "np.log of an unclamped argument yields -inf/nan at 0; clip or "
        "offset the argument (or suppress with a safety argument)."
    )

    _LOGS = ("log", "log2", "log10")

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not _numeric_scope(ctx):
            return
        aliases = NumpyAliases(tree)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            if not aliases.is_numpy_attr(node.func, *self._LOGS):
                continue
            arg = node.args[0]
            if numeric_literal(arg) is not None:
                continue
            if contains_call_to(arg, _GUARD_CALLS) or contains_literal_offset(arg):
                continue
            yield self.make_finding(
                ctx,
                node,
                "np.log of an unclamped expression: a zero argument makes "
                "the loss -inf without raising; clip/offset the argument or "
                "document safety with '# reprolint: disable=RL402'",
            )


@register
class UnclampedExpRule(Rule):
    """RL403 (info): ``np.exp`` of an unguarded expression may overflow."""

    rule_id = "RL403"
    family = "safety"
    severity = Severity.INFO
    description = (
        "np.exp of an unclamped argument overflows to inf around 710; "
        "consider the max-shift idiom or clipping."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not _numeric_scope(ctx):
            return
        aliases = NumpyAliases(tree)
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            if not aliases.is_numpy_attr(node.func, "exp"):
                continue
            arg = node.args[0]
            if numeric_literal(arg) is not None:
                continue
            if contains_call_to(arg, _GUARD_CALLS) or contains_literal_offset(arg):
                continue
            yield self.make_finding(
                ctx,
                node,
                "np.exp of an unclamped expression can overflow to inf; "
                "prefer the max-shift idiom (exp(x - x.max()))",
            )


@register
class UnguardedDivisionRule(Rule):
    """RL404 (info): division by a bare variable in loss/prox code.

    Stays quiet when the denominator is *provably* positive — it flowed
    through a ``check_positive``-style validator, a ``len(...) or 1``
    default, or ``max(x, eps)`` with a positive floor — or when a
    preceding lexical guard (``if den == 0: return/raise/continue``)
    already rules zero out.
    """

    rule_id = "RL404"
    family = "safety"
    severity = Severity.INFO
    description = (
        "Division by a bare name in numeric hot paths; confirm the "
        "denominator cannot be zero (batch sizes, sums of exps, norms)."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not _numeric_scope(ctx):
            return
        flow = ctx.dataflow()
        for node in walk_with_parents(tree):
            den = None
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                den = node.right
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Div):
                den = node.value
            if den is None:
                continue
            if not isinstance(den, (ast.Name, ast.Attribute)):
                continue
            if isinstance(den, ast.Name) and self._provably_positive(
                flow.provenance(den)
            ):
                continue
            if self._zero_guarded(node, den):
                continue
            yield self.make_finding(
                ctx,
                node,
                "division by a bare variable; confirm it is provably "
                "non-zero or add an epsilon/max guard",
            )

    @staticmethod
    def _provably_positive(values) -> bool:
        """True when every provenance fact forces the value above zero."""
        if not values:
            return False
        for v in values:
            if v.kind == "positive":
                continue
            if (
                v.kind in ("literal", "checked")
                and isinstance(v.value, (int, float))
                and not isinstance(v.value, bool)
                and v.value > 0
            ):
                continue
            return False
        return True

    def _zero_guarded(self, node: ast.AST, den: ast.AST) -> bool:
        """A preceding ``if den == 0 / <= 0 / not den:`` in the same
        function whose body bails (return/raise/continue/break)."""
        den_src = ast.unparse(den)
        scope: ast.AST = node
        while True:
            parent = getattr(scope, "_reprolint_parent", None)
            if parent is None:
                return False
            scope = parent
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        lineno = getattr(node, "lineno", 0)
        for sub in ast.walk(scope):
            if not isinstance(sub, ast.If) or sub.lineno >= lineno:
                continue
            if not sub.body or not isinstance(
                sub.body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
            ):
                continue
            if self._guard_matches(sub.test, den_src):
                return True
        return False

    @staticmethod
    def _guard_matches(test: ast.AST, den_src: str) -> bool:
        for sub in ast.walk(test):
            if (
                isinstance(sub, ast.UnaryOp)
                and isinstance(sub.op, ast.Not)
                and ast.unparse(sub.operand) == den_src
            ):
                return True
            if not (isinstance(sub, ast.Compare) and len(sub.ops) == 1):
                continue
            left, op, right = sub.left, sub.ops[0], sub.comparators[0]
            left_src, right_src = ast.unparse(left), ast.unparse(right)
            if left_src == den_src:
                bound = numeric_literal(right)
                if bound is None:
                    continue
                # Bail branch fires when den < / <= bound; the surviving
                # path excludes zero iff the bound is high enough.
                if isinstance(op, ast.Eq) and bound == 0:
                    return True
                if isinstance(op, ast.Lt) and bound >= 1:
                    return True
                if isinstance(op, ast.LtE) and bound >= 0:
                    return True
            elif right_src == den_src:
                bound = numeric_literal(left)
                if bound is None:
                    continue
                if isinstance(op, ast.Eq) and bound == 0:
                    return True
                if isinstance(op, ast.Gt) and bound >= 1:
                    return True
                if isinstance(op, ast.GtE) and bound >= 0:
                    return True
        return False
