"""RL3xx — dtype discipline in numerical hot paths.

The repo's contract (README "Key design decisions") is that every
algorithm operates on flat **float64** parameter vectors: gradient
checks, the smoothness (L) estimates that set the step size
``eta = 1/(beta L)``, and the Lemma 1 certificates all assume float64
accumulation.  A stray float32 cast in :mod:`repro.nn` silently halves
the mantissa and shows up as gradcheck noise, not as an error — so it
is flagged statically in the configured ``dtype-modules``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from tools.reprolint.asthelpers import NumpyAliases, keyword_map, string_literal
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register

_NARROW_FLOATS = {"float32", "float16", "single", "half"}
_ARRAY_FACTORIES = {
    "zeros",
    "ones",
    "empty",
    "full",
    "array",
    "asarray",
    "ascontiguousarray",
    "arange",
    "linspace",
    "zeros_like",
    "ones_like",
    "empty_like",
    "full_like",
    "frombuffer",
    "fromiter",
}


def _narrow_float_name(node: ast.AST, aliases: NumpyAliases) -> Optional[str]:
    """'float32'/'float16'/... when the node denotes a narrow float dtype."""
    s = string_literal(node)
    if s is not None:
        return s if s in _NARROW_FLOATS else None
    for name in _NARROW_FLOATS:
        if aliases.is_numpy_attr(node, name):
            return name
    if isinstance(node, ast.Name) and node.id in _NARROW_FLOATS:
        return node.id
    return None


def _in_scope(ctx: FileContext) -> bool:
    return ctx.config.module_matches(ctx.module_name, ctx.config.dtype_modules)


@register
class NarrowAstypeRule(Rule):
    """RL300: ``.astype(np.float32)`` (or narrower) in a hot-path module."""

    rule_id = "RL300"
    family = "dtype"
    severity = Severity.ERROR
    description = (
        "astype() to a sub-float64 dtype breaks the flat-float64 parameter "
        "contract in nn hot paths."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        aliases = NumpyAliases(tree)
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                continue
            candidates = list(node.args) + [
                kw.value for kw in node.keywords if kw.arg in (None, "dtype")
            ]
            for arg in candidates:
                name = _narrow_float_name(arg, aliases)
                if name is not None:
                    yield self.make_finding(
                        ctx,
                        node,
                        f"astype({name}) narrows below float64; gradcheck and "
                        "smoothness estimates assume float64 end to end",
                        dtype=name,
                    )


@register
class NarrowCreationRule(Rule):
    """RL301: array factory called with an explicit sub-float64 dtype."""

    rule_id = "RL301"
    family = "dtype"
    severity = Severity.ERROR
    description = (
        "np.zeros/ones/array(..., dtype=float32/float16) in nn hot paths; "
        "parameters and activations must be float64."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        aliases = NumpyAliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            fn = node.func
            factory = None
            if isinstance(fn, ast.Attribute) and fn.attr in _ARRAY_FACTORIES:
                factory = fn.attr
            elif isinstance(fn, ast.Name) and fn.id in _ARRAY_FACTORIES:
                factory = fn.id
            if factory is None:
                continue
            dtype_node = keyword_map(node).get("dtype")
            if dtype_node is None:
                continue
            name = _narrow_float_name(dtype_node, aliases)
            if name is not None:
                yield self.make_finding(
                    ctx,
                    node,
                    f"{factory}(..., dtype={name}) creates a sub-float64 "
                    "array in a float64-contract module",
                    factory=factory,
                    dtype=name,
                )
