"""RL6xx — value-provenance (taint) rules over the dataflow engine.

Two flow invariants protect this reproduction that no per-line check
can see:

* **RNG lineage** — bitwise reproducibility rests on every
  :class:`numpy.random.Generator` descending from the single
  ``SeedSequence``-spawning root in :mod:`repro.utils.rng`.  A raw
  ``np.random.default_rng(...)`` created in an upper layer starts a
  second, unrelated lineage whose draws depend on call order relative
  to nothing — results stop being a pure function of the experiment
  seed (RL600).
* **hyperparameter provenance** — FedProx-style methods are known to
  be sensitive to mis-set ``(beta, mu, tau)`` (Li et al. 2020; Yuan &
  Li 2022).  A literal that *provably* violates the ICPP'20 Lemma 1
  bounds and flows into a FedProxVR driver unvalidated is flagged at
  the call site; routing the value through any
  :mod:`repro.core.theory` bound check first transfers responsibility
  to the runtime check, which raises
  :class:`~repro.exceptions.InfeasibleParametersError` loudly (RL601).

Both rules track values through assignments, augmented assignment
(constant-folded), branches (may-analysis: one bad path suffices),
container subscripting/iteration, and function-call validation — see
:mod:`tools.reprolint.dataflow`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from tools.reprolint.asthelpers import NumpyAliases, keyword_map, numeric_literal
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import FileContext, Rule, register
from tools.reprolint.rules.theory import _estimator_hint, _tau_upper_bound

#: Keywords that denote the paper's tau (local iteration count).
_TAU_KEYWORDS = ("tau", "num_local_steps")


def _literal_values(ctx: FileContext, node: ast.AST) -> List[float]:
    """Unvalidated literal values that may reach ``node``, via dataflow."""
    return [
        v.value
        for v in ctx.dataflow().provenance(node)
        if v.kind == "literal" and v.value is not None
    ]


def _checked(ctx: FileContext, node: ast.AST) -> bool:
    """Did every literal reaching ``node`` pass a theory bound check?"""
    prov = ctx.dataflow().provenance(node)
    return any(v.kind == "checked" for v in prov) and not any(
        v.kind == "literal" for v in prov
    )


@register
class RawGeneratorRule(Rule):
    """RL600: ``np.random.default_rng`` outside the blessed RNG module."""

    rule_id = "RL600"
    family = "provenance"
    severity = Severity.ERROR
    description = (
        "numpy.random.default_rng() outside repro.utils.rng starts an "
        "unrelated RNG lineage; derive Generators via as_generator / "
        "spawn_generators / derive_generator."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return  # tests/tools/benches may build ad-hoc generators
        if ctx.config.module_matches(ctx.module_name, ctx.config.rng_modules):
            return  # the blessed lineage root itself
        aliases = NumpyAliases(tree)
        flow = None
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            direct = aliases.random_member(node.func) == "default_rng"
            via_alias = False
            if not direct and isinstance(node.func, ast.Name):
                # ``make = np.random.default_rng; rng = make(...)``:
                # the factory reference itself carries raw provenance.
                flow = flow or ctx.dataflow()
                via_alias = any(
                    v.kind == "rng_raw_factory" for v in flow.provenance(node.func)
                )
            if direct or via_alias:
                yield self.make_finding(
                    ctx,
                    node,
                    "raw numpy.random.default_rng() in "
                    f"{ctx.module_name} breaks the repro.utils.rng "
                    "SeedSequence lineage (results stop being a function "
                    "of the experiment seed); use as_generator / "
                    "spawn_generators / derive_generator",
                    via_alias=via_alias,
                )


@register
class HyperparameterProvenanceRule(Rule):
    """RL601: unvalidated literal ``beta``/``mu``/``tau`` violating Lemma 1
    flows into a FedProxVR driver."""

    rule_id = "RL601"
    family = "provenance"
    severity = Severity.ERROR
    description = (
        "A literal hyperparameter that provably violates Lemma 1 "
        "(beta <= 3, mu < 0, or tau above the eq. (13)/(14) cap) reaches "
        "a FedProxVR driver without passing through a repro.core.theory "
        "bound check."
    )

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_name is None:
            return
        drivers = set(ctx.config.driver_callables)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = self._callee_name(node.func)
            if name not in drivers:
                continue
            kwargs = keyword_map(node)
            yield from self._check_beta(ctx, kwargs)
            yield from self._check_mu(ctx, kwargs)
            yield from self._check_tau(ctx, node, kwargs)

    @staticmethod
    def _callee_name(func: ast.AST) -> Optional[str]:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _check_beta(self, ctx: FileContext, kwargs) -> Iterable[Finding]:
        beta_node = kwargs.get("beta")
        # Plain literals at the call site are RL500/RL501's findings.
        if beta_node is None or numeric_literal(beta_node) is not None:
            return
        if _checked(ctx, beta_node):
            return
        for value in _literal_values(ctx, beta_node):
            if value <= 3.0:
                yield self.make_finding(
                    ctx,
                    beta_node,
                    f"unvalidated literal beta={value:g} reaches this driver "
                    "on some path; Lemma 1 requires beta > 3 — fix the "
                    "value or route it through a repro.core.theory bound "
                    "check (e.g. lemma1_feasible) first",
                    beta=value,
                )
                return  # one finding per call site is enough signal

    def _check_mu(self, ctx: FileContext, kwargs) -> Iterable[Finding]:
        mu_node = kwargs.get("mu")
        if mu_node is None or numeric_literal(mu_node) is not None:
            return
        if _checked(ctx, mu_node):
            return
        for value in _literal_values(ctx, mu_node):
            if value < 0.0:
                yield self.make_finding(
                    ctx,
                    mu_node,
                    f"unvalidated literal mu={value:g} reaches this driver "
                    "on some path; the proximal penalty must be "
                    "non-negative (mu > lambda for Lemma 1) — fix the "
                    "value or validate it via repro.core.theory",
                    mu=value,
                )
                return

    def _check_tau(self, ctx: FileContext, call: ast.Call, kwargs) -> Iterable[Finding]:
        tau_node = None
        for key in _TAU_KEYWORDS:
            if key in kwargs:
                tau_node = kwargs[key]
                break
        beta_node = kwargs.get("beta")
        if tau_node is None or beta_node is None:
            return
        if numeric_literal(tau_node) is not None and numeric_literal(
            beta_node
        ) is not None:
            return  # both literal at the site: RL501's finding
        if _checked(ctx, tau_node):
            return
        taus = _literal_values(ctx, tau_node)
        if numeric_literal(tau_node) is not None:
            taus = [float(numeric_literal(tau_node))]
        betas = [
            b
            for b in (
                _literal_values(ctx, beta_node)
                if numeric_literal(beta_node) is None
                else [float(numeric_literal(beta_node))]
            )
            if b > 3.0
        ]
        if not taus or not betas:
            return
        estimator = _estimator_hint(call)
        # A beta grid is compatible if at least one entry admits the tau;
        # a tau that exceeds the cap on *any* path is a bug on that path.
        bound = max(_tau_upper_bound(b, estimator) for b in betas)
        worst = max(taus)
        if worst > bound:
            yield self.make_finding(
                ctx,
                tau_node,
                f"unvalidated literal tau={worst:g} reaches this driver and "
                f"exceeds the Lemma 1 {estimator.upper()} cap {bound:g} for "
                f"beta={max(betas):g}; reduce tau, raise beta, or validate "
                "via repro.core.theory",
                tau=worst,
                bound=bound,
                estimator=estimator,
            )
