"""File discovery, project indexing, rule execution, and filtering.

The engine runs in two phases:

1. **Index** — every target file is read and parsed once; files under
   ``<root>/<src_root>`` (the ones with a dotted module identity) are
   folded into a :class:`~tools.reprolint.projectindex.ProjectIndex`
   holding symbol tables, the resolved import graph, export usage, and
   a best-effort call graph.
2. **Rules** — each file's rules run against its cached tree with the
   shared index (and a lazily built per-file dataflow analysis) exposed
   through :class:`~tools.reprolint.registry.FileContext`.

Findings then pass through statement-scoped suppressions and the
committed baseline; baseline fingerprints that no finding consumed are
reported as *stale* so the ratchet only ever shrinks.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from tools.reprolint.baseline import load_baseline, split_by_baseline
from tools.reprolint.config import LintConfig
from tools.reprolint.findings import Finding, Severity, sort_findings
from tools.reprolint.projectindex import ProjectIndex
from tools.reprolint.registry import FileContext, active_rules
from tools.reprolint.suppressions import SuppressionIndex

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    files_checked: int = 0
    #: Baseline fingerprints (and their unconsumed counts) that matched
    #: no current finding — stale entries the ratchet should drop.
    stale_baseline: Dict[str, int] = field(default_factory=dict)
    index: Optional[ProjectIndex] = None

    @property
    def gating(self) -> List[Finding]:
        return [f for f in self.findings if f.severity.gates]

    @property
    def exit_code(self) -> int:
        return 1 if self.gating else 0

    def counts_by_severity(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.severity.value] = out.get(f.severity.value, 0) + 1
        return out


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(
                    part in _SKIP_DIRS or part.startswith(".") for part in sub.parts
                ):
                    yield sub


def module_name_for(path: Path, config: LintConfig) -> Optional[str]:
    """Dotted module name for files under ``<root>/<src_root>``, else None.

    Only src-tree files get a module identity (and therefore layer and
    hot-path scoping); tests, tools, and benches are still parsed, and
    rules treat ``module_name=None`` as out of scope where appropriate.
    """
    try:
        rel = path.resolve().relative_to((config.root / config.src_root).resolve())
    except ValueError:
        return None
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def display_path(path: Path, config: LintConfig) -> str:
    try:
        return path.resolve().relative_to(config.root.resolve()).as_posix()
    except ValueError:
        return str(path)


@dataclass
class ParsedFile:
    """One target file after the parse phase."""

    path: Path
    display_path: str
    module_name: Optional[str]
    source: str
    lines: List[str]
    tree: Optional[ast.AST]
    syntax_finding: Optional[Finding] = None


def _parse_file(path: Path, config: LintConfig) -> ParsedFile:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    shown = display_path(path, config)
    module_name = module_name_for(path, config)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        bad_line = (
            lines[exc.lineno - 1] if exc.lineno and exc.lineno <= len(lines) else ""
        )
        return ParsedFile(
            path,
            shown,
            module_name,
            source,
            lines,
            None,
            Finding(
                rule_id="RL000",
                message=f"syntax error: {exc.msg}",
                path=shown,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                severity=Severity.ERROR,
                source_line=bad_line,
            ),
        )
    return ParsedFile(path, shown, module_name, source, lines, tree)


def build_index(parsed: Sequence[ParsedFile]) -> ProjectIndex:
    """Phase-1 output: the whole-program index over src-tree files."""
    return ProjectIndex.build(
        [
            (p.path, p.display_path, p.module_name, p.tree, p.lines)
            for p in parsed
            if p.module_name is not None and p.tree is not None
        ]
    )


def _check_parsed(
    parsed: ParsedFile, config: LintConfig, index: Optional[ProjectIndex]
) -> Tuple[List[Finding], int]:
    if parsed.tree is None:
        return [parsed.syntax_finding] if parsed.syntax_finding else [], 0
    ctx = FileContext(
        path=parsed.path,
        display_path=parsed.display_path,
        module_name=parsed.module_name,
        source=parsed.source,
        lines=parsed.lines,
        config=config,
        tree=parsed.tree,
        index=index,
    )
    findings: List[Finding] = []
    for rule in active_rules(config):
        findings.extend(rule.check(parsed.tree, ctx))
    suppressions = SuppressionIndex(parsed.lines, parsed.tree)
    kept = [f for f in findings if not suppressions.is_suppressed(f)]
    return kept, len(findings) - len(kept)


def lint_file(path: Path, config: LintConfig) -> Tuple[List[Finding], int]:
    """Lint one file standalone (no project index); returns
    ``(findings, suppressed_count)``."""
    return _check_parsed(_parse_file(path, config), config, None)


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig,
    *,
    baseline_path: Optional[Path] = None,
    jobs: int = 1,
    changed_only: Optional[Sequence[Path]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and apply the baseline.

    ``jobs > 1`` runs the per-file rule phase on a thread pool.  Results
    are collected in file-discovery order regardless of completion
    order, so the report is identical to a serial run; rules share the
    read-only :class:`ProjectIndex` and each file's dataflow is private
    to its :class:`FileContext`, so the phase parallelizes safely.

    ``changed_only`` (a set of file paths, e.g. from ``git diff``)
    scopes the *rule phase* to those files while still parsing and
    indexing everything under ``paths`` — cross-file rules keep the
    whole-program view, only the reporting surface shrinks.  Stale-
    baseline accounting is disabled in scoped runs: fingerprints owned
    by unscoped files would always look unconsumed.
    """
    report = LintReport()
    parsed_files = [
        _parse_file(path, config) for path in iter_python_files([Path(p) for p in paths])
    ]
    index = build_index(parsed_files)
    report.index = index
    if changed_only is not None:
        changed_set = {Path(p).resolve() for p in changed_only}
        parsed_files = [
            p for p in parsed_files if p.path.resolve() in changed_set
        ]
    raw: List[Finding] = []
    if jobs > 1 and len(parsed_files) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            results = list(
                pool.map(
                    lambda parsed: _check_parsed(parsed, config, index),
                    parsed_files,
                )
            )
    else:
        results = [
            _check_parsed(parsed, config, index) for parsed in parsed_files
        ]
    for file_findings, suppressed in results:
        report.files_checked += 1
        report.suppressed_count += suppressed
        raw.extend(file_findings)
    if baseline_path is None:
        baseline_path = config.baseline_path()
    baseline = load_baseline(baseline_path)
    new, matched = split_by_baseline(sort_findings(raw), baseline)
    report.findings = new
    report.baselined = matched
    consumed = Counter(f.fingerprint() for f in matched)
    if changed_only is None:
        report.stale_baseline = {
            fp: count - consumed.get(fp, 0)
            for fp, count in sorted(baseline.items())
            if count - consumed.get(fp, 0) > 0
        }
    return report
