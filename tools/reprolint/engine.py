"""File discovery, rule execution, suppression and baseline filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from tools.reprolint.baseline import load_baseline, split_by_baseline
from tools.reprolint.config import LintConfig
from tools.reprolint.findings import Finding, Severity, sort_findings
from tools.reprolint.registry import FileContext, active_rules
from tools.reprolint.suppressions import is_suppressed

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache", "build", "dist"}


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    files_checked: int = 0

    @property
    def gating(self) -> List[Finding]:
        return [f for f in self.findings if f.severity.gates]

    @property
    def exit_code(self) -> int:
        return 1 if self.gating else 0

    def counts_by_severity(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.severity.value] = out.get(f.severity.value, 0) + 1
        return out


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not any(
                    part in _SKIP_DIRS or part.startswith(".") for part in sub.parts
                ):
                    yield sub


def module_name_for(path: Path, config: LintConfig) -> Optional[str]:
    """Dotted module name for files under ``<root>/<src_root>``, else None.

    Only src-tree files get a module identity (and therefore layer and
    hot-path scoping); tests, tools, and benches are still parsed, and
    rules treat ``module_name=None`` as out of scope where appropriate.
    """
    try:
        rel = path.resolve().relative_to((config.root / config.src_root).resolve())
    except ValueError:
        return None
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


def display_path(path: Path, config: LintConfig) -> str:
    try:
        return path.resolve().relative_to(config.root.resolve()).as_posix()
    except ValueError:
        return str(path)


def lint_file(path: Path, config: LintConfig) -> Tuple[List[Finding], int]:
    """Lint one file; returns ``(findings, suppressed_count)``."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    shown = display_path(path, config)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        bad_line = (
            lines[exc.lineno - 1] if exc.lineno and exc.lineno <= len(lines) else ""
        )
        return (
            [
                Finding(
                    rule_id="RL000",
                    message=f"syntax error: {exc.msg}",
                    path=shown,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    severity=Severity.ERROR,
                    source_line=bad_line,
                )
            ],
            0,
        )
    ctx = FileContext(
        path=path,
        display_path=shown,
        module_name=module_name_for(path, config),
        source=source,
        lines=lines,
        config=config,
    )
    findings: List[Finding] = []
    for rule in active_rules(config):
        findings.extend(rule.check(tree, ctx))
    kept = [f for f in findings if not is_suppressed(f, lines)]
    return kept, len(findings) - len(kept)


def lint_paths(
    paths: Sequence[Path],
    config: LintConfig,
    *,
    baseline_path: Optional[Path] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and apply the baseline."""
    report = LintReport()
    raw: List[Finding] = []
    for path in iter_python_files([Path(p) for p in paths]):
        file_findings, suppressed = lint_file(path, config)
        report.files_checked += 1
        report.suppressed_count += suppressed
        raw.extend(file_findings)
    if baseline_path is None:
        baseline_path = config.baseline_path()
    baseline = load_baseline(baseline_path)
    new, matched = split_by_baseline(sort_findings(raw), baseline)
    report.findings = new
    report.baselined = matched
    return report
