"""Inline suppression comments.

Syntax (on any physical line of the violating statement)::

    risky_call()  # reprolint: disable=RL402
    other_call()  # reprolint: disable=RL402,RL500
    anything()    # reprolint: disable=all

Suppressions are statement-scoped: a disable comment anywhere within
the enclosing *simple* statement's ``lineno..end_lineno`` span
suppresses matching findings on every line of that statement, so a
comment on the first line of a multi-line call covers findings the
rules report on its continuation lines.  For compound statements
(``if``/``for``/``with``/``def``…) a comment on a *header* line covers
the whole statement — header and body — because rules routinely anchor
a finding about the construct (an unguarded branch, a loop's
aggregation) to a body line the author cannot comment more precisely;
comments *inside* the body still scope to their own statement only.

There are deliberately no file- or block-scoped pragmas: the comment
documents — at the construct it excuses — why the invariant does not
apply, and cannot grow past the annotated statement to cover new code.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from tools.reprolint.findings import Finding

_DISABLE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")

_COMPOUND = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


def disabled_rules_on_line(line: str) -> Set[str]:
    """Rule ids disabled by ``line``'s trailing comment (may be {'all'})."""
    m = _DISABLE_RE.search(line)
    if not m:
        return set()
    return {tok.strip() for tok in m.group(1).split(",") if tok.strip()}


def _header_end(node: ast.stmt) -> int:
    """Last line of a compound statement's header (test/iter/items/args)."""
    end = node.lineno
    exprs: List[Optional[ast.AST]] = []
    if isinstance(node, (ast.If, ast.While)):
        exprs = [node.test]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        exprs = [node.target, node.iter]
    elif isinstance(node, (ast.With, ast.AsyncWith)):
        exprs = list(node.items)
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        exprs = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ] + [node.returns]
    elif isinstance(node, ast.ClassDef):
        exprs = list(node.bases) + [kw.value for kw in node.keywords]
    for expr in exprs:
        if expr is not None:
            end = max(end, getattr(expr, "end_lineno", node.lineno) or node.lineno)
    return end


def statement_spans(tree: ast.AST) -> List[Tuple[int, int, int]]:
    """``(start, comment_end, cover_end)`` spans per statement.

    Disable comments are *read* from ``start..comment_end`` and
    *applied* to ``start..cover_end``.  For simple statements the two
    ends coincide (the whole ``lineno..end_lineno`` span); for compound
    statements comments count only on the header lines but cover the
    statement's full extent, body included.  Decorated defs extend the
    span upward to the first decorator so a comment on the decorator
    line covers the ``def`` line's findings.
    """
    spans: List[Tuple[int, int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None)
        if end is None:  # pragma: no cover - py<3.8 only
            continue
        start = node.lineno
        comment_end = end
        if isinstance(node, _COMPOUND):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ) and node.decorator_list:
                start = min(d.lineno for d in node.decorator_list)
            comment_end = _header_end(node)
        spans.append((start, comment_end, end))
    return spans


class SuppressionIndex:
    """Per-file map from physical line to the rules disabled there."""

    def __init__(self, lines: List[str], tree: Optional[ast.AST] = None) -> None:
        self._per_line: Dict[int, Set[str]] = {}
        for i, line in enumerate(lines, start=1):
            disabled = disabled_rules_on_line(line)
            if disabled:
                self._per_line[i] = disabled
        self._effective: Dict[int, Set[str]] = {
            k: set(v) for k, v in self._per_line.items()
        }
        if tree is not None and self._per_line:
            for start, comment_end, cover_end in statement_spans(tree):
                if cover_end <= start:
                    continue
                merged: Set[str] = set()
                for line_no in range(start, comment_end + 1):
                    merged |= self._per_line.get(line_no, set())
                if merged:
                    for line_no in range(start, cover_end + 1):
                        self._effective.setdefault(line_no, set()).update(merged)

    def disabled_at(self, lineno: int) -> Set[str]:
        return self._effective.get(lineno, set())

    def is_suppressed(self, finding: Finding) -> bool:
        disabled = self.disabled_at(finding.line)
        return "all" in disabled or finding.rule_id in disabled


def is_suppressed(
    finding: Finding, lines: List[str], tree: Optional[ast.AST] = None
) -> bool:
    """Convenience wrapper; prefer a shared :class:`SuppressionIndex`."""
    return SuppressionIndex(lines, tree).is_suppressed(finding)
