"""Inline suppression comments.

Syntax (same line as the finding)::

    risky_call()  # reprolint: disable=RL402
    other_call()  # reprolint: disable=RL402,RL500
    anything()    # reprolint: disable=all

Suppressions are line-scoped on purpose: a disable comment documents —
right where the violation sits — why the invariant does not apply, and
cannot silently grow to cover new code the way file- or block-scoped
pragmas do.
"""

from __future__ import annotations

import re
from typing import List, Set

from tools.reprolint.findings import Finding

_DISABLE_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\s]+)")


def disabled_rules_on_line(line: str) -> Set[str]:
    """Rule ids disabled by ``line``'s trailing comment (may be {'all'})."""
    m = _DISABLE_RE.search(line)
    if not m:
        return set()
    return {tok.strip() for tok in m.group(1).split(",") if tok.strip()}


def is_suppressed(finding: Finding, lines: List[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    disabled = disabled_rules_on_line(lines[finding.line - 1])
    return "all" in disabled or finding.rule_id in disabled
