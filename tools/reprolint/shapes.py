"""Abstract interpretation of ndarray shapes and dtypes (the RL9xx domain).

The domain tracks, per variable, a small set of :class:`ShapeVal` facts:

* ``array``       — an ndarray with a (possibly partial) shape: a tuple
  of :class:`Dim` (literal extents, symbolic extents like ``K``/``D``
  bound from annotations or ``x.shape`` unpacking, or ⊤) — or unknown
  rank (``shape=None``) — plus a dtype drawn from a flat lattice
  (float64/float32/int64/bool/object/…/⊤, with "weak" python-scalar
  dtypes that never win a promotion, mirroring NEP 50);
* ``dim``         — an integer that *is* an array extent (``n =
  X.shape[0]``, ``K = len(clients)``), so buffers allocated as
  ``np.empty((n, d))`` unify with the arrays they mirror;
* ``shape_tuple`` — the value of ``x.shape`` itself, so tuple-unpacking
  binds each target to the matching ``dim``;
* ``dtype``       — a dtype object flowing through a variable
  (``dt = np.float32``), which is what separates RL902 (inferred dtype
  drift) from RL3xx (literal narrow dtype at the call site);
* ``top``         — everything else.

Evaluation is a may-analysis run to fixpoint over the reprolint CFG
(:mod:`tools.reprolint.cfg`), with **widening at loop heads**: facts
joining at a back-edge target collapse dimension-wise (unequal extents
become ⊤) instead of accumulating, so loops that reshape or rebind
buffers terminate in one or two passes.

Interprocedural reasoning is annotation-seeded and therefore honest: a
``# shape:`` comment (or a ``shape:`` docstring line) on a function both
*seeds* its parameters for intraprocedural analysis and *summarises* it
for callers — call sites unify the annotated parameter dims against the
actual argument shapes and substitute the bindings into the annotated
return spec.  Nothing is inferred across calls without an annotation.

Annotation syntax (one or more lines)::

    # shape: W (K, D) float64, X_batch (K, B, f), y_batch (K, B) int64 -> (K, D)
    # shape: cols (B, ?) -> (B,) float64

``?`` is an explicitly-unknown extent; integers are literal extents;
anything else is a symbolic dim unified by name.  The return spec after
``->`` is optional, as is the dtype token after any dim tuple.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from tools.reprolint.asthelpers import NumpyAliases, attribute_chain, keyword_map
from tools.reprolint.cfg import CFG, build_cfg

_MAX_ITERATIONS = 32

#: Per-variable fact-set cap before array facts are force-joined.
_ARRAY_CAP = 4


# ---------------------------------------------------------------------------
# Dimensions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Dim:
    """One array extent: a literal, a named symbol, or ⊤."""

    kind: str  # "lit" | "sym" | "top"
    value: Optional[int] = None
    name: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "lit":
            return str(self.value)
        if self.kind == "sym":
            return str(self.name)
        return "?"


DIM_TOP = Dim("top")


def lit(value: int) -> Dim:
    return Dim("lit", value=int(value))


def sym(name: str) -> Dim:
    return Dim("sym", name=name)


def dim_join(a: Dim, b: Dim) -> Dim:
    return a if a == b else DIM_TOP


def dims_equal_provable(a: Dim, b: Dim) -> Optional[bool]:
    """True/False when equality is provable, None when unknown."""
    if a.kind == "lit" and b.kind == "lit":
        return a.value == b.value
    if a == b and a.kind == "sym":
        return True
    return None


def is_one(d: Dim) -> bool:
    return d.kind == "lit" and d.value == 1


def format_shape(shape: Optional[Tuple[Dim, ...]]) -> str:
    if shape is None:
        return "(?rank)"
    if len(shape) == 1:
        return f"({shape[0]},)"
    return "(" + ", ".join(str(d) for d in shape) + ")"


# ---------------------------------------------------------------------------
# Dtypes
# ---------------------------------------------------------------------------

DTYPE_TOP = "top"

#: Spellings accepted in annotations, ``dtype=`` literals, and ``np.<x>``.
_DTYPE_ALIASES = {
    "float64": "float64", "double": "float64", "float_": "float64",
    "float32": "float32", "single": "float32",
    "float16": "float16", "half": "float16",
    "int64": "int64", "long": "int64", "intp": "int64",
    "int32": "int32", "int16": "int16", "int8": "int8",
    "uint8": "uint8", "uint16": "uint16", "uint32": "uint32",
    "uint64": "uint64",
    "bool": "bool", "bool_": "bool",
    "object": "object", "object_": "object",
    # Builtins used as dtype arguments (int is platform int64 on the
    # linux/macos targets this repo supports).
    "float": "float64", "int": "int64",
}

_FLOATS = ("float16", "float32", "float64")
_INTS = ("int8", "int16", "int32", "int64",
         "uint8", "uint16", "uint32", "uint64")

#: dtypes strictly below float64 in the float lattice — the RL902 sinks.
SUB_FLOAT64 = {"float16", "float32"}


def is_float_dtype(d: str) -> bool:
    return d in _FLOATS or d == "weak_float"


def is_int_dtype(d: str) -> bool:
    return d in _INTS or d == "weak_int"


def _float_width(d: str) -> int:
    return _FLOATS.index(d) if d in _FLOATS else -1


def promote_dtypes(a: str, b: str) -> str:
    """NumPy-ish promotion on the flat lattice; weak scalars never win."""
    if a == b:
        return a
    if DTYPE_TOP in (a, b):
        return DTYPE_TOP
    if "object" in (a, b):
        return "object"
    # Weak (python scalar) operands defer to the array operand.
    weak = {"weak_int", "weak_float", "weak_bool"}
    if a in weak and b in weak:
        order = ["weak_bool", "weak_int", "weak_float"]
        return max(a, b, key=order.index)
    if a in weak:
        a, b = b, a
    if b in weak:
        if b == "weak_float" and not is_float_dtype(a):
            return "float64"
        return a
    if is_float_dtype(a) and is_float_dtype(b):
        return _FLOATS[max(_float_width(a), _float_width(b))]
    if is_float_dtype(a) or is_float_dtype(b):
        f, i = (a, b) if is_float_dtype(a) else (b, a)
        # int32/int64 pull any float up to float64; small ints keep it.
        if i in ("int32", "int64", "uint32", "uint64"):
            return "float64"
        return f
    if "bool" in (a, b):
        return a if b == "bool" else b
    # int/int: wider wins (signedness subtleties out of scope).
    return _INTS[max(_INTS.index(a) if a in _INTS else 0,
                     _INTS.index(b) if b in _INTS else 0)]


def true_divide_dtype(a: str, b: str) -> str:
    out = promote_dtypes(a, b)
    if is_int_dtype(out) or out == "bool" or out == "weak_bool":
        return "float64"
    if out == "weak_float":
        return "float64"
    return out


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShapeVal:
    """One shape/dtype fact about a value."""

    kind: str  # "array" | "dim" | "shape_tuple" | "dtype" | "top"
    shape: Optional[Tuple[Dim, ...]] = None  # array: None = unknown rank
    dtype: str = DTYPE_TOP  # array dtype, or the dtype a "dtype" value names
    dim: Optional[Dim] = None  # the extent a "dim" value holds
    origin_line: int = 0

    def is_array(self) -> bool:
        return self.kind == "array"


TOP_VAL = ShapeVal("top")

SEnv = Dict[str, FrozenSet[ShapeVal]]
SValueSet = FrozenSet[ShapeVal]

_TOP_SET: SValueSet = frozenset({TOP_VAL})


def array_val(
    shape: Optional[Tuple[Dim, ...]], dtype: str = DTYPE_TOP, line: int = 0
) -> ShapeVal:
    return ShapeVal("array", shape=shape, dtype=dtype, origin_line=line)


def _join_two_arrays(a: ShapeVal, b: ShapeVal) -> ShapeVal:
    dtype = a.dtype if a.dtype == b.dtype else DTYPE_TOP
    if a.shape is None or b.shape is None or len(a.shape) != len(b.shape):
        return array_val(None, dtype, a.origin_line)
    dims = tuple(dim_join(x, y) for x, y in zip(a.shape, b.shape))
    return array_val(dims, dtype, a.origin_line)


def join_arrays(values: Iterable[ShapeVal]) -> Optional[ShapeVal]:
    """Dimension-wise join of every array fact (None when there are none)."""
    out: Optional[ShapeVal] = None
    for v in values:
        if not v.is_array():
            continue
        out = v if out is None else _join_two_arrays(out, v)
    return out


def _cap_set(values: Iterable[ShapeVal], *, widen: bool = False) -> SValueSet:
    vals = set(values)
    arrays = [v for v in vals if v.is_array()]
    if arrays and (widen or len(arrays) > _ARRAY_CAP):
        joined = join_arrays(arrays)
        vals -= set(arrays)
        if joined is not None:
            vals.add(joined)
    if len(vals) > 2 * _ARRAY_CAP:
        return _TOP_SET
    return frozenset(vals) if vals else _TOP_SET


def join_shape_envs(envs: Sequence[SEnv], *, widen: bool = False) -> SEnv:
    out: Dict[str, Set[ShapeVal]] = {}
    for env in envs:
        for name, vals in env.items():
            out.setdefault(name, set()).update(vals)
    return {name: _cap_set(vals, widen=widen) for name, vals in out.items()}


# ---------------------------------------------------------------------------
# Broadcasting and matmul
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BroadcastOutcome:
    """Result of abstractly broadcasting two shapes."""

    shape: Optional[Tuple[Dim, ...]]
    #: a pair of literal extents that can never broadcast (RL900).
    mismatch: bool = False
    #: the ranks differ and *each* side contributes a non-1 extent on an
    #: axis where the other is 1/padded — the ``(K,1)`` meets ``(K,)``
    #: blowup that silently manufactures a (K,K) outer product (RL901).
    mutual: bool = False
    mismatch_axis: int = -1


def broadcast_shapes(
    sa: Optional[Tuple[Dim, ...]], sb: Optional[Tuple[Dim, ...]]
) -> BroadcastOutcome:
    if sa is None or sb is None:
        return BroadcastOutcome(None)
    rank = max(len(sa), len(sb))
    pa = (lit(1),) * (rank - len(sa)) + tuple(sa)
    pb = (lit(1),) * (rank - len(sb)) + tuple(sb)
    out: List[Dim] = []
    a_contributes = b_contributes = False
    mismatch = False
    mismatch_axis = -1
    for i, (da, db) in enumerate(zip(pa, pb)):
        padded_a = i < rank - len(sa)
        padded_b = i < rank - len(sb)
        expands = lambda d: d.kind == "sym" or (d.kind == "lit" and d.value != 1)
        if is_one(db) or padded_b:
            if expands(da):
                a_contributes = True
            out.append(da)
        elif is_one(da) or padded_a:
            if expands(db):
                b_contributes = True
            out.append(db)
        else:
            provable = dims_equal_provable(da, db)
            if provable is False:
                mismatch = True
                mismatch_axis = i
                out.append(DIM_TOP)
            elif provable is True:
                out.append(da)
            else:
                out.append(dim_join(da, db))
    mutual = len(sa) != len(sb) and a_contributes and b_contributes
    return BroadcastOutcome(tuple(out), mismatch, mutual, mismatch_axis)


@dataclass(frozen=True)
class MatmulOutcome:
    shape: Optional[Tuple[Dim, ...]]
    mismatch: bool = False
    reason: str = ""


def matmul_shapes(
    sa: Optional[Tuple[Dim, ...]], sb: Optional[Tuple[Dim, ...]]
) -> MatmulOutcome:
    """Abstract ``a @ b`` following numpy.matmul's rank rules."""
    if sa is None or sb is None:
        return MatmulOutcome(None)
    if len(sa) == 0 or len(sb) == 0:
        return MatmulOutcome(None, True, "matmul operand is 0-d (scalar)")
    inner_a = sa[-1]
    inner_b = sb[0] if len(sb) == 1 else sb[-2]
    if dims_equal_provable(inner_a, inner_b) is False:
        return MatmulOutcome(
            None,
            True,
            f"inner dims {inner_a} and {inner_b} cannot contract",
        )
    if len(sa) == 1 and len(sb) == 1:
        return MatmulOutcome(())
    if len(sa) == 1:
        batch = broadcast_shapes((), sb[:-2])
        return MatmulOutcome((batch.shape or ()) + (sb[-1],))
    if len(sb) == 1:
        batch = broadcast_shapes(sa[:-2], ())
        return MatmulOutcome((batch.shape or ()) + (sa[-2],))
    batch = broadcast_shapes(sa[:-2], sb[:-2])
    if batch.mismatch:
        return MatmulOutcome(
            None, True,
            f"batch dims of {format_shape(sa)} and {format_shape(sb)} "
            "cannot broadcast",
        )
    return MatmulOutcome((batch.shape or ()) + (sa[-2], sb[-1]))


# ---------------------------------------------------------------------------
# ``# shape:`` annotations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArraySpec:
    """Annotated shape (+ optional dtype) of one parameter or return."""

    dims: Optional[Tuple[Dim, ...]]
    dtype: str = DTYPE_TOP


@dataclass
class FunctionSummary:
    """Annotation-derived interprocedural summary of one function."""

    qualname: str
    params: Dict[str, ArraySpec] = field(default_factory=dict)
    ret: Optional[ArraySpec] = None
    param_order: Tuple[str, ...] = ()
    is_method: bool = False
    lineno: int = 0


_ANNOT_LINE_RE = re.compile(r"^#?\s*shape:\s*(?P<body>.+)$")
_PARAM_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*"
    r"\(\s*(?P<dims>[^)]*)\)\s*(?P<dtype>[A-Za-z_][A-Za-z0-9_]*)?\s*$"
)
_RET_RE = re.compile(
    r"^\s*\(\s*(?P<dims>[^)]*)\)\s*(?P<dtype>[A-Za-z_][A-Za-z0-9_]*)?\s*$"
)


def _parse_dims(text: str) -> Tuple[Dim, ...]:
    dims: List[Dim] = []
    for tok in text.split(","):
        tok = tok.strip()
        if not tok:
            continue
        if tok == "?":
            dims.append(DIM_TOP)
        elif re.fullmatch(r"-?\d+", tok):
            dims.append(lit(int(tok)))
        else:
            dims.append(sym(tok))
    return tuple(dims)


def _parse_dtype_token(tok: Optional[str]) -> str:
    if not tok:
        return DTYPE_TOP
    return _DTYPE_ALIASES.get(tok, DTYPE_TOP)


def _split_outside_parens(text: str, sep: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == sep and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return parts


def parse_annotation_line(
    text: str,
) -> Optional[Tuple[Dict[str, ArraySpec], Optional[ArraySpec]]]:
    """Parse one annotation line; None when it isn't one."""
    m = _ANNOT_LINE_RE.match(text.strip())
    if not m:
        return None
    body = m.group("body").strip()
    ret: Optional[ArraySpec] = None
    if "->" in body:
        body, _, ret_text = body.rpartition("->")
        rm = _RET_RE.match(ret_text)
        if rm:
            ret = ArraySpec(
                _parse_dims(rm.group("dims")),
                _parse_dtype_token(rm.group("dtype")),
            )
    params: Dict[str, ArraySpec] = {}
    body = body.strip()
    if body:
        for segment in _split_outside_parens(body, ","):
            pm = _PARAM_RE.match(segment)
            if pm:
                params[pm.group("name")] = ArraySpec(
                    _parse_dims(pm.group("dims")),
                    _parse_dtype_token(pm.group("dtype")),
                )
    if not params and ret is None:
        return None
    return params, ret


def annotation_for(
    node: ast.AST, lines: Sequence[str], qualname: str
) -> Optional[FunctionSummary]:
    """Collect the ``shape:`` annotation of one function def, if any.

    Looks at the comment line directly above the ``def``, comment lines
    between the signature and the first body statement, and every line
    of the docstring.
    """
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    candidates: List[str] = []
    first_stmt = node.body[0] if node.body else None
    lo = max(node.lineno - 2, 0)
    hi = first_stmt.lineno - 1 if first_stmt is not None else node.lineno
    for i in range(lo, min(hi, len(lines))):
        stripped = lines[i].strip()
        if stripped.startswith("#"):
            candidates.append(stripped)
    doc = ast.get_docstring(node, clean=True)
    if doc:
        candidates.extend(line.strip() for line in doc.splitlines())

    params: Dict[str, ArraySpec] = {}
    ret: Optional[ArraySpec] = None
    found = False
    for text in candidates:
        parsed = parse_annotation_line(text)
        if parsed is None:
            continue
        found = True
        params.update(parsed[0])
        if parsed[1] is not None:
            ret = parsed[1]
    if not found:
        return None
    args = node.args
    order = tuple(
        a.arg for a in args.posonlyargs + args.args + args.kwonlyargs
    )
    return FunctionSummary(
        qualname=qualname,
        params=params,
        ret=ret,
        param_order=order,
        is_method=bool(order) and order[0] in ("self", "cls"),
        lineno=node.lineno,
    )


def _bind_summary_syms(
    summary: FunctionSummary,
    arg_shapes: Dict[str, Optional[Tuple[Dim, ...]]],
) -> Dict[str, Dim]:
    """Unify annotated param dims against actual argument shapes."""
    bindings: Dict[str, Dim] = {}
    for pname, spec in summary.params.items():
        actual = arg_shapes.get(pname)
        if spec.dims is None or actual is None or len(spec.dims) != len(actual):
            continue
        for annotated, real in zip(spec.dims, actual):
            if annotated.kind == "sym" and annotated.name not in bindings:
                bindings[annotated.name] = real
    return bindings


def _substitute_dims(
    dims: Tuple[Dim, ...], bindings: Dict[str, Dim]
) -> Tuple[Dim, ...]:
    return tuple(
        bindings.get(d.name, d) if d.kind == "sym" else d for d in dims
    )


# ---------------------------------------------------------------------------
# NumPy surface classification
# ---------------------------------------------------------------------------

#: np.<name>(shape, ...) allocators whose first argument is a shape.
_SHAPE_ALLOCATORS = {"zeros": "float64", "ones": "float64",
                     "empty": "float64", "full": DTYPE_TOP}

#: np.<name>(x, ...) allocators mirroring an existing array.
_LIKE_ALLOCATORS = ("zeros_like", "ones_like", "empty_like", "full_like",
                    "copy", "ascontiguousarray")

#: Binary ufuncs with broadcast semantics (and an ``out=`` form).
_BINARY_UFUNCS = ("add", "subtract", "multiply", "divide", "true_divide",
                  "power", "maximum", "minimum", "mod", "remainder",
                  "floor_divide", "hypot", "arctan2", "logaddexp")

#: Unary elementwise ufuncs that keep the shape.
_UNARY_UFUNCS = ("exp", "log", "log2", "log10", "log1p", "expm1", "sqrt",
                 "abs", "absolute", "negative", "positive", "sign", "square",
                 "tanh", "sin", "cos", "clip", "nan_to_num", "reciprocal")

#: Unary float-producing ufuncs (int input promotes to float64).
_FLOAT_UFUNCS = {"exp", "log", "log2", "log10", "log1p", "expm1", "sqrt",
                 "tanh", "sin", "cos", "reciprocal"}

#: Reductions usable as np.<name>(x, axis=...) or x.<name>(axis=...).
_REDUCTIONS = ("sum", "mean", "prod", "max", "min", "amax", "amin", "std",
               "var", "median", "argmax", "argmin", "all", "any", "count_nonzero")

#: Attribute names treated as matmul regardless of receiver — the
#: ``repro.backend`` seam (be.matmul / be.batched_matmul) and numpy.
_MATMUL_NAMES = ("matmul", "batched_matmul", "dot")

#: Fresh-array calls RL903 flags inside hot loops.  ``asarray`` is
#: excluded (no-copy fast path); views (``ravel``, ``reshape``,
#: ``transpose``) are not allocations.
ALLOCATOR_CALLS = frozenset(
    set(_SHAPE_ALLOCATORS)
    | set(_LIKE_ALLOCATORS)
    | {"array", "arange", "linspace", "concatenate", "stack", "vstack",
       "hstack", "column_stack", "tile", "repeat", "pad", "flatten",
       "astype"}
)


# ---------------------------------------------------------------------------
# Per-scope analysis
# ---------------------------------------------------------------------------


class ScopeShapeAnalysis:
    """Fixed-point shape/dtype analysis of one scope."""

    def __init__(
        self,
        body: List[ast.stmt],
        aliases: NumpyAliases,
        *,
        scope_node: Optional[ast.AST] = None,
        summary: Optional[FunctionSummary] = None,
        summaries: Optional[Dict[str, FunctionSummary]] = None,
        method_summaries: Optional[Dict[str, FunctionSummary]] = None,
        call_resolver: Optional[Callable[[ast.Call], Optional[str]]] = None,
    ) -> None:
        self.scope_node = scope_node
        self.body = body
        self.summary = summary
        self._summaries = summaries or {}
        self._method_summaries = method_summaries or {}
        self._resolver = call_resolver
        self.cfg: CFG = build_cfg(body)
        self._aliases = aliases
        self._env_before_unit: Dict[int, SEnv] = {}
        self._unit_of_node: Dict[int, ast.stmt] = {}
        self._solve(self._initial_env())
        self._index_units()

    # -- public query API --------------------------------------------------

    def env_before(self, unit: ast.stmt) -> SEnv:
        return self._env_before_unit.get(id(unit), {})

    def enclosing_unit(self, node: ast.AST) -> Optional[ast.stmt]:
        return self._unit_of_node.get(id(node))

    def value_of(self, expr: ast.AST) -> SValueSet:
        """Abstract shape value of ``expr`` at its program point."""
        unit = self.enclosing_unit(expr)
        if unit is None:
            return _TOP_SET
        return self.eval(expr, self.env_before(unit))

    def arrays_of(self, expr: ast.AST) -> List[ShapeVal]:
        return [v for v in self.value_of(expr) if v.is_array()]

    def array_of(self, expr: ast.AST) -> Optional[ShapeVal]:
        """The single joined array fact for ``expr`` (None when not an array)."""
        return join_arrays(self.value_of(expr))

    # -- construction ------------------------------------------------------

    def _initial_env(self) -> SEnv:
        env: SEnv = {}
        if isinstance(
            self.scope_node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            lineno = self.scope_node.lineno
            if self.summary is not None:
                for pname, spec in self.summary.params.items():
                    env[pname] = frozenset(
                        {array_val(spec.dims, spec.dtype, lineno)}
                    )
        return env

    _header_nodes = staticmethod(
        lambda unit: ScopeShapeAnalysis._headers(unit)
    )

    @staticmethod
    def _headers(unit: ast.stmt) -> List[ast.AST]:
        if isinstance(unit, (ast.If, ast.While)):
            return [unit.test]
        if isinstance(unit, (ast.For, ast.AsyncFor)):
            return [unit.iter, unit.target]
        if isinstance(unit, (ast.With, ast.AsyncWith)):
            return list(unit.items)
        if isinstance(unit, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            nodes: List[ast.AST] = list(unit.decorator_list)
            if hasattr(unit, "args"):
                nodes += list(unit.args.defaults)
                nodes += [d for d in unit.args.kw_defaults if d is not None]
            return nodes
        if isinstance(unit, ast.ExceptHandler):
            return [unit.type] if unit.type else []
        return [unit]

    def _index_units(self) -> None:
        for block in self.cfg.blocks.values():
            for unit in block.units:
                for node in self._headers(unit):
                    for sub in ast.walk(node):
                        self._unit_of_node.setdefault(id(sub), unit)

    def _solve(self, initial: SEnv) -> None:
        in_env: Dict[int, SEnv] = {self.cfg.entry: initial}
        out_env: Dict[int, SEnv] = {}
        order = self.cfg.rpo()
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for bid in order:
                block = self.cfg.blocks[bid]
                preds = [out_env[p] for p in block.pred if p in out_env]
                if bid == self.cfg.entry:
                    preds = preds + [initial]
                env = (
                    join_shape_envs(preds, widen=block.is_loop_head)
                    if preds
                    else {}
                )
                in_env[bid] = env
                env = dict(env)
                for unit in block.units:
                    self._env_before_unit[id(unit)] = dict(env)
                    env = self._transfer(unit, env)
                if out_env.get(bid) != env:
                    out_env[bid] = env
                    changed = True
            if not changed:
                break
        for block in self.cfg.blocks.values():
            for unit in block.units:
                self._env_before_unit.setdefault(id(unit), {})

    # -- transfer ----------------------------------------------------------

    def _transfer(self, unit: ast.stmt, env: SEnv) -> SEnv:
        env = dict(env)
        if isinstance(unit, ast.Assign):
            values = self.eval(unit.value, env)
            for target in unit.targets:
                self._bind_target(target, unit.value, values, env)
        elif isinstance(unit, ast.AnnAssign) and unit.value is not None:
            values = self.eval(unit.value, env)
            self._bind_target(unit.target, unit.value, values, env)
        elif isinstance(unit, ast.AugAssign):
            result = self._eval_binop(
                self.eval(unit.target, env),
                self.eval(unit.value, env),
                unit.op,
                getattr(unit, "lineno", 0),
            )
            if isinstance(unit.target, ast.Name):
                env[unit.target.id] = result
        elif isinstance(unit, (ast.For, ast.AsyncFor)):
            self._bind_target(
                unit.target,
                unit.iter,
                self._eval_iteration(unit.iter, env),
                env,
            )
        elif isinstance(unit, (ast.With, ast.AsyncWith)):
            for item in unit.items:
                if item.optional_vars is not None:
                    self._bind_target(
                        item.optional_vars,
                        item.context_expr,
                        self.eval(item.context_expr, env),
                        env,
                    )
        elif isinstance(unit, ast.ExceptHandler):
            if unit.name:
                env[unit.name] = _TOP_SET
        elif isinstance(unit, (ast.Import, ast.ImportFrom)):
            for alias in unit.names:
                env[(alias.asname or alias.name).split(".")[0]] = _TOP_SET
        elif isinstance(unit, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            env[unit.name] = _TOP_SET
        elif isinstance(unit, ast.Delete):
            for target in unit.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        return env

    def _bind_target(
        self, target: ast.AST, value_expr: ast.AST, values: SValueSet, env: SEnv
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = values
        elif isinstance(target, (ast.Tuple, ast.List)):
            # ``K, B, f = X_batch.shape`` binds each target to a dim.
            tuples = [v for v in values if v.kind == "shape_tuple"]
            if tuples and all(
                v.shape is not None and len(v.shape) == len(target.elts)
                for v in tuples
            ):
                for i, t in enumerate(target.elts):
                    if isinstance(t, ast.Name):
                        env[t.id] = frozenset(
                            ShapeVal("dim", dim=v.shape[i],
                                     origin_line=v.origin_line)
                            for v in tuples
                        )
                return
            if isinstance(value_expr, (ast.Tuple, ast.List)) and len(
                value_expr.elts
            ) == len(target.elts):
                for t, v in zip(target.elts, value_expr.elts):
                    self._bind_target(t, v, self.eval(v, env), env)
            else:
                element = self._project_elements(values)
                for t in target.elts:
                    self._bind_target(t, value_expr, element, env)
        # Attribute/Subscript stores: no tracked heap.

    # -- expression evaluation ---------------------------------------------

    def eval(self, expr: ast.AST, env: SEnv) -> SValueSet:
        if isinstance(expr, ast.Constant):
            v = expr.value
            if isinstance(v, bool):
                return frozenset({array_val((), "weak_bool", expr.lineno)})
            if isinstance(v, int):
                return frozenset({array_val((), "weak_int", expr.lineno)})
            if isinstance(v, float):
                return frozenset({array_val((), "weak_float", expr.lineno)})
            return _TOP_SET
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _TOP_SET)
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, (ast.USub, ast.UAdd)):
                return self.eval(expr.operand, env)
            if isinstance(expr.op, ast.Not):
                return frozenset({array_val((), "weak_bool", 0)})
            return _TOP_SET
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(
                self.eval(expr.left, env),
                self.eval(expr.right, env),
                expr.op,
                getattr(expr, "lineno", 0),
            )
        if isinstance(expr, ast.Compare):
            vals = [self.eval(expr.left, env)]
            vals += [self.eval(c, env) for c in expr.comparators]
            arrays = [join_arrays(v) for v in vals]
            arrays = [a for a in arrays if a is not None]
            shape: Optional[Tuple[Dim, ...]] = ()
            for a in arrays:
                outcome = broadcast_shapes(shape, a.shape)
                shape = outcome.shape
            return frozenset(
                {array_val(shape, "bool", getattr(expr, "lineno", 0))}
            )
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Subscript):
            return self._eval_subscript(expr, env)
        if isinstance(expr, ast.IfExp):
            return _cap_set(
                set(self.eval(expr.body, env))
                | set(self.eval(expr.orelse, env))
            )
        if isinstance(expr, ast.BoolOp):
            merged: Set[ShapeVal] = set()
            for v in expr.values:
                merged |= set(self.eval(v, env))
            return _cap_set(merged)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env)
        return _TOP_SET

    def _eval_attribute(self, expr: ast.Attribute, env: SEnv) -> SValueSet:
        attr = expr.attr
        # np.float32 / np.int64 … as a value: a dtype object.
        chain = attribute_chain(expr)
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] in self._aliases.numpy_names
            and chain[1] in _DTYPE_ALIASES
        ):
            return frozenset(
                {ShapeVal("dtype", dtype=_DTYPE_ALIASES[chain[1]],
                          origin_line=expr.lineno)}
            )
        if attr in ("T", "shape", "dtype", "size", "ndim", "real", "imag"):
            base = join_arrays(self.eval(expr.value, env))
            if base is None:
                return _TOP_SET
            if attr == "T":
                if base.shape is None:
                    return frozenset({array_val(None, base.dtype, expr.lineno)})
                return frozenset(
                    {array_val(tuple(reversed(base.shape)), base.dtype,
                               expr.lineno)}
                )
            if attr == "shape":
                return frozenset(
                    {ShapeVal("shape_tuple", shape=base.shape,
                              origin_line=expr.lineno)}
                )
            if attr == "dtype":
                return frozenset(
                    {ShapeVal("dtype", dtype=base.dtype,
                              origin_line=expr.lineno)}
                )
            if attr in ("real", "imag"):
                return frozenset({base})
        return _TOP_SET

    def _eval_subscript(self, expr: ast.Subscript, env: SEnv) -> SValueSet:
        base_vals = self.eval(expr.value, env)
        sl = expr.slice
        # Legacy ast.Index on py3.8 trees does not occur (py>=3.9 floor).
        tuples = [v for v in base_vals if v.kind == "shape_tuple"]
        if tuples:
            idx = None
            if isinstance(sl, ast.Constant) and isinstance(sl.value, int):
                idx = sl.value
            if idx is not None:
                out: Set[ShapeVal] = set()
                for v in tuples:
                    if v.shape is not None and -len(v.shape) <= idx < len(v.shape):
                        out.add(
                            ShapeVal("dim", dim=v.shape[idx],
                                     origin_line=v.origin_line)
                        )
                if out:
                    return frozenset(out)
            return _TOP_SET
        base = join_arrays(base_vals)
        if base is None or base.shape is None:
            return _TOP_SET
        items = list(sl.elts) if isinstance(sl, ast.Tuple) else [sl]
        dims: List[Dim] = []
        remaining = list(base.shape)
        for item in items:
            if isinstance(item, ast.Constant) and item.value is None:
                dims.append(lit(1))  # np.newaxis
                continue
            if isinstance(item, ast.Slice):
                if not remaining:
                    return _TOP_SET
                d = remaining.pop(0)
                full = item.lower is None and item.upper is None and (
                    item.step is None
                )
                dims.append(d if full else DIM_TOP)
                continue
            if isinstance(item, (ast.Constant,)) and item.value is Ellipsis:
                return _TOP_SET
            # Integer (or unknown scalar) index: drops one axis; an
            # array index (fancy/boolean) would change rank — detect
            # known array indices and give up on rank instead of lying.
            idx_arr = join_arrays(self.eval(item, env))
            if idx_arr is not None and idx_arr.shape is not None and len(
                idx_arr.shape
            ) > 0:
                return frozenset({array_val(None, base.dtype, expr.lineno)})
            if not remaining:
                return _TOP_SET
            remaining.pop(0)
        dims.extend(remaining)
        return frozenset({array_val(tuple(dims), base.dtype, expr.lineno)})

    # -- call evaluation ---------------------------------------------------

    def _dim_from_node(self, node: ast.AST, env: SEnv) -> Dim:
        if isinstance(node, ast.Constant) and isinstance(node.value, int) and not isinstance(node.value, bool):
            return lit(node.value)
        if isinstance(node, ast.Name):
            vals = env.get(node.id)
            if vals:
                dims = {v.dim for v in vals if v.kind == "dim" and v.dim}
                if len(dims) == 1:
                    return next(iter(dims))
                if dims:
                    return DIM_TOP
            return sym(node.id)
        if isinstance(node, ast.Attribute):
            chain = attribute_chain(node)
            if chain is not None:
                return sym(".".join(chain))
            return DIM_TOP
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return DIM_TOP  # reshape(-1) and friends
        return DIM_TOP

    def _dims_from_shape_arg(
        self, node: ast.AST, env: SEnv
    ) -> Optional[Tuple[Dim, ...]]:
        if isinstance(node, (ast.Tuple, ast.List)):
            return tuple(self._dim_from_node(e, env) for e in node.elts)
        # A bare int/name: rank-1 allocation np.zeros(n).
        if isinstance(node, (ast.Constant, ast.Name, ast.Attribute)):
            vals = self.eval(node, env)
            tuples = [v for v in vals if v.kind == "shape_tuple"]
            if tuples and len(tuples) == 1:
                return tuples[0].shape  # np.zeros(x.shape)
            return (self._dim_from_node(node, env),)
        return None

    def _dtype_from_node(self, node: ast.AST, env: SEnv) -> Tuple[str, bool]:
        """``(dtype, literal_at_site)`` for a ``dtype=`` argument."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _DTYPE_ALIASES.get(node.value, DTYPE_TOP), True
        if isinstance(node, ast.Attribute):
            chain = attribute_chain(node)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] in self._aliases.numpy_names
            ):
                return _DTYPE_ALIASES.get(chain[1], DTYPE_TOP), True
        if isinstance(node, ast.Name):
            if node.id in ("float", "int", "bool"):
                return _DTYPE_ALIASES[node.id], True
            vals = env.get(node.id, frozenset())
            dtypes = {v.dtype for v in vals if v.kind == "dtype"}
            if len(dtypes) == 1:
                return next(iter(dtypes)), False
        return DTYPE_TOP, False

    def _np_member(self, func: ast.AST) -> Optional[str]:
        """``name`` when ``func`` is ``np.<name>``."""
        chain = attribute_chain(func)
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] in self._aliases.numpy_names
        ):
            return chain[1]
        return None

    def _eval_call(self, call: ast.Call, env: SEnv) -> SValueSet:
        kwargs = keyword_map(call)
        line = call.lineno
        np_name = self._np_member(call.func)
        method = (
            call.func.attr if isinstance(call.func, ast.Attribute) else None
        )
        fname = call.func.id if isinstance(call.func, ast.Name) else None

        # len(x): the leading extent as a dim.
        if fname == "len" and call.args:
            base = join_arrays(self.eval(call.args[0], env))
            if base is not None and base.shape:
                return frozenset(
                    {ShapeVal("dim", dim=base.shape[0], origin_line=line)}
                )
            return _TOP_SET
        if fname in ("int", "float") and call.args:
            inner = self.eval(call.args[0], env)
            dims = [v for v in inner if v.kind == "dim"]
            if dims:
                return frozenset(dims)  # int(x.shape[0]) stays a dim
            return _TOP_SET
        if fname == "range" and call.args:
            # range(n): iterating yields scalars; length n matters only
            # through len(), which is out of scope here.
            return _TOP_SET

        if np_name == "dtype" and call.args:
            dt, _ = self._dtype_from_node(call.args[0], env)
            return frozenset({ShapeVal("dtype", dtype=dt, origin_line=line)})

        # Allocation from an explicit shape: np.zeros((K, D), dtype=...).
        if np_name in _SHAPE_ALLOCATORS and call.args:
            dims = self._dims_from_shape_arg(call.args[0], env)
            dtype = _SHAPE_ALLOCATORS[np_name]
            if np_name == "full" and len(call.args) >= 2:
                fill = join_arrays(self.eval(call.args[1], env))
                if fill is not None:
                    dtype = {
                        "weak_int": "int64",
                        "weak_float": "float64",
                        "weak_bool": "bool",
                    }.get(fill.dtype, fill.dtype)
            if "dtype" in kwargs:
                dt, _ = self._dtype_from_node(kwargs["dtype"], env)
                dtype = dt
            elif len(call.args) >= 3 and np_name == "full":
                pass
            return frozenset({array_val(dims, dtype, line)})

        if np_name in _LIKE_ALLOCATORS and call.args:
            base = join_arrays(self.eval(call.args[0], env))
            shape = base.shape if base is not None else None
            dtype = base.dtype if base is not None else DTYPE_TOP
            if "dtype" in kwargs:
                dtype, _ = self._dtype_from_node(kwargs["dtype"], env)
            return frozenset({array_val(shape, dtype, line)})

        if np_name in ("array", "asarray") and call.args:
            base = join_arrays(self.eval(call.args[0], env))
            if base is None:
                shape, dtype = self._literal_list_shape(call.args[0], env)
            else:
                shape, dtype = base.shape, base.dtype
            if "dtype" in kwargs:
                dtype, _ = self._dtype_from_node(kwargs["dtype"], env)
            return frozenset({array_val(shape, dtype, line)})

        if np_name == "arange":
            dtype = "int64"
            for arg in call.args:
                a = join_arrays(self.eval(arg, env))
                if a is None or a.dtype not in ("weak_int", "int64", "int32"):
                    dtype = DTYPE_TOP if a is None else "float64"
            if "dtype" in kwargs:
                dtype, _ = self._dtype_from_node(kwargs["dtype"], env)
            if len(call.args) == 1:
                return frozenset(
                    {array_val((self._dim_from_node(call.args[0], env),),
                               dtype, line)}
                )
            return frozenset({array_val((DIM_TOP,), dtype, line)})

        if np_name == "linspace":
            n = (
                self._dim_from_node(call.args[2], env)
                if len(call.args) >= 3
                else DIM_TOP
            )
            return frozenset({array_val((n,), "float64", line)})

        if np_name in ("reshape",) and len(call.args) >= 2:
            return self._eval_reshape(call.args[0], call.args[1:], env, line)
        if method == "reshape" and isinstance(call.func, ast.Attribute):
            return self._eval_reshape(
                call.func.value, call.args, env, line
            )

        if np_name == "transpose" or (
            method == "transpose" and isinstance(call.func, ast.Attribute)
        ):
            target = (
                call.args[0] if np_name == "transpose" else call.func.value
            )
            base = join_arrays(self.eval(target, env))
            if base is None or base.shape is None:
                return _TOP_SET
            perm_args = call.args if np_name != "transpose" else call.args[1:]
            if len(perm_args) == 1 and isinstance(perm_args[0], (ast.Tuple, ast.List)):
                perm_args = list(perm_args[0].elts)
            if not perm_args:
                return frozenset(
                    {array_val(tuple(reversed(base.shape)), base.dtype, line)}
                )
            perm: List[int] = []
            for a in perm_args:
                if isinstance(a, ast.Constant) and isinstance(a.value, int):
                    perm.append(a.value)
            if len(perm) == len(base.shape) and sorted(
                p % len(base.shape) for p in perm
            ) == list(range(len(base.shape))):
                dims = tuple(base.shape[p] for p in perm)
                return frozenset({array_val(dims, base.dtype, line)})
            return frozenset(
                {array_val((DIM_TOP,) * len(base.shape), base.dtype, line)}
            )

        if np_name == "swapaxes" or method == "swapaxes":
            target = call.args[0] if np_name else call.func.value  # type: ignore[union-attr]
            axes = call.args[1:] if np_name else call.args
            base = join_arrays(self.eval(target, env))
            if base is None or base.shape is None or len(axes) != 2:
                return _TOP_SET
            ints = [
                a.value
                for a in axes
                if isinstance(a, ast.Constant) and isinstance(a.value, int)
            ]
            if len(ints) == 2:
                rank = len(base.shape)
                i, j = ints[0] % rank, ints[1] % rank
                dims = list(base.shape)
                dims[i], dims[j] = dims[j], dims[i]
                return frozenset({array_val(tuple(dims), base.dtype, line)})
            return _TOP_SET

        if method == "astype" and isinstance(call.func, ast.Attribute):
            base = join_arrays(self.eval(call.func.value, env))
            if call.args:
                dtype, _ = self._dtype_from_node(call.args[0], env)
            elif "dtype" in kwargs:
                dtype, _ = self._dtype_from_node(kwargs["dtype"], env)
            else:
                dtype = DTYPE_TOP
            shape = base.shape if base is not None else None
            return frozenset({array_val(shape, dtype, line)})

        if method in ("copy", "view") and isinstance(call.func, ast.Attribute) and not call.args:
            base = join_arrays(self.eval(call.func.value, env))
            if base is not None:
                return frozenset({array_val(base.shape, base.dtype, line)})
            return _TOP_SET
        if np_name == "copy" and call.args:
            base = join_arrays(self.eval(call.args[0], env))
            if base is not None:
                return frozenset({array_val(base.shape, base.dtype, line)})
            return _TOP_SET

        if method in ("ravel", "flatten") and isinstance(call.func, ast.Attribute):
            base = join_arrays(self.eval(call.func.value, env))
            dtype = base.dtype if base is not None else DTYPE_TOP
            if base is not None and base.shape is not None and len(base.shape) == 1:
                return frozenset({array_val(base.shape, dtype, line)})
            return frozenset({array_val((DIM_TOP,), dtype, line)})
        if np_name == "ravel" and call.args:
            base = join_arrays(self.eval(call.args[0], env))
            dtype = base.dtype if base is not None else DTYPE_TOP
            return frozenset({array_val((DIM_TOP,), dtype, line)})

        # Reductions: x.sum(axis=..) / np.sum(x, axis=..).
        if method in _REDUCTIONS or np_name in _REDUCTIONS:
            if np_name in _REDUCTIONS:
                if not call.args:
                    return _TOP_SET
                base = join_arrays(self.eval(call.args[0], env))
                axis_arg = call.args[1] if len(call.args) >= 2 else kwargs.get("axis")
            else:
                base = join_arrays(self.eval(call.func.value, env))  # type: ignore[union-attr]
                axis_arg = call.args[0] if call.args else kwargs.get("axis")
            if base is None:
                return _TOP_SET
            return frozenset(
                {self._reduce(base, method or np_name, axis_arg,
                              kwargs.get("keepdims"), line)}
            )

        # matmul family (np.matmul / a.dot(b) / be.batched_matmul(a, b)).
        if (np_name in _MATMUL_NAMES or method in _MATMUL_NAMES) and call.args:
            if np_name in _MATMUL_NAMES and len(call.args) >= 2:
                a_node, b_node = call.args[0], call.args[1]
            elif method in _MATMUL_NAMES and isinstance(call.func, ast.Attribute):
                recv = join_arrays(self.eval(call.func.value, env))
                if recv is not None and len(call.args) >= 1:
                    # x.dot(y): receiver is the left operand.
                    a = recv
                    b = join_arrays(self.eval(call.args[0], env))
                    return self._matmul_result(a, b, kwargs, env, line)
                if len(call.args) >= 2:
                    a_node, b_node = call.args[0], call.args[1]
                else:
                    return _TOP_SET
            else:
                return _TOP_SET
            a = join_arrays(self.eval(a_node, env))
            b = join_arrays(self.eval(b_node, env))
            return self._matmul_result(a, b, kwargs, env, line)

        if method == "gather_rows" and len(call.args) >= 2:
            src = join_arrays(self.eval(call.args[0], env))
            idx = join_arrays(self.eval(call.args[1], env))
            out = kwargs.get("out") or (
                call.args[2] if len(call.args) >= 3 else None
            )
            if out is not None:
                ov = join_arrays(self.eval(out, env))
                if ov is not None:
                    return frozenset({ov})
            if (
                src is not None
                and idx is not None
                and src.shape is not None
                and idx.shape is not None
                and len(src.shape) >= 1
            ):
                dims = tuple(idx.shape) + tuple(src.shape[1:])
                return frozenset({array_val(dims, src.dtype, line)})
            return _TOP_SET

        if method == "scratch" and call.args:
            dims = self._dims_from_shape_arg(call.args[0], env)
            dtype = "float64"
            if "dtype" in kwargs:
                dtype, _ = self._dtype_from_node(kwargs["dtype"], env)
            elif len(call.args) >= 2:
                dtype, _ = self._dtype_from_node(call.args[1], env)
            return frozenset({array_val(dims, dtype, line)})

        if np_name in ("stack", "vstack", "hstack", "column_stack",
                       "concatenate") and call.args:
            return self._eval_stack(np_name, call, kwargs, env, line)

        if np_name == "repeat" and len(call.args) >= 2:
            base = join_arrays(self.eval(call.args[0], env))
            axis = kwargs.get("axis") or (
                call.args[2] if len(call.args) >= 3 else None
            )
            if base is None or base.shape is None:
                return _TOP_SET
            if axis is None:
                return frozenset({array_val((DIM_TOP,), base.dtype, line)})
            if isinstance(axis, ast.Constant) and isinstance(axis.value, int):
                k = axis.value % len(base.shape) if base.shape else 0
                reps = self._dim_from_node(call.args[1], env)
                dims = list(base.shape)
                dims[k] = reps if is_one(dims[k]) else DIM_TOP
                return frozenset({array_val(tuple(dims), base.dtype, line)})
            return _TOP_SET
        if np_name == "tile" and call.args:
            base = join_arrays(self.eval(call.args[0], env))
            dtype = base.dtype if base is not None else DTYPE_TOP
            return frozenset({array_val(None, dtype, line)})

        if np_name == "where" and len(call.args) == 3:
            a = join_arrays(self.eval(call.args[1], env))
            b = join_arrays(self.eval(call.args[2], env))
            if a is None or b is None:
                return _TOP_SET
            outcome = broadcast_shapes(a.shape, b.shape)
            return frozenset(
                {array_val(outcome.shape,
                           promote_dtypes(a.dtype, b.dtype), line)}
            )

        if np_name in _BINARY_UFUNCS and len(call.args) >= 2:
            a = join_arrays(self.eval(call.args[0], env))
            b = join_arrays(self.eval(call.args[1], env))
            if a is None or b is None:
                return _TOP_SET
            outcome = broadcast_shapes(a.shape, b.shape)
            dtype = promote_dtypes(a.dtype, b.dtype)
            if np_name in ("divide", "true_divide"):
                dtype = true_divide_dtype(a.dtype, b.dtype)
            out = kwargs.get("out")
            if out is not None:
                ov = join_arrays(self.eval(out, env))
                if ov is not None:
                    return frozenset({ov})
            return frozenset({array_val(outcome.shape, dtype, line)})

        if np_name in _UNARY_UFUNCS and call.args:
            base = join_arrays(self.eval(call.args[0], env))
            if base is None:
                return _TOP_SET
            dtype = base.dtype
            if np_name in _FLOAT_UFUNCS and not is_float_dtype(dtype):
                dtype = "float64" if dtype != DTYPE_TOP else DTYPE_TOP
            out = kwargs.get("out")
            if out is not None:
                ov = join_arrays(self.eval(out, env))
                if ov is not None:
                    return frozenset({ov})
            return frozenset({array_val(base.shape, dtype, line)})

        if np_name in ("linalg",):  # np.linalg.* handled via chain below
            return _TOP_SET
        chain = attribute_chain(call.func)
        if (
            chain is not None
            and len(chain) == 3
            and chain[0] in self._aliases.numpy_names
            and chain[1] == "linalg"
            and chain[2] == "norm"
        ):
            axis = kwargs.get("axis")
            base = join_arrays(self.eval(call.args[0], env)) if call.args else None
            if base is not None and axis is not None:
                return frozenset(
                    {self._reduce(base, "norm", axis,
                                  kwargs.get("keepdims"), line)}
                )
            return frozenset({array_val((), "float64", line)})

        # Annotated project functions: apply the interprocedural summary.
        summary = self._summary_for_call(call)
        if summary is not None and summary.ret is not None:
            arg_shapes = self._actual_arg_shapes(call, summary, env)
            bindings = _bind_summary_syms(summary, arg_shapes)
            dims = summary.ret.dims
            if dims is not None:
                dims = _substitute_dims(dims, bindings)
            return frozenset({array_val(dims, summary.ret.dtype, line)})

        return _TOP_SET

    def _matmul_result(
        self,
        a: Optional[ShapeVal],
        b: Optional[ShapeVal],
        kwargs: Dict[str, ast.expr],
        env: SEnv,
        line: int,
    ) -> SValueSet:
        out = kwargs.get("out")
        if out is not None:
            ov = join_arrays(self.eval(out, env))
            if ov is not None:
                return frozenset({ov})
        if a is None or b is None:
            return _TOP_SET
        outcome = matmul_shapes(a.shape, b.shape)
        return frozenset(
            {array_val(outcome.shape, promote_dtypes(a.dtype, b.dtype), line)}
        )

    def _eval_reshape(
        self,
        target: ast.AST,
        shape_args: Sequence[ast.AST],
        env: SEnv,
        line: int,
    ) -> SValueSet:
        base = join_arrays(self.eval(target, env))
        dtype = base.dtype if base is not None else DTYPE_TOP
        if len(shape_args) == 1 and isinstance(
            shape_args[0], (ast.Tuple, ast.List)
        ):
            shape_args = list(shape_args[0].elts)
        dims = tuple(self._dim_from_node(a, env) for a in shape_args)
        if not dims:
            return _TOP_SET
        return frozenset({array_val(dims, dtype, line)})

    def _eval_stack(
        self,
        np_name: str,
        call: ast.Call,
        kwargs: Dict[str, ast.expr],
        env: SEnv,
        line: int,
    ) -> SValueSet:
        seq = call.args[0]
        if not isinstance(seq, (ast.Tuple, ast.List)):
            base = join_arrays(self.eval(seq, env))
            dtype = base.dtype if base is not None else DTYPE_TOP
            return frozenset({array_val(None, dtype, line)})
        elems = [join_arrays(self.eval(e, env)) for e in seq.elts]
        elems = [e for e in elems if e is not None]
        if not elems:
            return _TOP_SET
        joined = elems[0]
        for e in elems[1:]:
            joined = _join_two_arrays(joined, e)
        dtype = joined.dtype
        n = lit(len(seq.elts))
        axis = kwargs.get("axis")
        axis_i = (
            axis.value
            if isinstance(axis, ast.Constant) and isinstance(axis.value, int)
            else 0
        )
        if np_name == "stack":
            if joined.shape is None:
                return frozenset({array_val(None, dtype, line)})
            rank = len(joined.shape) + 1
            axis_i %= rank
            dims = list(joined.shape)
            dims.insert(axis_i, n)
            return frozenset({array_val(tuple(dims), dtype, line)})
        if joined.shape is None:
            return frozenset({array_val(None, dtype, line)})
        dims = list(joined.shape)
        if np_name == "vstack":
            axis_i = 0
        if np_name in ("hstack", "column_stack"):
            axis_i = min(1, len(dims) - 1) if dims else 0
        if 0 <= axis_i < len(dims):
            dims[axis_i] = DIM_TOP  # concatenation sums extents
        return frozenset({array_val(tuple(dims), dtype, line)})

    def _literal_list_shape(
        self, node: ast.AST, env: SEnv
    ) -> Tuple[Optional[Tuple[Dim, ...]], str]:
        """Shape of ``np.array([...])`` over a literal list display."""
        if not isinstance(node, (ast.List, ast.Tuple)):
            return None, DTYPE_TOP
        elems = [join_arrays(self.eval(e, env)) for e in node.elts]
        if not elems or any(e is None for e in elems):
            return (lit(len(node.elts)),), DTYPE_TOP
        inner = elems[0]
        for e in elems[1:]:
            inner = _join_two_arrays(inner, e)  # type: ignore[arg-type]
        dtype = inner.dtype  # type: ignore[union-attr]
        dtype = {"weak_int": "int64", "weak_float": "float64",
                 "weak_bool": "bool"}.get(dtype, dtype)
        if inner.shape == ():  # type: ignore[union-attr]
            return (lit(len(node.elts)),), dtype
        if inner.shape is None:  # type: ignore[union-attr]
            return None, dtype
        return (lit(len(node.elts)),) + tuple(inner.shape), dtype  # type: ignore[union-attr]

    def _reduce(
        self,
        base: ShapeVal,
        op: Optional[str],
        axis_arg: Optional[ast.AST],
        keepdims_arg: Optional[ast.AST],
        line: int,
    ) -> ShapeVal:
        dtype = base.dtype
        if op in ("mean", "std", "var", "norm") and not is_float_dtype(dtype):
            dtype = "float64" if dtype != DTYPE_TOP else DTYPE_TOP
        if op in ("sum", "prod") and dtype in ("bool", "weak_bool"):
            dtype = "int64"
        if op in ("argmax", "argmin", "count_nonzero"):
            dtype = "int64"
        if op in ("all", "any"):
            dtype = "bool"
        keepdims = (
            isinstance(keepdims_arg, ast.Constant)
            and keepdims_arg.value is True
        )
        if base.shape is None:
            return array_val(None, dtype, line)
        if axis_arg is None:
            return array_val(
                tuple(lit(1) for _ in base.shape) if keepdims else (),
                dtype,
                line,
            )
        if isinstance(axis_arg, ast.Constant) and isinstance(
            axis_arg.value, int
        ):
            rank = len(base.shape)
            if rank == 0:
                return array_val((), dtype, line)
            k = axis_arg.value % rank
            dims = list(base.shape)
            if keepdims:
                dims[k] = lit(1)
            else:
                dims.pop(k)
            return array_val(tuple(dims), dtype, line)
        return array_val(None, dtype, line)

    def _eval_binop(
        self, left: SValueSet, right: SValueSet, op: ast.operator, line: int
    ) -> SValueSet:
        a = join_arrays(left)
        b = join_arrays(right)
        # dim arithmetic: n - 1, n * 2 … stays a dim-ish scalar (top dim).
        ldims = [v for v in left if v.kind == "dim"]
        rdims = [v for v in right if v.kind == "dim"]
        if (ldims or rdims) and a is None and b is None:
            return _TOP_SET
        if a is None or b is None:
            return _TOP_SET
        if isinstance(op, ast.MatMult):
            outcome = matmul_shapes(a.shape, b.shape)
            return frozenset(
                {array_val(outcome.shape,
                           promote_dtypes(a.dtype, b.dtype), line)}
            )
        outcome = broadcast_shapes(a.shape, b.shape)
        dtype = promote_dtypes(a.dtype, b.dtype)
        if isinstance(op, ast.Div):
            dtype = true_divide_dtype(a.dtype, b.dtype)
        return frozenset({array_val(outcome.shape, dtype, line)})

    def _eval_iteration(self, iterable: ast.AST, env: SEnv) -> SValueSet:
        vals = self.eval(iterable, env)
        base = join_arrays(vals)
        if base is not None and base.shape is not None and len(base.shape) >= 1:
            return frozenset(
                {array_val(tuple(base.shape[1:]), base.dtype,
                           base.origin_line)}
            )
        tuples = [v for v in vals if v.kind == "shape_tuple"]
        if tuples:
            dims: Set[ShapeVal] = set()
            for v in tuples:
                for d in v.shape or ():
                    dims.add(ShapeVal("dim", dim=d, origin_line=v.origin_line))
            if dims:
                return frozenset(dims)
        return _TOP_SET

    @staticmethod
    def _project_elements(values: SValueSet) -> SValueSet:
        out: Set[ShapeVal] = set()
        for v in values:
            if v.is_array() and v.shape is not None and len(v.shape) >= 1:
                out.add(array_val(tuple(v.shape[1:]), v.dtype, v.origin_line))
        return frozenset(out) if out else _TOP_SET

    # -- interprocedural helpers -------------------------------------------

    def _summary_for_call(self, call: ast.Call) -> Optional[FunctionSummary]:
        if self._resolver is not None:
            qual = self._resolver(call)
            if qual is not None and qual in self._summaries:
                return self._summaries[qual]
        if isinstance(call.func, ast.Name):
            return self._summaries.get(call.func.id)
        if isinstance(call.func, ast.Attribute):
            return self._method_summaries.get(call.func.attr)
        return None

    def _actual_arg_shapes(
        self, call: ast.Call, summary: FunctionSummary, env: SEnv
    ) -> Dict[str, Optional[Tuple[Dim, ...]]]:
        order = list(summary.param_order)
        if summary.is_method and isinstance(call.func, ast.Attribute):
            order = order[1:]
        shapes: Dict[str, Optional[Tuple[Dim, ...]]] = {}
        for pname, arg in zip(order, call.args):
            a = join_arrays(self.eval(arg, env))
            shapes[pname] = a.shape if a is not None else None
        for kw in call.keywords:
            if kw.arg is not None:
                a = join_arrays(self.eval(kw.value, env))
                shapes[kw.arg] = a.shape if a is not None else None
        return shapes


# ---------------------------------------------------------------------------
# Module-level driver
# ---------------------------------------------------------------------------


def collect_module_summaries(
    tree: ast.AST, lines: Sequence[str], module_name: Optional[str]
) -> Dict[str, FunctionSummary]:
    """Every annotated function in one module, keyed by qualified name
    (``module.func``, class dropped — matching the call-graph keying)
    and, for convenience, by bare name."""
    out: Dict[str, FunctionSummary] = {}
    prefix = f"{module_name}." if module_name else ""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary = annotation_for(node, lines, f"{prefix}{node.name}")
            if summary is not None:
                out[summary.qualname] = summary
                out.setdefault(node.name, summary)
    return out


class ModuleShapes:
    """Shape/dtype analyses for every scope of one module.

    Built lazily by :meth:`FileContext.shapes`; rules query
    :meth:`value_of` with any expression node from the module tree.
    """

    def __init__(
        self,
        tree: ast.AST,
        lines: Sequence[str],
        *,
        module_name: Optional[str] = None,
        summaries: Optional[Dict[str, FunctionSummary]] = None,
        method_summaries: Optional[Dict[str, FunctionSummary]] = None,
        call_resolver: Optional[Callable[[ast.Call], Optional[str]]] = None,
    ) -> None:
        aliases = NumpyAliases(tree)
        local = collect_module_summaries(tree, lines, module_name)
        merged = dict(summaries or {})
        merged.update(local)
        methods = dict(method_summaries or {})
        for s in local.values():
            if s.is_method:
                methods.setdefault(s.qualname.rsplit(".", 1)[-1], s)
        self.summaries = merged
        self.scopes: List[ScopeShapeAnalysis] = []
        self._scope_of_def: Dict[int, ScopeShapeAnalysis] = {}
        bodies: List[Tuple[Optional[ast.AST], List[ast.stmt]]] = [
            (None, tree.body)
        ]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bodies.append((node, node.body))
        for scope_node, body in bodies:
            summary = None
            if scope_node is not None:
                name = getattr(scope_node, "name", "")
                summary = merged.get(f"{module_name}.{name}" if module_name else name)
                if summary is None:
                    summary = local.get(name)
                # Only seed when the annotation belongs to *this* def.
                if summary is not None and summary.lineno != scope_node.lineno:
                    summary = None
            scope = ScopeShapeAnalysis(
                body,
                aliases,
                scope_node=scope_node,
                summary=summary,
                summaries=merged,
                method_summaries=methods,
                call_resolver=call_resolver,
            )
            self.scopes.append(scope)
            if scope_node is not None:
                self._scope_of_def[id(scope_node)] = scope

    def scope_for_def(
        self, node: ast.AST
    ) -> Optional[ScopeShapeAnalysis]:
        return self._scope_of_def.get(id(node))

    def scope_containing(self, expr: ast.AST) -> Optional[ScopeShapeAnalysis]:
        for scope in reversed(self.scopes):
            if scope.enclosing_unit(expr) is not None:
                return scope
        return None

    def value_of(self, expr: ast.AST) -> SValueSet:
        scope = self.scope_containing(expr)
        if scope is None:
            return _TOP_SET
        return scope.value_of(expr)

    def array_of(self, expr: ast.AST) -> Optional[ShapeVal]:
        scope = self.scope_containing(expr)
        if scope is None:
            return None
        return scope.array_of(expr)
