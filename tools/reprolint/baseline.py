"""Committed-baseline mechanism (the ratchet).

A baseline file records the fingerprints of *accepted* pre-existing
violations so a newly introduced rule can land without blocking on a
large cleanup.  Runs then fail only on findings NOT covered by the
baseline; as violations are fixed, ``--update-baseline`` shrinks the
file (the ratchet only turns one way: the gate test keeps the count
from growing, review keeps it from being re-added).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from tools.reprolint.findings import Finding

BASELINE_VERSION = 1


def load_baseline(path: Path) -> Dict[str, int]:
    """Read ``fingerprint -> accepted count``; empty when absent."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = data.get("entries", {})
    return {str(k): int(v) for k, v in entries.items()}


def save_baseline(path: Path, findings: Iterable[Finding]) -> Dict[str, int]:
    """Write the baseline covering exactly ``findings``; returns entries."""
    counts = Counter(f.fingerprint() for f in findings)
    entries = dict(sorted(counts.items()))
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted pre-existing reprolint violations. Shrink me; "
            "never grow me. Regenerate with --update-baseline."
        ),
        "entries": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entries


def prune_baseline(path: Path, stale: Dict[str, int]) -> Dict[str, int]:
    """Subtract ``stale`` (fingerprint -> unconsumed count) from the
    baseline on disk; entries that reach zero disappear.  Returns the
    surviving entries."""
    entries = load_baseline(path)
    pruned = {
        fp: count - stale.get(fp, 0)
        for fp, count in entries.items()
        if count - stale.get(fp, 0) > 0
    }
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted pre-existing reprolint violations. Shrink me; "
            "never grow me. Regenerate with --update-baseline."
        ),
        "entries": dict(sorted(pruned.items())),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return pruned


def split_by_baseline(
    findings: List[Finding], baseline: Dict[str, int]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, baselined).

    Each fingerprint absorbs at most its accepted count, so adding a
    *second* identical violation to a file with one accepted entry still
    fails the run.
    """
    budget = Counter(baseline)
    new: List[Finding] = []
    matched: List[Finding] = []
    for f in findings:
        fp = f.fingerprint()
        if budget[fp] > 0:
            budget[fp] -= 1
            matched.append(f)
        else:
            new.append(f)
    return new, matched
