"""Small AST utilities shared by the rule implementations."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple


def walk_with_parents(tree: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that also stamps ``node._reprolint_parent``."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._reprolint_parent = node  # type: ignore[attr-defined]
        yield node


def numeric_literal(node: ast.AST) -> Optional[float]:
    """The value of a numeric ``Constant`` / signed constant, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        inner = numeric_literal(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    return None


def string_literal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def keyword_map(call: ast.Call) -> Dict[str, ast.expr]:
    """``name -> value`` for the call's explicit keywords (no ``**``)."""
    return {kw.arg: kw.value for kw in call.keywords if kw.arg is not None}


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name-rooted chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


class NumpyAliases:
    """Track how this module refers to ``numpy`` and ``numpy.random``.

    Understands ``import numpy``, ``import numpy as np``,
    ``from numpy import random [as r]``, and
    ``from numpy.random import <name> [as alias]``.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.numpy_names: set = set()
        self.random_names: set = set()
        self.direct_random_members: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_names.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        # ``import numpy.random`` binds ``numpy``
                        self.numpy_names.add(alias.asname or "numpy")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.random_names.add(alias.asname or "random")
                elif node.module == "numpy.random":
                    for alias in node.names:
                        self.direct_random_members[alias.asname or alias.name] = (
                            alias.name
                        )

    def random_member(self, node: ast.AST) -> Optional[str]:
        """If ``node`` refers to ``numpy.random.<member>``, return member."""
        chain = attribute_chain(node)
        if chain is not None:
            if (
                len(chain) == 3
                and chain[0] in self.numpy_names
                and chain[1] == "random"
            ):
                return chain[2]
            if len(chain) == 2 and chain[0] in self.random_names:
                return chain[1]
        if isinstance(node, ast.Name) and node.id in self.direct_random_members:
            return self.direct_random_members[node.id]
        return None

    def is_numpy_attr(self, node: ast.AST, *names: str) -> bool:
        """True when ``node`` is ``np.<name>`` for any of ``names``."""
        chain = attribute_chain(node)
        return (
            chain is not None
            and len(chain) == 2
            and chain[0] in self.numpy_names
            and chain[1] in names
        )


#: Receiver-name fragments that mark a ``.map`` call as an executor
#: dispatch rather than an unrelated container method.  ``.submit`` is
#: distinctive enough to count unconditionally.
_EXECUTORISH_FRAGMENTS = ("pool", "executor", "worker")


def submission_method(call: ast.Call) -> Optional[str]:
    """``"submit"``/``"map"`` when ``call`` hands a task to an executor.

    Matches ``<recv>.submit(fn, ...)`` always, and ``<recv>.map(fn, it)``
    only when the receiver's terminal name looks executor-ish (contains
    ``pool``/``executor``/``worker``), since ``.map`` is a common method
    name on non-concurrent objects.  Returns ``None`` otherwise.
    """
    func = call.func
    if not isinstance(func, ast.Attribute) or not call.args:
        return None
    if func.attr == "submit":
        return "submit"
    if func.attr == "map" and len(call.args) >= 2:
        recv = func.value
        recv_name = None
        if isinstance(recv, ast.Name):
            recv_name = recv.id
        elif isinstance(recv, ast.Attribute):
            recv_name = recv.attr
        if recv_name is not None and any(
            frag in recv_name.lower() for frag in _EXECUTORISH_FRAGMENTS
        ):
            return "map"
    return None


def callable_bare_name(node: ast.AST) -> Optional[str]:
    """The bare name a submitted callable would resolve under.

    ``f`` for ``f``; ``local_update`` for ``c.local_update`` (bound
    method — submission runs the method); ``"<lambda>"`` for lambdas.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Lambda):
        return "<lambda>"
    return None


def lambda_free_names(lam: ast.Lambda) -> List[ast.Name]:
    """``Name`` loads in the lambda body not bound by its own parameters."""
    args = lam.args
    bound = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    return [
        sub
        for sub in ast.walk(lam.body)
        if isinstance(sub, ast.Name)
        and isinstance(sub.ctx, ast.Load)
        and sub.id not in bound
    ]


def submission_captured_names(call: ast.Call) -> List[ast.Name]:
    """Every ``Name`` whose value escapes into a submitted task.

    Covers positional/keyword task arguments, the receiver of a bound
    method used as the callable (``pool.submit(c.local_update, ...)``
    captures ``c``), and the free variables of a lambda callable.  The
    callable itself, when a bare function reference, captures no data.
    """
    captured: List[ast.Name] = []
    target = call.args[0]
    if isinstance(target, ast.Lambda):
        captured.extend(lambda_free_names(target))
    elif not isinstance(target, ast.Name):
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                captured.append(sub)
    for arg in call.args[1:]:
        for sub in ast.walk(arg):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                captured.append(sub)
    for kw in call.keywords:
        for sub in ast.walk(kw.value):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                captured.append(sub)
    return captured


def contains_call_to(node: ast.AST, func_names: Tuple[str, ...]) -> bool:
    """Does any descendant call a function whose (attribute) name matches?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            fn = sub.func
            name = None
            if isinstance(fn, ast.Attribute):
                name = fn.attr
            elif isinstance(fn, ast.Name):
                name = fn.id
            if name in func_names:
                return True
    return False


def contains_literal_offset(node: ast.AST) -> bool:
    """Does the expression add a positive numeric literal (the eps idiom)?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add):
            for side in (sub.left, sub.right):
                v = numeric_literal(side)
                if v is not None and v > 0:
                    return True
    return False
