"""Intraprocedural control-flow graphs over ``ast`` statement lists.

One :class:`CFG` is built per *scope* (a module body or one function
body).  Blocks hold the scope's **simple** statements in execution
order; compound statements contribute edges (branch, loop back-edge,
exception, ``finally`` chaining) and their headers are recorded as
ordinary units so dataflow can evaluate conditions and ``with`` items.

The graph is deliberately approximate where Python's dynamic semantics
make precision impossible:

* every statement inside a ``try`` body may raise, so each handler
  entry is reachable from before the body ran at all *and* from after
  its effects (modelled as edges from the pre-``try`` block and the
  try-body entry/exit blocks to each handler);
* a ``finally`` suite is chained on every exit path we model (normal
  completion, handled exception, ``return``/``break``/``continue``);
* calls are not assumed to diverge; only ``return``/``raise``/
  ``break``/``continue`` terminate a block's fallthrough.

That is sound for the two consumers here: reaching-definitions style
provenance (:mod:`tools.reprolint.dataflow`), which only needs a
superset of feasible paths, and unreachable-code detection (RL703),
which only reports blocks with *no* path from the entry.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

#: Compound statements: everything else is a "simple" unit.
_COMPOUND = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)

# ``ast.TryStar`` exists on Python >= 3.11 only.
_TRY_TYPES = (ast.Try,) + ((ast.TryStar,) if hasattr(ast, "TryStar") else ())


@dataclass
class Block:
    """A straight-line sequence of statement units."""

    id: int
    units: List[ast.stmt] = field(default_factory=list)
    succ: Set[int] = field(default_factory=set)
    pred: Set[int] = field(default_factory=set)
    #: True for while/for header blocks (back-edge targets).  Fixpoint
    #: analyses widen here so loop-carried facts converge quickly.
    is_loop_head: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lines = [getattr(u, "lineno", "?") for u in self.units]
        return f"Block({self.id}, lines={lines}, succ={sorted(self.succ)})"


@dataclass
class CFG:
    """Control-flow graph of one scope."""

    blocks: Dict[int, Block]
    entry: int
    exit: int

    def successors(self, block_id: int) -> List[Block]:
        return [self.blocks[s] for s in sorted(self.blocks[block_id].succ)]

    def reachable(self) -> Set[int]:
        """Block ids reachable from the entry block."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.blocks[b].succ)
        return seen

    def unreachable_units(self) -> List[ast.stmt]:
        """Statement units in blocks no path from the entry reaches."""
        out: List[ast.stmt] = []
        for group in self.unreachable_blocks():
            out.extend(group)
        return out

    def unreachable_blocks(self) -> List[List[ast.stmt]]:
        """Unreachable units grouped by block (one straight-line region each)."""
        live = self.reachable()
        return [
            self.blocks[bid].units
            for bid in sorted(self.blocks)
            if bid not in live and self.blocks[bid].units
        ]

    def rpo(self) -> List[int]:
        """Reverse post-order over reachable blocks (good worklist order)."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            stack = [(bid, iter(sorted(self.blocks[bid].succ)))]
            seen.add(bid)
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, iter(sorted(self.blocks[nxt].succ))))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))


class _Builder:
    """Recursive-descent CFG construction with loop/finally context."""

    def __init__(self) -> None:
        self._blocks: Dict[int, Block] = {}
        self._next_id = 0
        # (break targets, continue targets) for the innermost loop.
        self._loop_stack: List[tuple] = []

    def new_block(self) -> Block:
        block = Block(self._next_id)
        self._blocks[self._next_id] = block
        self._next_id += 1
        return block

    def edge(self, src: Optional[Block], dst: Block) -> None:
        if src is None:
            return
        src.succ.add(dst.id)
        dst.pred.add(src.id)

    def build(self, body: List[ast.stmt]) -> CFG:
        entry = self.new_block()
        exit_block = self.new_block()
        end = self._emit_body(body, entry, exit_block)
        self.edge(end, exit_block)
        return CFG(blocks=self._blocks, entry=entry.id, exit=exit_block.id)

    # -- statement dispatch ------------------------------------------------

    def _emit_body(
        self, body: List[ast.stmt], current: Optional[Block], scope_exit: Block
    ) -> Optional[Block]:
        """Emit ``body`` starting in ``current``.

        Returns the block normal execution falls out of, or ``None`` when
        every path leaves via return/raise/break/continue.  When flow is
        already dead, later statements still get (unreachable) blocks so
        RL703 can point at them.
        """
        for stmt in body:
            if current is None:
                current = self.new_block()  # unreachable continuation
            current = self._emit_stmt(stmt, current, scope_exit)
        return current

    def _emit_stmt(
        self, stmt: ast.stmt, current: Block, scope_exit: Block
    ) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._emit_if(stmt, current, scope_exit)
        if isinstance(stmt, (ast.While,)):
            return self._emit_while(stmt, current, scope_exit)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._emit_for(stmt, current, scope_exit)
        if isinstance(stmt, _TRY_TYPES):
            return self._emit_try(stmt, current, scope_exit)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._emit_with(stmt, current, scope_exit)

        # Simple unit: record it, then handle flow terminators.
        current.units.append(stmt)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.edge(current, self._blocks[scope_exit.id])
            return None
        if isinstance(stmt, ast.Break):
            if self._loop_stack:
                self.edge(current, self._loop_stack[-1][0])
            else:  # malformed outside a loop; treat as scope exit
                self.edge(current, scope_exit)
            return None
        if isinstance(stmt, ast.Continue):
            if self._loop_stack:
                self.edge(current, self._loop_stack[-1][1])
            else:
                self.edge(current, scope_exit)
            return None
        return current

    # -- compound statements ----------------------------------------------

    def _emit_if(self, stmt: ast.If, current: Block, scope_exit: Block):
        current.units.append(stmt)  # header unit: the test expression
        join = self.new_block()
        then_entry = self.new_block()
        self.edge(current, then_entry)
        then_end = self._emit_body(stmt.body, then_entry, scope_exit)
        self.edge(then_end, join)
        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(current, else_entry)
            else_end = self._emit_body(stmt.orelse, else_entry, scope_exit)
            self.edge(else_end, join)
        else:
            self.edge(current, join)
        # ``if True:``/``if False:`` constant tests still get both edges:
        # precision there belongs to a constant-folding pass, not the CFG.
        return join if join.pred else None

    def _emit_while(self, stmt: ast.While, current: Block, scope_exit: Block):
        head = self.new_block()
        head.is_loop_head = True
        head.units.append(stmt)  # header unit: the loop test
        self.edge(current, head)
        after = self.new_block()
        body_entry = self.new_block()
        self.edge(head, body_entry)

        is_while_true = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value) is True
        )
        self._loop_stack.append((after, head))
        body_end = self._emit_body(stmt.body, body_entry, scope_exit)
        self._loop_stack.pop()
        self.edge(body_end, head)  # back-edge

        if stmt.orelse:
            else_entry = self.new_block()
            if not is_while_true:
                self.edge(head, else_entry)
            else_end = self._emit_body(stmt.orelse, else_entry, scope_exit)
            self.edge(else_end, after)
        elif not is_while_true:
            self.edge(head, after)  # test-false exit (only if test can be false)
        return after if after.pred else None

    def _emit_for(self, stmt, current: Block, scope_exit: Block):
        head = self.new_block()
        head.is_loop_head = True
        head.units.append(stmt)  # header unit: iterable + target binding
        self.edge(current, head)
        after = self.new_block()
        body_entry = self.new_block()
        self.edge(head, body_entry)

        self._loop_stack.append((after, head))
        body_end = self._emit_body(stmt.body, body_entry, scope_exit)
        self._loop_stack.pop()
        self.edge(body_end, head)  # back-edge

        if stmt.orelse:
            else_entry = self.new_block()
            self.edge(head, else_entry)
            else_end = self._emit_body(stmt.orelse, else_entry, scope_exit)
            self.edge(else_end, after)
        else:
            self.edge(head, after)  # iterator exhausted
        return after

    def _emit_with(self, stmt, current: Block, scope_exit: Block):
        current.units.append(stmt)  # header unit: context managers + as-bindings
        body_entry = self.new_block()
        self.edge(current, body_entry)
        return self._emit_body(stmt.body, body_entry, scope_exit)

    def _emit_try(self, stmt, current: Block, scope_exit: Block):
        try_entry = self.new_block()
        self.edge(current, try_entry)
        body_end = self._emit_body(stmt.body, try_entry, scope_exit)

        handler_ends: List[Optional[Block]] = []
        handler_entries: List[Block] = []
        for handler in stmt.handlers:
            h_entry = self.new_block()
            h_entry.units.append(handler)  # header unit: the as-name binding
            handler_entries.append(h_entry)
            # Any statement in the try body may raise: approximate with
            # edges from before the body ran at all, from the body's
            # entry block, and from its normal-exit block.
            self.edge(current, h_entry)
            self.edge(try_entry, h_entry)
            self.edge(body_end, h_entry)
            handler_ends.append(self._emit_body(handler.body, h_entry, scope_exit))

        else_end: Optional[Block] = body_end
        if stmt.orelse and body_end is not None:
            else_entry = self.new_block()
            self.edge(body_end, else_entry)
            else_end = self._emit_body(stmt.orelse, else_entry, scope_exit)

        if stmt.finalbody:
            fin_entry = self.new_block()
            self.edge(else_end, fin_entry)
            for end in handler_ends:
                self.edge(end, fin_entry)
            if not stmt.handlers:
                # Unhandled exceptions still run the finally suite.
                self.edge(try_entry, fin_entry)
            fin_end = self._emit_body(stmt.finalbody, fin_entry, scope_exit)
            return fin_end

        join = self.new_block()
        self.edge(else_end, join)
        for end in handler_ends:
            self.edge(end, join)
        return join if join.pred else None


def build_cfg(body: List[ast.stmt]) -> CFG:
    """Build the CFG of one scope (module body or function body)."""
    return _Builder().build(body)
