"""Auto-fixes for mechanically safe findings (``--fix``).

Only two finding kinds are fixable, both marked by their rule with
``extra["fixable"]``:

* ``remove_import`` (RL704) — drop an unused import binding;
* ``prune_export`` (RL701) — drop an ``__all__`` entry that names
  nothing in the module.

Safety model
------------
Fixes are planned as whole-statement line-span replacements and applied
bottom-up so earlier spans stay valid.  A fix is *skipped* (never
half-applied) when anything makes pure statement surgery unsafe: a
comment inside the span, several statements sharing a line, or a parent
block that deletion would leave empty.  After editing, the result must
re-parse; a file whose fixed text fails ``ast.parse`` is abandoned
untouched.  Fixing is idempotent — a second ``--fix`` run plans zero
edits — and removing dead bindings / dead ``__all__`` strings cannot
change runtime behaviour of code that was importable to begin with.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from tools.reprolint.config import LintConfig
from tools.reprolint.findings import Finding

#: ``extra["fixable"]`` values this module knows how to apply.
FIXABLE_KINDS = ("remove_import", "prune_export")


@dataclass
class FileFix:
    """Planned (or applied) edits for one file."""

    path: Path
    display_path: str
    original: str
    fixed: str
    applied: List[Finding] = field(default_factory=list)
    skipped: List[Tuple[Finding, str]] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return self.fixed != self.original

    def diff(self) -> str:
        return "".join(
            difflib.unified_diff(
                self.original.splitlines(keepends=True),
                self.fixed.splitlines(keepends=True),
                fromfile=f"a/{self.display_path}",
                tofile=f"b/{self.display_path}",
            )
        )


def plan_fixes(findings: Sequence[Finding], config: LintConfig) -> List[FileFix]:
    """Pure planning pass: group fixable findings per file and compute
    each file's fixed text.  Nothing is written to disk."""
    by_file: Dict[str, List[Finding]] = {}
    for f in findings:
        if f.extra.get("fixable") in FIXABLE_KINDS:
            by_file.setdefault(f.path, []).append(f)
    fixes: List[FileFix] = []
    for display_path in sorted(by_file):
        path = (config.root / display_path).resolve()
        fixes.append(_plan_file(path, display_path, by_file[display_path]))
    return fixes


def apply_fixes(fixes: Sequence[FileFix]) -> int:
    """Write every changed file; returns the number of files written."""
    written = 0
    for fix in fixes:
        if fix.changed:
            fix.path.write_text(fix.fixed, encoding="utf-8")
            written += 1
    return written


# -- per-file planning -----------------------------------------------------


def _plan_file(path: Path, display_path: str, findings: List[Finding]) -> FileFix:
    source = path.read_text(encoding="utf-8")
    fix = FileFix(path=path, display_path=display_path, original=source, fixed=source)
    try:
        tree = ast.parse(source)
    except SyntaxError:
        fix.skipped = [(f, "file does not parse") for f in findings]
        return fix
    lines = source.splitlines()
    stmt_starts = _statement_start_lines(tree)
    parent_bodies = _parent_bodies(tree)

    # Group findings by the statement they edit so one statement with
    # several dead bindings/exports is rewritten exactly once.
    edits: List[Tuple[int, int, List[str]]] = []
    by_stmt: Dict[int, Tuple[ast.stmt, List[Finding]]] = {}
    for finding in findings:
        stmt = _owning_statement(tree, finding)
        if stmt is None:
            fix.skipped.append((finding, "no matching statement at this line"))
            continue
        by_stmt.setdefault(id(stmt), (stmt, []))[1].append(finding)

    for stmt, stmt_findings in by_stmt.values():
        start, end = stmt.lineno, stmt.end_lineno or stmt.lineno
        reason = _span_unsafe(lines, stmt_starts, start, end)
        if reason is not None:
            fix.skipped.extend((f, reason) for f in stmt_findings)
            continue
        replacement = _rewrite_statement(stmt, stmt_findings, lines)
        if replacement is None:
            fix.skipped.extend((f, "statement form not supported") for f in stmt_findings)
            continue
        if replacement == [] and len(parent_bodies.get(id(stmt), [stmt])) == 1:
            fix.skipped.extend(
                (f, "sole statement of its block; deletion would empty the suite")
                for f in stmt_findings
            )
            continue
        edits.append((start, end, replacement))
        fix.applied.extend(stmt_findings)

    if not edits:
        return fix

    # Bottom-up application keeps earlier spans' line numbers valid.
    new_lines = list(lines)
    for start, end, replacement in sorted(edits, reverse=True):
        new_lines[start - 1 : end] = replacement
    fixed = "\n".join(new_lines)
    if source.endswith("\n"):
        fixed += "\n"
    try:
        ast.parse(fixed)
    except SyntaxError:
        fix.skipped.extend(
            (f, "fix would break the file; abandoned") for f in fix.applied
        )
        fix.applied = []
        return fix
    fix.fixed = fixed
    return fix


def _parent_bodies(tree: ast.AST) -> Dict[int, List[ast.stmt]]:
    """id(stmt) -> the body list containing it (for empty-suite checks)."""
    out: Dict[int, List[ast.stmt]] = {}
    for node in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(node, attr, None)
            if isinstance(body, list):
                for child in body:
                    if isinstance(child, ast.stmt):
                        out[id(child)] = body
    return out


def _statement_start_lines(tree: ast.AST) -> Dict[int, int]:
    """line -> number of statements starting on it (semicolon detection)."""
    counts: Dict[int, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            counts[node.lineno] = counts.get(node.lineno, 0) + 1
    return counts


def _span_unsafe(
    lines: List[str], stmt_starts: Dict[int, int], start: int, end: int
) -> Optional[str]:
    for line_no in range(start, end + 1):
        text = lines[line_no - 1] if line_no <= len(lines) else ""
        if "#" in text:
            return "comment inside the statement span; fix it manually"
        if stmt_starts.get(line_no, 0) > 1:
            return "multiple statements share a line; fix it manually"
    return None


def _owning_statement(tree: ast.AST, finding: Finding) -> Optional[ast.stmt]:
    kind = finding.extra.get("fixable")
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = node.end_lineno or node.lineno
        if not (node.lineno <= finding.line <= end):
            continue
        if kind == "remove_import" and isinstance(node, (ast.Import, ast.ImportFrom)):
            bindings = {a.asname or a.name.split(".")[0] for a in node.names}
            if finding.extra.get("binding") in bindings:
                return node
        elif kind == "prune_export" and isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                return node
    return None


def _rewrite_statement(
    stmt: ast.stmt, findings: List[Finding], lines: List[str]
) -> Optional[List[str]]:
    indent = _indent_of(lines[stmt.lineno - 1])
    if isinstance(stmt, (ast.Import, ast.ImportFrom)):
        remove = {f.extra.get("binding") for f in findings}
        keep = [
            a
            for a in stmt.names
            if (a.asname or a.name.split(".")[0]) not in remove
        ]
        if not keep:
            return []
        clone = (
            ast.Import(names=keep)
            if isinstance(stmt, ast.Import)
            else ast.ImportFrom(module=stmt.module, names=keep, level=stmt.level)
        )
        return [indent + ast.unparse(ast.fix_missing_locations(clone))]
    if isinstance(stmt, ast.Assign):
        return _rewrite_all(stmt, findings, lines, indent)
    return None


def _rewrite_all(
    stmt: ast.Assign, findings: List[Finding], lines: List[str], indent: str
) -> Optional[List[str]]:
    if not isinstance(stmt.value, (ast.List, ast.Tuple)):
        return None
    prune = {f.extra.get("export") for f in findings}
    keep: List[str] = []
    for elt in stmt.value.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None  # non-literal entry: too clever to rewrite
        if elt.value not in prune:
            keep.append(elt.value)
    open_c, close_c = ("[", "]") if isinstance(stmt.value, ast.List) else ("(", ")")
    multiline = (stmt.end_lineno or stmt.lineno) > stmt.lineno
    if not multiline or not keep:
        body = ", ".join(f'"{name}"' for name in keep)
        return [f"{indent}__all__ = {open_c}{body}{close_c}"]
    out = [f"{indent}__all__ = {open_c}"]
    out.extend(f'{indent}    "{name}",' for name in keep)
    out.append(f"{indent}{close_c}")
    return out


def _indent_of(line: str) -> str:
    return line[: len(line) - len(line.lstrip())]
