"""reprolint — repository-specific AST static analysis.

A self-contained (stdlib-only) linter enforcing the invariants this
reproduction's correctness rests on but that Python never checks at
runtime:

* **layering** (RL1xx) — the package DAG
  ``utils -> nn/models/datasets -> core -> fl -> cli/analysis/viz``;
* **RNG discipline** (RL2xx) — no legacy global numpy RNG; thread
  ``numpy.random.Generator`` via :mod:`repro.utils.rng`;
* **dtype discipline** (RL3xx) — float64 end to end in nn hot paths;
* **numerical safety** (RL4xx) — bare excepts, mutable defaults,
  unclamped log/exp and unguarded division in loss/prox code;
* **theory contracts** (RL5xx) — literal hyperparameters violating the
  ICPP'20 Lemma 1 (``beta > 3``, tau upper bounds);
* **flow provenance** (RL6xx) — whole-program/dataflow rules: every
  ``numpy.random.Generator`` must descend from the
  :mod:`repro.utils.rng` lineage, and literal hyperparameters reaching
  a FedProxVR driver must satisfy (or be runtime-checked against) the
  Lemma 1 bounds;
* **whole-program hygiene** (RL7xx) — import cycles, broken/dead
  ``__all__`` exports, unreachable code, unused imports (the last two
  auto-fixable via ``--fix``).

See ``docs/LINTING.md`` for every rule, the suppression syntax
(``# reprolint: disable=RLxxx``), SARIF output, ``--fix``, and the
baseline-ratchet workflow.
"""

from tools.reprolint.config import LintConfig, load_config
from tools.reprolint.engine import LintReport, lint_paths
from tools.reprolint.findings import Finding, Severity
from tools.reprolint.registry import all_rules

__version__ = "2.0.0"

__all__ = [
    "Finding",
    "LintConfig",
    "LintReport",
    "Severity",
    "all_rules",
    "lint_paths",
    "load_config",
    "__version__",
]
