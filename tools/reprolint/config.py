"""Declarative configuration, read from ``[tool.reprolint]`` in pyproject.toml.

Everything the rules need to know about *this* repository — the layer
map, which rule families run, where the baseline lives, which modules
count as dtype/numerical hot paths — lives in pyproject so the tool
itself stays repository-agnostic.

Parsing uses :mod:`tomllib` where available (Python >= 3.11) and falls
back to a deliberately minimal TOML-subset reader on 3.9/3.10 so the
tool has zero third-party dependencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from tools.reprolint.findings import Severity, parse_severity

try:  # Python >= 3.11
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.9/3.10 CI
    _toml = None


#: Default layer map: lower number = lower layer; imports may only point
#: at the same or a lower layer.  The bare ``repro`` entry is the
#: package aggregator (``repro/__init__.py``) and also the longest-prefix
#: fallback for any *unmapped* submodule, so forgetting to classify a new
#: module makes importing it a violation instead of a silent pass.
DEFAULT_LAYERS: Dict[str, int] = {
    "repro": 99,
    "repro.exceptions": 0,
    "repro.utils": 0,
    "repro.obs": 0,
    "repro.backend": 0,
    "repro.nn": 1,
    "repro.models": 1,
    "repro.datasets": 1,
    "repro.core": 2,
    "repro.fl": 3,
    "repro.cli": 4,
    "repro.analysis": 4,
    "repro.viz": 4,
    "repro.__main__": 4,
}

DEFAULT_DTYPE_MODULES = ["repro.nn"]
DEFAULT_NUMERIC_MODULES = [
    "repro.nn.losses",
    "repro.core.proximal",
    "repro.core.estimators",
    "repro.core.local",
    "repro.models",
]

#: Modules allowed to call ``numpy.random.default_rng`` directly: the
#: single blessed origin of every Generator lineage (RL600).
DEFAULT_RNG_MODULES = ["repro.utils.rng"]

#: Factory functions whose results carry the blessed lineage.
DEFAULT_RNG_FACTORIES = [
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "derive_generator",
]

#: FedProxVR-family constructors/drivers whose ``beta``/``mu``/``tau``
#: keywords RL601 tracks through dataflow.
DEFAULT_DRIVER_CALLABLES = [
    "FederatedRunConfig",
    "run_federated",
    "make_local_solver",
    "run_fsvrg",
    "random_search",
    "compare_algorithms",
]

#: ``repro.core.theory`` entry points that validate hyperparameters at
#: runtime; passing a literal through one counts as a bound check.
DEFAULT_THEORY_CHECKS = [
    "lemma1_feasible",
    "tau_lower_bound",
    "tau_upper_bound_sarah",
    "tau_upper_bound_svrg",
    "beta_min",
    "tau_star_sarah",
    "theta_from_beta",
    "federated_factor",
    "global_iterations_required",
    "stationarity_bound",
]

#: repro.utils.validation helpers that prove their ``value`` argument
#: strictly positive (unless relaxed via ``strict=False``/``minimum<=0``).
DEFAULT_POSITIVE_CHECKS = [
    "check_positive",
    "check_positive_int",
]

#: Hot-path roots for RL903: any function reachable from one of these in
#: the project call graph counts as hot, so allocations in its loops are
#: per-round/per-step costs.  Bare names match any module.
DEFAULT_HOT_PATH_ROOTS = [
    "solve_cohort",
    "solve",
    "gradient_stack",
    "loss_stack",
    "im2col",
    "col2im",
    "_gather_minibatches",
    "run_round",
    "forward",
    "backward",
]

ALL_FAMILIES = (
    "layering", "rng", "dtype", "safety", "theory", "provenance", "hygiene",
    "concurrency", "arrays",
)


@dataclass
class LintConfig:
    """Resolved reprolint configuration."""

    root: Path = field(default_factory=Path.cwd)
    src_root: str = "src"
    layers: Dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LAYERS))
    enabled_families: List[str] = field(default_factory=lambda: list(ALL_FAMILIES))
    disabled_rules: List[str] = field(default_factory=list)
    baseline: str = "tools/reprolint/baseline.json"
    dtype_modules: List[str] = field(default_factory=lambda: list(DEFAULT_DTYPE_MODULES))
    numeric_modules: List[str] = field(
        default_factory=lambda: list(DEFAULT_NUMERIC_MODULES)
    )
    rng_modules: List[str] = field(default_factory=lambda: list(DEFAULT_RNG_MODULES))
    rng_factories: List[str] = field(
        default_factory=lambda: list(DEFAULT_RNG_FACTORIES)
    )
    driver_callables: List[str] = field(
        default_factory=lambda: list(DEFAULT_DRIVER_CALLABLES)
    )
    theory_check_functions: List[str] = field(
        default_factory=lambda: list(DEFAULT_THEORY_CHECKS)
    )
    positive_check_functions: List[str] = field(
        default_factory=lambda: list(DEFAULT_POSITIVE_CHECKS)
    )
    hot_path_roots: List[str] = field(
        default_factory=lambda: list(DEFAULT_HOT_PATH_ROOTS)
    )
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)

    def baseline_path(self) -> Path:
        p = Path(self.baseline)
        return p if p.is_absolute() else self.root / p

    def layer_of(self, module: str) -> Optional[int]:
        """Longest-prefix layer lookup; ``None`` for unmapped modules."""
        parts = module.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.layers:
                return self.layers[prefix]
        return None

    def module_matches(self, module: Optional[str], prefixes: List[str]) -> bool:
        if module is None:
            return False
        return any(
            module == p or module.startswith(p + ".") for p in prefixes
        )

    def rule_enabled(self, rule_id: str, family: str) -> bool:
        return family in self.enabled_families and rule_id not in self.disabled_rules

    def severity_for(self, rule_id: str, default: Severity) -> Severity:
        return self.severity_overrides.get(rule_id, default)


# ---------------------------------------------------------------------------
# TOML loading
# ---------------------------------------------------------------------------

_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(
    r"""^(?P<key>[A-Za-z0-9_\-]+|"[^"]+"|'[^']+')\s*=\s*(?P<value>.+)$"""
)


def _parse_scalar(text: str):
    text = text.strip()
    if text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    if text in ("true", "false"):
        return text == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    raise ValueError(f"unsupported TOML value: {text!r}")


def _parse_minimal_toml(text: str) -> Dict[str, object]:
    """Parse the TOML subset reprolint's own configuration uses.

    Supports ``[dotted.section]`` headers and ``key = value`` lines where
    the value is a string, number, boolean, or a single-line array of
    those.  This is NOT a general TOML parser; it exists only so Python
    3.9/3.10 (no :mod:`tomllib`) can read ``[tool.reprolint]`` without a
    third-party dependency.
    """
    data: Dict[str, object] = {}
    current = data
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        m = _SECTION_RE.match(line)
        if m:
            current = data
            for part in m.group("name").split("."):
                part = part.strip().strip('"').strip("'")
                current = current.setdefault(part, {})  # type: ignore[assignment]
            continue
        m = _KEY_RE.match(line)
        if not m:
            continue  # multi-line constructs: out of scope for the fallback
        key = m.group("key").strip().strip('"').strip("'")
        value = m.group("value").split("#")[0].strip() if not (
            m.group("value").strip().startswith('"')
            or m.group("value").strip().startswith("'")
            or m.group("value").strip().startswith("[")
        ) else m.group("value").strip()
        if value.startswith("["):
            inner = value.strip()
            if not inner.endswith("]"):
                continue  # multi-line array: unsupported in the fallback
            body = inner[1:-1].strip()
            items = []
            if body:
                for chunk in re.split(r",(?=(?:[^\"']*[\"'][^\"']*[\"'])*[^\"']*$)", body):
                    chunk = chunk.strip()
                    if chunk:
                        items.append(_parse_scalar(chunk))
            current[key] = items
        else:
            current[key] = _parse_scalar(value)
    return data


def _load_toml(path: Path) -> Dict[str, object]:
    text = path.read_text(encoding="utf-8")
    if _toml is not None:
        return _toml.loads(text)
    return _parse_minimal_toml(text)


def load_config(pyproject: Optional[Path] = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.reprolint]``.

    Missing file or missing section yields the built-in defaults with
    ``root`` set to the pyproject's directory (or the CWD).
    """
    cfg = LintConfig()
    if pyproject is None:
        pyproject = Path.cwd() / "pyproject.toml"
    pyproject = Path(pyproject)
    if not pyproject.is_file():
        return cfg
    cfg.root = pyproject.resolve().parent
    data = _load_toml(pyproject)
    section = data.get("tool", {}).get("reprolint", {})  # type: ignore[union-attr]
    if not isinstance(section, dict):
        return cfg

    if "src-root" in section:
        cfg.src_root = str(section["src-root"])
    if "baseline" in section:
        cfg.baseline = str(section["baseline"])
    if "families" in section:
        cfg.enabled_families = [str(v) for v in section["families"]]
    if "disable" in section:
        cfg.disabled_rules = [str(v) for v in section["disable"]]
    if "dtype-modules" in section:
        cfg.dtype_modules = [str(v) for v in section["dtype-modules"]]
    if "numeric-modules" in section:
        cfg.numeric_modules = [str(v) for v in section["numeric-modules"]]
    if "rng-modules" in section:
        cfg.rng_modules = [str(v) for v in section["rng-modules"]]
    if "rng-factories" in section:
        cfg.rng_factories = [str(v) for v in section["rng-factories"]]
    if "driver-callables" in section:
        cfg.driver_callables = [str(v) for v in section["driver-callables"]]
    if "theory-check-functions" in section:
        cfg.theory_check_functions = [
            str(v) for v in section["theory-check-functions"]
        ]
    if "positive-check-functions" in section:
        cfg.positive_check_functions = [
            str(v) for v in section["positive-check-functions"]
        ]
    if "hot-path-roots" in section:
        cfg.hot_path_roots = [str(v) for v in section["hot-path-roots"]]
    layers = section.get("layers")
    if isinstance(layers, dict) and layers:
        cfg.layers = {str(k): int(v) for k, v in layers.items()}
    severity = section.get("severity")
    if isinstance(severity, dict):
        cfg.severity_overrides = {
            str(k): parse_severity(str(v)) for k, v in severity.items()
        }
    return cfg
