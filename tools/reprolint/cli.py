"""Command-line entry point: ``python -m tools.reprolint [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools.reprolint.baseline import save_baseline
from tools.reprolint.config import load_config
from tools.reprolint.engine import lint_paths
from tools.reprolint.registry import all_rules
from tools.reprolint.reporters import render_json, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST static analysis enforcing this repository's layering, RNG, "
            "dtype, numerical-safety, and FedProxVR theory contracts."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--config",
        default=None,
        help="pyproject.toml holding [tool.reprolint] (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--baseline", default=None, help="override the configured baseline path"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule and exit"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="show offending source lines"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.rule_id}  [{cls.family:8s}] {cls.severity.value:7s} "
                  f"{cls.description}")
        return 0

    config = load_config(Path(args.config) if args.config else None)
    baseline_path = Path(args.baseline) if args.baseline else config.baseline_path()
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2

    report = lint_paths(paths, config, baseline_path=baseline_path)

    if args.update_baseline:
        entries = save_baseline(baseline_path, report.findings + report.baselined)
        print(f"baseline written: {baseline_path} ({len(entries)} fingerprint(s), "
              f"{len(report.findings) + len(report.baselined)} finding(s))")
        return 0

    if args.fmt == "json":
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
