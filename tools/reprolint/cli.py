"""Command-line entry point: ``python -m tools.reprolint [paths...]``."""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from tools.reprolint.baseline import prune_baseline, save_baseline
from tools.reprolint.config import load_config
from tools.reprolint.engine import lint_paths
from tools.reprolint.fixes import apply_fixes, plan_fixes
from tools.reprolint.registry import all_rules
from tools.reprolint.reporters import render_json, render_sarif, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST static analysis enforcing this repository's layering, RNG, "
            "dtype, numerical-safety, FedProxVR theory, provenance, and "
            "whole-program hygiene contracts."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--config",
        default=None,
        help="pyproject.toml holding [tool.reprolint] (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--baseline", default=None, help="override the configured baseline path"
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries no current finding consumes, then exit 0",
    )
    parser.add_argument(
        "--fail-stale-baseline",
        action="store_true",
        help="exit non-zero when the baseline holds stale entries (CI ratchet)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply safe auto-fixes (unused imports, broken __all__ entries)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the unified diff without writing files",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="origin/main",
        default=None,
        metavar="REF",
        help="lint only files changed vs REF (default origin/main when the "
        "flag is bare); the whole project is still parsed and indexed so "
        "cross-file rules stay sound",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="analyze files on N threads (default 1: serial; the report "
        "is identical either way)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule and exit"
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="show offending source lines"
    )
    return parser


def _git_lines(root: Path, *cmd: str) -> Optional[List[str]]:
    """stdout lines of one git command, or None when it fails."""
    try:
        proc = subprocess.run(
            ("git",) + cmd,
            cwd=root,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return [line for line in proc.stdout.splitlines() if line.strip()]


def changed_python_files(root: Path, ref: str) -> Optional[List[Path]]:
    """Python files changed vs ``ref`` (committed, staged, unstaged, or
    untracked), as absolute paths.  ``None`` when git can't answer —
    callers should fall back to a full run rather than lint nothing."""
    merge_base = _git_lines(root, "merge-base", ref, "HEAD")
    base = merge_base[0] if merge_base else ref
    diff = _git_lines(root, "diff", "--name-only", base)
    if diff is None:
        return None
    untracked = _git_lines(root, "ls-files", "--others", "--exclude-standard")
    names = list(diff) + list(untracked or [])
    out: List[Path] = []
    seen = set()
    for name in names:
        if not name.endswith(".py"):
            continue
        p = (root / name).resolve()
        if p.is_file() and p not in seen:
            seen.add(p)
            out.append(p)
    return out


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.dry_run and not args.fix:
        print("error: --dry-run only makes sense with --fix", file=sys.stderr)
        return 2
    if args.changed and (
        args.update_baseline or args.prune_baseline or args.fix
    ):
        print(
            "error: --changed scopes the report to a file subset and cannot "
            "combine with --update-baseline/--prune-baseline/--fix",
            file=sys.stderr,
        )
        return 2

    if args.list_rules:
        for cls in all_rules():
            print(f"{cls.rule_id}  [{cls.family:10s}] {cls.severity.value:7s} "
                  f"{cls.description}")
        return 0

    config = load_config(Path(args.config) if args.config else None)
    baseline_path = Path(args.baseline) if args.baseline else config.baseline_path()
    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2

    changed_only = None
    if args.changed:
        changed_only = changed_python_files(config.root, args.changed)
        if changed_only is None:
            print(
                f"warning: git could not diff against {args.changed!r}; "
                "falling back to a full lint",
                file=sys.stderr,
            )
        elif not changed_only:
            print(f"no Python files changed vs {args.changed}")
            return 0

    report = lint_paths(
        paths,
        config,
        baseline_path=baseline_path,
        jobs=args.jobs,
        changed_only=changed_only,
    )

    if args.update_baseline:
        entries = save_baseline(baseline_path, report.findings + report.baselined)
        print(f"baseline written: {baseline_path} ({len(entries)} fingerprint(s), "
              f"{len(report.findings) + len(report.baselined)} finding(s))")
        return 0

    if args.prune_baseline:
        if not report.stale_baseline:
            print("baseline is tight: no stale entries")
            return 0
        pruned = prune_baseline(baseline_path, report.stale_baseline)
        print(f"baseline pruned: {baseline_path} "
              f"(-{len(report.stale_baseline)} stale fingerprint(s), "
              f"{len(pruned)} remain)")
        return 0

    if args.fix:
        fixes = plan_fixes(report.findings, config)
        changed = [fix for fix in fixes if fix.changed]
        for fix in fixes:
            for finding, reason in fix.skipped:
                print(f"skip {finding.location()}: {finding.rule_id}: {reason}",
                      file=sys.stderr)
        if args.dry_run:
            for fix in changed:
                sys.stdout.write(fix.diff())
            print(f"would fix {sum(len(f.applied) for f in changed)} finding(s) "
                  f"in {len(changed)} file(s) (dry run; nothing written)")
            return 0
        written = apply_fixes(fixes)
        print(f"fixed {sum(len(f.applied) for f in changed)} finding(s) "
              f"in {written} file(s)")
        # Re-lint so the report and exit code describe the post-fix tree.
        report = lint_paths(paths, config, baseline_path=baseline_path, jobs=args.jobs)

    if args.fmt == "json":
        rendered = render_json(report)
    elif args.fmt == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = render_text(report, verbose=args.verbose)
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered + "\n", encoding="utf-8")
        print(f"report written: {out}")
    else:
        print(rendered)

    if args.fail_stale_baseline and report.stale_baseline:
        print(
            f"error: {len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'}; "
            "run --prune-baseline and commit the result",
            file=sys.stderr,
        )
        return 1
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
