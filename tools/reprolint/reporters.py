"""Text and JSON renderers for a :class:`LintReport`."""

from __future__ import annotations

import json

from tools.reprolint.engine import LintReport
from tools.reprolint.findings import SEVERITY_ORDER


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    lines = []
    for f in report.findings:
        lines.append(f"{f.location()}: {f.rule_id} {f.severity.value}: {f.message}")
        if verbose and f.source_line.strip():
            lines.append(f"    {f.source_line.strip()}")
    counts = report.counts_by_severity()
    summary = ", ".join(
        f"{counts[sev.value]} {sev.value}(s)"
        for sev in sorted(SEVERITY_ORDER, key=SEVERITY_ORDER.get)
        if counts.get(sev.value)
    )
    tail = (
        f"checked {report.files_checked} file(s): "
        + (summary if summary else "no findings")
    )
    if report.baselined:
        tail += f"; {len(report.baselined)} baselined"
    if report.suppressed_count:
        tail += f"; {report.suppressed_count} suppressed inline"
    lines.append(tail)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "files_checked": report.files_checked,
        "counts": report.counts_by_severity(),
        "baselined": len(report.baselined),
        "suppressed": report.suppressed_count,
        "exit_code": report.exit_code,
        "findings": [f.as_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2)
