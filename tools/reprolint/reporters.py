"""Text, JSON, and SARIF renderers for a :class:`LintReport`."""

from __future__ import annotations

import json

from tools.reprolint.engine import LintReport
from tools.reprolint.findings import SEVERITY_ORDER, Severity
from tools.reprolint.registry import all_rules

#: SARIF reportingConfiguration.level per reprolint severity.
_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

#: GitHub-style anchors of each family's section in docs/LINTING.md
#: (kept in sync by tests/tools/test_shapes.py::TestSarifHelp).
_FAMILY_ANCHORS = {
    "layering": "rl1xx--import-layering",
    "rng": "rl2xx--rng-discipline",
    "dtype": "rl3xx--dtype-discipline",
    "safety": "rl4xx--numerical--exception-safety",
    "theory": "rl5xx--theory-contracts-icpp20-lemma-1",
    "provenance": "rl6xx--value-provenance-dataflow",
    "hygiene": "rl7xx--whole-program-hygiene",
    "concurrency": "rl8xx--concurrency--shared-state",
    "arrays": "rl9xx--array-shapes-and-dtypes",
}


def rule_help_uri(cls) -> str:
    """docs/LINTING.md anchor for one rule's family section."""
    anchor = _FAMILY_ANCHORS.get(cls.family)
    return f"docs/LINTING.md#{anchor}" if anchor else "docs/LINTING.md"


def rule_full_description(cls) -> str:
    """First docstring paragraph of the rule class (one line), falling
    back to the short description."""
    doc = cls.__doc__ or ""
    para_lines = []
    for line in doc.strip().splitlines():
        if not line.strip():
            break
        para_lines.append(line.strip())
    return " ".join(para_lines) if para_lines else cls.description


def render_text(report: LintReport, *, verbose: bool = False) -> str:
    lines = []
    for f in report.findings:
        lines.append(f"{f.location()}: {f.rule_id} {f.severity.value}: {f.message}")
        if verbose and f.source_line.strip():
            lines.append(f"    {f.source_line.strip()}")
    counts = report.counts_by_severity()
    summary = ", ".join(
        f"{counts[sev.value]} {sev.value}(s)"
        for sev in sorted(SEVERITY_ORDER, key=SEVERITY_ORDER.get)
        if counts.get(sev.value)
    )
    tail = (
        f"checked {report.files_checked} file(s): "
        + (summary if summary else "no findings")
    )
    if report.baselined:
        tail += f"; {len(report.baselined)} baselined"
    if report.suppressed_count:
        tail += f"; {report.suppressed_count} suppressed inline"
    if report.stale_baseline:
        tail += (
            f"; {len(report.stale_baseline)} stale baseline entr"
            f"{'y' if len(report.stale_baseline) == 1 else 'ies'} "
            "(--prune-baseline removes them)"
        )
    lines.append(tail)
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    payload = {
        "files_checked": report.files_checked,
        "counts": report.counts_by_severity(),
        "baselined": len(report.baselined),
        "suppressed": report.suppressed_count,
        "exit_code": report.exit_code,
        "stale_baseline": dict(report.stale_baseline),
        "findings": [f.as_dict() for f in report.findings],
    }
    return json.dumps(payload, indent=2)


def render_sarif(report: LintReport) -> str:
    """SARIF 2.1.0 log for code-scanning upload.

    Baselined and suppressed findings are excluded (matching the text
    and JSON reporters); severities map error/warning/``note``.
    """
    from tools.reprolint import __version__

    rules = all_rules()
    rule_index = {cls.rule_id: i for i, cls in enumerate(rules)}
    results = []
    for f in report.findings:
        results.append(
            {
                "ruleId": f.rule_id,
                "ruleIndex": rule_index.get(f.rule_id, -1),
                "level": _SARIF_LEVEL[f.severity],
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
                "partialFingerprints": {"reprolint/v1": f.fingerprint()},
            }
        )
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": __version__,
                        "informationUri": "docs/LINTING.md",
                        "rules": [
                            {
                                "id": cls.rule_id,
                                "shortDescription": {"text": cls.description},
                                "fullDescription": {
                                    "text": rule_full_description(cls)
                                },
                                "helpUri": rule_help_uri(cls),
                                "defaultConfiguration": {
                                    "level": _SARIF_LEVEL[cls.severity]
                                },
                            }
                            for cls in rules
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
