"""Finding and severity primitives shared by every reprolint rule."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional


class Severity(str, Enum):
    """How a finding affects the exit code.

    ``ERROR`` and ``WARNING`` gate (non-zero exit unless baselined or
    suppressed); ``INFO`` is advisory and never fails a run.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def gates(self) -> bool:
        return self in (Severity.ERROR, Severity.WARNING)


#: Ordering used when sorting reports: most severe first.
SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.INFO: 2}


@dataclass
class Finding:
    """One rule violation at a concrete source location."""

    rule_id: str
    message: str
    path: str
    line: int
    col: int = 0
    severity: Severity = Severity.ERROR
    source_line: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline.

        Keyed on (path, rule, source text) so unrelated edits that shift
        line numbers do not invalidate baseline entries; identical
        violations on distinct lines are disambiguated by count.
        """
        text = self.source_line.strip()
        digest = hashlib.sha1(text.encode("utf-8")).hexdigest()[:12]
        return f"{self.path}::{self.rule_id}::{digest}"

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out


def sort_findings(findings) -> list:
    """Stable report order: path, line, rule."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def parse_severity(value: str, default: Optional[Severity] = None) -> Severity:
    try:
        return Severity(value.lower())
    except ValueError:
        if default is not None:
            return default
        raise
