"""Whole-program project index, built in one pass over the lint targets.

The index gives rules the cross-file facts a single ``ast.walk`` cannot
see: which module defines/exports which names, who imports what (the
resolved import graph, relative imports included), which exported names
are actually consumed anywhere in the project, and a best-effort call
graph over project-defined functions.

Only files with a module identity (under ``<root>/<src_root>``) enter
the graph; tools/tests are parsed and linted but have no dotted name to
hang edges on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from tools.reprolint.asthelpers import (
    attribute_chain,
    callable_bare_name,
    submission_method,
)


@dataclass
class ImportBinding:
    """One local name introduced by an import statement."""

    binding: str  # the local name bound in this module
    module: str  # resolved source module (dotted)
    name: Optional[str]  # the imported member, None for whole-module imports
    lineno: int


@dataclass(frozen=True)
class SubmissionEdge:
    """One executor hand-off: ``module`` submits ``callee`` at ``lineno``.

    ``callee`` is the qualified ``module.func`` when the callable resolves
    to a project definition or a ``from``-import, otherwise the bare name
    (bound methods, lambdas, dynamically built callables).
    """

    module: str
    callee: str
    bare_name: str
    method: str  # "submit" | "map"
    lineno: int


@dataclass
class ModuleInfo:
    """Symbol table and reference summary of one project module."""

    name: str
    path: Path
    display_path: str
    tree: ast.AST
    #: raw source lines — the shape pass reads ``# shape:`` annotations.
    lines: List[str] = field(default_factory=list)
    defined: Dict[str, int] = field(default_factory=dict)
    imports: List[ImportBinding] = field(default_factory=list)
    exports: List[Tuple[str, int]] = field(default_factory=list)
    export_stmt: Optional[ast.stmt] = None
    used_names: Set[str] = field(default_factory=set)
    #: ``(root_binding, attr)`` pairs for every two-level attribute access,
    #: used to resolve ``module.member`` references.
    attribute_uses: Set[Tuple[str, str]] = field(default_factory=set)
    #: raw ``<pool>.submit/map`` sites: (callable node, method, lineno);
    #: resolved into :class:`SubmissionEdge` objects during finalize.
    submission_calls: List[Tuple[ast.AST, str, int]] = field(
        default_factory=list
    )

    @property
    def is_package_init(self) -> bool:
        return self.path.name == "__init__.py"

    def binding_lines(self) -> Dict[str, int]:
        """Every top-level binding (defs + imports) -> line introduced."""
        out = dict(self.defined)
        for imp in self.imports:
            out.setdefault(imp.binding, imp.lineno)
        return out


def _resolve_relative(module: str, is_package: bool, level: int, target: str) -> str:
    """Resolve ``from ...target import x`` inside ``module``."""
    parts = module.split(".")
    # A package's __init__ resolves level 1 against itself.
    anchor = parts if is_package else parts[:-1]
    if level > 1:
        anchor = anchor[: len(anchor) - (level - 1)]
    base = ".".join(anchor)
    if target:
        return f"{base}.{target}" if base else target
    return base


def _collect(info: ModuleInfo) -> None:
    tree = info.tree
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            info.defined.setdefault(node.name, node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    info.defined.setdefault(target.id, node.lineno)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            info.defined.setdefault(elt.id, node.lineno)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            info.defined.setdefault(node.target.id, node.lineno)

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                binding = alias.asname or alias.name.split(".")[0]
                info.imports.append(
                    ImportBinding(binding, alias.name, None, node.lineno)
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                source = _resolve_relative(
                    info.name, info.is_package_init, node.level, node.module or ""
                )
            else:
                source = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                info.imports.append(
                    ImportBinding(
                        alias.asname or alias.name, source, alias.name, node.lineno
                    )
                )
        elif isinstance(node, ast.Call):
            method = submission_method(node)
            if method is not None:
                info.submission_calls.append(
                    (node.args[0], method, node.lineno)
                )
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            info.used_names.add(node.id)
        elif isinstance(node, ast.Attribute):
            chain = attribute_chain(node)
            if chain and len(chain) >= 2:
                info.attribute_uses.add((chain[0], chain[1]))
                # ``import a.b.c`` + use ``a.b.c.f``: record the dotted
                # module prefix as well so deep imports resolve.
                for i in range(2, len(chain)):
                    info.attribute_uses.add((".".join(chain[:i]), chain[i]))

    # __all__: the *last* top-level assignment wins, mirroring runtime.
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            info.export_stmt = node
            info.exports = []
            if isinstance(node.value, (ast.List, ast.Tuple, ast.Set)):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        info.exports.append((elt.value, elt.lineno))


class ProjectIndex:
    """Symbol tables, import graph, export usage, and call graph."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}

    @classmethod
    def build(
        cls, parsed: List[Tuple[Path, str, str, ast.AST, List[str]]]
    ) -> "ProjectIndex":
        """Build from ``(path, display_path, module_name, tree, lines)``."""
        index = cls()
        for path, display, module_name, tree, lines in parsed:
            info = ModuleInfo(
                name=module_name,
                path=path,
                display_path=display,
                tree=tree,
                lines=lines,
            )
            _collect(info)
            index.modules[module_name] = info
        index._finalize()
        return index

    def _finalize(self) -> None:
        self._import_graph: Dict[str, Set[str]] = {}
        self._import_lines: Dict[Tuple[str, str], int] = {}
        for name, info in self.modules.items():
            edges: Set[str] = set()
            for imp in info.imports:
                targets = []
                # ``from pkg import member`` where member is a submodule:
                # the dependence is on the submodule itself (Python >= 3.7
                # resolves it through sys.modules even mid-cycle), so the
                # edge skips the package init — otherwise every package
                # whose __init__ re-exports submodule names would be in a
                # structural cycle with all of them.
                dotted = f"{imp.module}.{imp.name}" if imp.name is not None else None
                if dotted is not None and dotted in self.modules:
                    targets.append(dotted)
                elif imp.module in self.modules:
                    targets.append(imp.module)
                for target in targets:
                    if target != name:
                        edges.add(target)
                        self._import_lines.setdefault((name, target), imp.lineno)
            self._import_graph[name] = edges

        # Which (module, exported name) pairs are consumed elsewhere.
        self._consumed: Set[Tuple[str, str]] = set()
        for consumer, info in self.modules.items():
            binding_to_module = {
                imp.binding: imp.module
                for imp in info.imports
                if imp.name is None or f"{imp.module}.{imp.name}" in self.modules
            }
            for imp in info.imports:
                if imp.name is not None:
                    self._consumed.add((imp.module, imp.name))
            for root, attr in info.attribute_uses:
                target = binding_to_module.get(root, root)
                if target in self.modules:
                    self._consumed.add((target, attr))

        # Executor hand-offs: which callables run on pool workers.
        self._submission_edges: List[SubmissionEdge] = []
        for name, info in self.modules.items():
            from_imports = {
                imp.binding: f"{imp.module}.{imp.name}"
                for imp in info.imports
                if imp.name is not None
            }
            module_imports = {
                imp.binding: imp.module
                for imp in info.imports
                if imp.name is None
            }
            for callable_node, method, lineno in info.submission_calls:
                bare = callable_bare_name(callable_node) or "<unknown>"
                callee = (
                    self._resolve_call(
                        callable_node, name, info, from_imports, module_imports
                    )
                    or bare
                )
                self._submission_edges.append(
                    SubmissionEdge(name, callee, bare, method, lineno)
                )

    # -- import graph ------------------------------------------------------

    def import_graph(self) -> Dict[str, Set[str]]:
        return {k: set(v) for k, v in self._import_graph.items()}

    def import_line(self, importer: str, imported: str) -> int:
        return self._import_lines.get((importer, imported), 1)

    def import_cycles(self) -> List[List[str]]:
        """Elementary import cycles, one per strongly connected component.

        Each cycle is reported as the SCC's module list, rotated to start
        from its lexicographically-smallest member (stable across runs).
        """
        sccs = _tarjan(self._import_graph)
        cycles: List[List[str]] = []
        for scc in sccs:
            if len(scc) > 1 or (
                len(scc) == 1 and scc[0] in self._import_graph.get(scc[0], set())
            ):
                anchor = min(scc)
                ordered = self._order_cycle(scc, anchor)
                cycles.append(ordered)
        return sorted(cycles)

    def _order_cycle(self, scc: List[str], anchor: str) -> List[str]:
        """Walk edges inside the SCC from ``anchor`` to present a readable path."""
        members = set(scc)
        path = [anchor]
        seen = {anchor}
        current = anchor
        while True:
            nxt = sorted(
                n for n in self._import_graph.get(current, set()) if n in members
            )
            step = next((n for n in nxt if n not in seen), None)
            if step is None:
                break
            path.append(step)
            seen.add(step)
            current = step
        return path

    # -- submission edges --------------------------------------------------

    def submission_edges(self) -> List[SubmissionEdge]:
        """Every ``<pool>.submit/map`` hand-off seen across the project."""
        return list(self._submission_edges)

    def submitted_callables(self) -> Set[str]:
        """Names known to run on executor workers somewhere in the project.

        Contains both qualified (``module.func``) and bare names; bound
        methods only contribute their bare attribute name, so membership
        checks on bare names over-approximate (by design — RL804 treats a
        name collision as a reason to look, not proof of a defect).
        """
        out: Set[str] = set()
        for edge in self._submission_edges:
            out.add(edge.callee)
            out.add(edge.bare_name)
        return out

    # -- exports -----------------------------------------------------------

    def export_consumed(self, module: str, name: str) -> bool:
        return (module, name) in self._consumed

    # -- call graph --------------------------------------------------------

    def call_graph(self) -> Dict[str, Set[str]]:
        """Best-effort ``module.func -> {qualified callee}`` edges.

        Resolves direct-name calls to local defs or ``from``-imported
        functions, ``mod.func()`` attribute calls through whole-module
        imports, and ``self.method()`` / ``cls.method()`` calls to
        sibling methods of the *same* class (keyed, like every function,
        as ``module.method`` — the class name is not part of the key).
        Other dynamic dispatch and aliases through data structures are
        out of scope — the graph under-approximates.  Memoized: the
        trees are immutable after the parse phase, and hot_functions()
        runs per file, so rebuilding per call would be quadratic.
        """
        cached = getattr(self, "_call_graph", None)
        if cached is not None:
            return cached
        graph: Dict[str, Set[str]] = {}
        for name, info in self.modules.items():
            from_imports = {
                imp.binding: f"{imp.module}.{imp.name}"
                for imp in info.imports
                if imp.name is not None
            }
            module_imports = {
                imp.binding: imp.module for imp in info.imports if imp.name is None
            }
            # Sibling-method sets: id(method node) -> names its class defines.
            siblings: Dict[int, Set[str]] = {}
            for cls_node in ast.walk(info.tree):
                if not isinstance(cls_node, ast.ClassDef):
                    continue
                names = {
                    m.name
                    for m in cls_node.body
                    if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                for m in cls_node.body:
                    if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        siblings[id(m)] = names
            for node in ast.walk(info.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                caller = f"{name}.{node.name}"
                edges = graph.setdefault(caller, set())
                own_methods = siblings.get(id(node), set())
                for sub in ast.walk(node):
                    if not isinstance(sub, ast.Call):
                        continue
                    callee = self._resolve_call(
                        sub.func, name, info, from_imports, module_imports
                    )
                    if callee is None and isinstance(sub.func, ast.Attribute):
                        recv = sub.func.value
                        if (
                            isinstance(recv, ast.Name)
                            and recv.id in ("self", "cls")
                            and sub.func.attr in own_methods
                        ):
                            callee = f"{name}.{sub.func.attr}"
                    if callee is not None:
                        edges.add(callee)
        # Atomic attribute write: safe under --jobs (worst case two
        # threads compute the same graph and one wins).
        self._call_graph = graph
        return graph

    def hot_functions(self, roots: List[str]) -> Set[str]:
        """Call-graph closure of the configured hot-path roots.

        ``roots`` entries may be bare (``solve_cohort``) or qualified
        (``repro.fl.executor.solve_cohort``).  Bare roots seed every
        function whose unqualified name matches.  Returns both qualified
        keys and their bare names so files *without* a module identity
        (tools/tests) can still match by function name.
        """
        graph = self.call_graph()
        seeds: Set[str] = set()
        root_set = set(roots)
        for qual in graph:
            bare = qual.rsplit(".", 1)[-1]
            if qual in root_set or bare in root_set:
                seeds.add(qual)
        # Roots that never appear as callers still count by name.
        closure: Set[str] = set(seeds)
        work = list(seeds)
        while work:
            current = work.pop()
            for callee in graph.get(current, ()):
                if callee not in closure:
                    closure.add(callee)
                    work.append(callee)
        out = set(root_set) | closure
        out |= {q.rsplit(".", 1)[-1] for q in closure}
        return out

    def shape_summaries(self):
        """``# shape:``-annotated function summaries across the project.

        Returns ``(by_qualname, by_method_name)`` dicts of
        :class:`tools.reprolint.shapes.FunctionSummary`.  Memoized; the
        import lives here (not at module top) to keep projectindex free
        of a static dependency on the shapes domain.
        """
        cached = getattr(self, "_shape_summaries", None)
        if cached is not None:
            return cached
        from tools.reprolint.shapes import collect_module_summaries

        by_qual: Dict[str, object] = {}
        by_method: Dict[str, object] = {}
        for name, info in self.modules.items():
            local = collect_module_summaries(info.tree, info.lines, name)
            for key, summary in local.items():
                by_qual.setdefault(key, summary)
            for summary in local.values():
                if summary.is_method:
                    by_method.setdefault(
                        summary.qualname.rsplit(".", 1)[-1], summary
                    )
        # Dict assignment is atomic; a duplicate rebuild under --jobs is
        # idempotent, so no lock is needed.
        self._shape_summaries = (by_qual, by_method)
        return self._shape_summaries

    def _resolve_call(
        self,
        func: ast.AST,
        module: str,
        info: ModuleInfo,
        from_imports: Dict[str, str],
        module_imports: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(func, ast.Name):
            if func.id in from_imports:
                return from_imports[func.id]
            if func.id in info.defined:
                return f"{module}.{func.id}"
            return None
        chain = attribute_chain(func)
        if chain and len(chain) >= 2:
            root = module_imports.get(chain[0])
            if root is not None:
                return ".".join([root] + chain[1:])
        return None


def _tarjan(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's strongly-connected components (iterative)."""
    index_counter = [0]
    stack: List[str] = []
    lowlink: Dict[str, int] = {}
    index: Dict[str, int] = {}
    on_stack: Dict[str, bool] = {}
    result: List[List[str]] = []

    for root in sorted(graph):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_i = work[-1]
            if child_i == 0:
                index[node] = lowlink[node] = index_counter[0]
                index_counter[0] += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            children = sorted(graph.get(node, set()))
            for i in range(child_i, len(children)):
                child = children[i]
                if child not in graph:
                    continue
                if child not in index:
                    work[-1] = (node, i + 1)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    scc.append(w)
                    if w == node:
                        break
                result.append(sorted(scc))
    return result
