"""Macro-benchmark for the committed performance trajectory.

Runs the paper's Fig. 2 convex workload (MLR on the Fashion-MNIST-like
federation) once per executor and algorithm, measures wall time, checks
that the batched cohort path reproduces the sequential bits exactly,
and writes a machine-readable artifact::

    PYTHONPATH=src python -m tools.perfbench --output BENCH_pr6.json

The artifact's *speedup ratios* (sequential / batched wall time) are the
committed perf trajectory: they are roughly machine-independent — both
paths run the same FLOPs through the same BLAS — so
``tools/perfgate.py`` can gate regressions on any host.  Absolute
seconds are recorded for context only.

``--scale`` shrinks/grows the workload like the benchmark suite's
``REPRO_BENCH_SCALE`` (devices floor at 8 so a cohort is always worth
stacking); ``--hotspots`` additionally records the top self-time spans
of one traced batched run.

``--client-scaling`` adds the massive-cohort axis (ISSUE 7): for each
registered-population size ``N`` it builds a lazy synthetic federation,
runs ``K`` participants per round through the virtual-client path, and
records setup wall time, tracemalloc peak memory, and per-round wall
time.  Because only packed metadata and the ``K`` hydrated shards are
ever resident, all three should stay nearly flat as ``N`` grows —
``tools/perfgate.py`` gates the max-N/min-N ratios.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import platform
import sys
import time
import tracemalloc
from dataclasses import asdict
from typing import Dict, List, Optional

import numpy as np

from repro.core.algorithms import make_local_solver
from repro.datasets import make_fashion, make_synthetic
from repro.fl.delays import make_uniform_delays
from repro.fl.executor import SequentialExecutor
from repro.fl.runner import (
    FederatedRunConfig,
    build_client_pool,
    resolve_smoothness,
    run_federated,
)
from repro.fl.server import FederatedServer
from repro.models import MultinomialLogisticModel
from repro.utils.rng import spawn_seeds

SCHEMA = "repro.perfbench/v1"

#: default registered-population sizes of the --client-scaling axis
SCALING_DEVICES = (100, 10_000, 100_000)
#: participants per round on the scaling axis (K of the O(K) claim)
SCALING_PARTICIPANTS = 16

#: (algorithm, mu, solver_kwargs) of the Fig. 2 comparison.  The
#: variance-reduced solvers skip the optional final-gradient audit
#: (``evaluate_final=False``) for the same reason the bench evaluates
#: only once: the trajectory measures local-solve throughput, and the
#: audit is an identical per-client pass in both executors.  The
#: equivalence suite keeps the audit path's bit-identity covered.
ALGOS = [
    ("fedavg", 0.0, {}),
    ("fedproxvr-svrg", 0.1, {"evaluate_final": False}),
    ("fedproxvr-sarah", 0.1, {"evaluate_final": False}),
]


def scaled(base: int, scale: float, floor: int = 1) -> int:
    return max(floor, int(round(base * scale)))


def build_workload(args) -> Dict[str, object]:
    """The fixed macro-bench geometry: fig2's (beta=7, tau=20) panel.

    The larger-``tau`` fig2 setting is the one whose per-round cost is
    dominated by the local inner loops — exactly the work the batched
    cohort path vectorizes — so it is the committed trajectory's
    workload (the smaller ``tau=10`` panel measures the same code with
    a bigger fixed-cost share).
    """
    return {
        "dataset": "fashion",
        "num_devices": args.devices or scaled(20, args.scale, floor=8),
        "num_samples": args.samples or scaled(2400, args.scale, floor=240),
        "labels_per_device": 2,
        "min_size": 37,
        "max_size": 270,
        "dataset_seed": 0,
        "num_rounds": args.rounds or scaled(30, args.scale, floor=3),
        "num_local_steps": 20,
        "beta": 7.0,
        "batch_size": 32,
        "run_seed": 1,
    }


def make_dataset(workload: Dict[str, object]):
    return make_fashion(
        num_devices=workload["num_devices"],
        num_samples=workload["num_samples"],
        labels_per_device=workload["labels_per_device"],
        min_size=workload["min_size"],
        max_size=workload["max_size"],
        seed=workload["dataset_seed"],
    )


def run_workload(
    workload: Dict[str, object],
    algorithm: str,
    mu: float,
    executor: str,
    *,
    dataset=None,
    solver_kwargs: Optional[Dict[str, object]] = None,
    repeat: int = 1,
):
    """Best-of-``repeat`` wall time for one (algorithm, executor) cell.

    Every repetition runs the identical seeded experiment, so the final
    model is the same each time; the minimum wall time is the standard
    noise-robust estimate of the cell's cost.
    """
    if dataset is None:
        dataset = make_dataset(workload)

    def factory():
        return MultinomialLogisticModel(dataset.num_features, dataset.num_classes)

    config = FederatedRunConfig(
        algorithm=algorithm,
        num_rounds=workload["num_rounds"],
        num_local_steps=workload["num_local_steps"],
        beta=workload["beta"],
        mu=mu,
        batch_size=workload["batch_size"],
        seed=workload["run_seed"],
        # Evaluate once at the end: the trajectory measures local-solve
        # throughput, not the shared evaluation pass.
        eval_every=workload["num_rounds"],
        executor=executor,
        solver_kwargs=dict(solver_kwargs or {}),
    )
    seconds = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        history, w_final = run_federated(dataset, factory, config)
        seconds = min(seconds, time.perf_counter() - start)
    return seconds, history, w_final


def capture_hotspots(
    workload,
    algorithm: str,
    mu: float,
    solver_kwargs=None,
    k: int = 8,
    executor: str = "batched",
) -> List[dict]:
    """Top self-time spans of one traced run (default: batched)."""
    from repro.obs import telemetry
    from repro.obs.report import top_hotspots
    from repro.obs.sinks import InMemorySink

    sink = InMemorySink()
    telemetry.configure([sink])
    try:
        run_workload(workload, algorithm, mu, executor, solver_kwargs=solver_kwargs)
    finally:
        telemetry.shutdown()
    return top_hotspots(sink.events, k=k)


def emit_run_ledger(
    path: str,
    workload: Dict[str, object],
    algorithm: str,
    executor: str,
    seconds: float,
    history,
    hotspots: Optional[List[dict]] = None,
) -> None:
    """Write one macro-bench cell as a ``repro.ledger/v1`` file.

    The BENCH_*.json artifact commits only the speedup *ratios*; the
    ledger is the drill-down behind them — the run's resolved config,
    its per-round records, and (when captured) the span self-time
    hotspots that ``repro obs-diff`` aligns across executors or
    commits to explain a gate failure.
    """
    from repro.obs import RunLedger

    ledger = RunLedger(path)
    ledger.write_manifest(
        dict(history.config),
        attrs={
            "perfbench": True,
            "algorithm": algorithm,
            "executor": executor,
            "wall_seconds": round(seconds, 4),
            "workload": dict(workload),
        },
    )
    for rec in history.records:
        ledger.commit_round(
            rec.round_index, asdict(rec), sim_time=rec.sim_time
        )
    if hotspots:
        ledger.hotspots(
            [
                {
                    "name": h["name"],
                    "self_seconds": h["self"],
                    "total_seconds": h["total"],
                    "count": h["count"],
                }
                for h in hotspots
            ],
            label=f"{algorithm}/{executor}",
        )
    ledger.close("completed")


def scaling_cell(
    num_devices: int,
    participants: int,
    *,
    rounds: int = 2,
    algorithm: str = "fedproxvr-svrg",
    mu: float = 0.1,
) -> Dict[str, object]:
    """One point on the client-scaling axis.

    Mirrors ``run_federated``'s construction sequence so the timed
    *setup* phase is exactly what a user run pays before round 1:
    dataset registration, smoothness probe, solver/pool/server build,
    and ``w0`` initialization.  ``tracemalloc`` peak covers setup plus
    the measured rounds — the resident-footprint number that must stay
    sublinear in ``N``.
    """
    participants = min(participants, num_devices)
    tracemalloc.start()
    try:
        t0 = time.perf_counter()
        dataset = make_synthetic(
            1.0,
            1.0,
            num_devices=num_devices,
            num_features=60,
            num_classes=10,
            min_size=100,
            max_size=400,
            seed=0,
            lazy=True,
        )
        config = FederatedRunConfig(
            algorithm=algorithm,
            num_rounds=rounds,
            num_local_steps=10,
            beta=5.0,
            mu=mu,
            batch_size=32,
            seed=1,
            client_fraction=participants / num_devices,
            eval_every=rounds,
            max_eval_clients=participants,
        )
        init_seed, server_seed = (
            s.entropy for s in spawn_seeds(config.seed, 2)
        )
        probe_model = MultinomialLogisticModel(
            dataset.num_features, dataset.num_classes
        )
        L = resolve_smoothness(
            probe_model,
            dataset,
            seed=config.seed,
            probe_devices=config.smoothness_probe_devices,
        )
        solver = make_local_solver(
            config.algorithm,
            step_size=1.0 / (config.beta * L),
            num_steps=config.num_local_steps,
            batch_size=config.batch_size,
            mu=config.mu,
        )
        pool = build_client_pool(
            dataset,
            lambda: MultinomialLogisticModel(
                dataset.num_features, dataset.num_classes
            ),
            solver,
            share_model=True,
            seed=config.seed,
            virtual=True,
            client_fraction=config.client_fraction,
        )
        server = FederatedServer(
            pool,
            eval_model=probe_model,
            executor=SequentialExecutor(),
            delay_model=make_uniform_delays(num_devices),
            client_fraction=config.client_fraction,
            seed=server_seed,
            eval_client_cap=config.max_eval_clients,
        )
        w0 = probe_model.init_parameters(init_seed)
        setup_seconds = time.perf_counter() - t0

        t1 = time.perf_counter()
        history, _ = server.train(
            w0, rounds, algorithm_name=algorithm, eval_every=rounds
        )
        round_seconds = (time.perf_counter() - t1) / rounds
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return {
        "registered_clients": num_devices,
        "participants": participants,
        "rounds": rounds,
        "setup_seconds": round(setup_seconds, 4),
        "per_round_seconds": round(round_seconds, 4),
        "peak_mem_mb": round(peak / 2**20, 3),
        "hydrations": pool.hydration_count,
        "lru_hits": pool.hit_count,
        "final_loss": round(history.records[-1].train_loss, 6),
    }


def run_client_scaling(
    devices: List[int], participants: int, *, rounds: int = 2, repeat: int = 1
) -> Dict[str, object]:
    """The client-scaling axis: one cell per registered-population size.

    ``repeat`` keeps the best (minimum) wall times per cell; memory is
    taken from the first repetition (allocation peaks are deterministic).
    """
    cells: List[Dict[str, object]] = []
    for n in devices:
        best: Optional[Dict[str, object]] = None
        for _ in range(max(1, repeat)):
            cell = scaling_cell(n, participants, rounds=rounds)
            if best is None:
                best = cell
            else:
                best["setup_seconds"] = min(
                    best["setup_seconds"], cell["setup_seconds"]
                )
                best["per_round_seconds"] = min(
                    best["per_round_seconds"], cell["per_round_seconds"]
                )
        assert best is not None
        cells.append(best)
        print(
            f"N={best['registered_clients']:>7d} K={best['participants']:<3d} "
            f"setup {best['setup_seconds']:7.3f}s   "
            f"round {best['per_round_seconds']:7.3f}s   "
            f"peak {best['peak_mem_mb']:8.2f} MiB   "
            f"hydrations {best['hydrations']}"
        )
    return {
        "participants": participants,
        "rounds": rounds,
        "measurement": {"repeat": repeat, "memory": "tracemalloc-peak"},
        "cells": cells,
    }


def run_bench(args) -> Dict[str, object]:
    workload = build_workload(args)
    payload: Dict[str, object] = {
        "schema": SCHEMA,
        "workload": workload,
        "host": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpu_count": multiprocessing.cpu_count(),
            "machine": platform.machine(),
        },
        "measurement": {"repeat": args.repeat, "metric": "min-wall-seconds"},
    }
    if not args.skip_macro:
        payload.update(run_macro(workload, args))
    if args.client_scaling:
        payload["client_scaling"] = run_client_scaling(
            args.scaling_devices or list(SCALING_DEVICES),
            args.scaling_participants,
            rounds=args.scaling_rounds,
            repeat=args.repeat,
        )
    return payload


def run_macro(workload: Dict[str, object], args) -> Dict[str, object]:
    dataset = make_dataset(workload)
    results: Dict[str, dict] = {}
    ledger_dir = getattr(args, "ledger_dir", None)
    if ledger_dir:
        os.makedirs(ledger_dir, exist_ok=True)
    for algorithm, mu, solver_kwargs in ALGOS:
        seq_seconds, h_seq, w_seq = run_workload(
            workload, algorithm, mu, "sequential",
            dataset=dataset, solver_kwargs=solver_kwargs, repeat=args.repeat,
        )
        bat_seconds, h_bat, w_bat = run_workload(
            workload, algorithm, mu, "batched",
            dataset=dataset, solver_kwargs=solver_kwargs, repeat=args.repeat,
        )
        identical = bool(np.array_equal(w_seq, w_bat))
        results[algorithm] = {
            "sequential_seconds": round(seq_seconds, 4),
            "batched_seconds": round(bat_seconds, 4),
            "speedup": round(seq_seconds / bat_seconds, 4),
            "identical": identical,
        }
        print(
            f"{algorithm:18s} sequential {seq_seconds:7.2f}s   "
            f"batched {bat_seconds:7.2f}s   speedup {seq_seconds / bat_seconds:5.2f}x"
            f"   bit-identical: {identical}"
        )
        if ledger_dir:
            # One extra traced run per cell pays for the drill-down:
            # each ledger carries the cell's hotspot profile so
            # ``repro obs-diff`` can attribute a speedup (or a gate
            # failure) to specific spans, not just the total.
            for executor, seconds, history in (
                ("sequential", seq_seconds, h_seq),
                ("batched", bat_seconds, h_bat),
            ):
                spots = capture_hotspots(
                    workload, algorithm, mu, solver_kwargs, executor=executor
                )
                path = os.path.join(
                    ledger_dir, f"{algorithm}.{executor}.ledger.jsonl"
                )
                emit_run_ledger(
                    path, workload, algorithm, executor, seconds, history,
                    hotspots=spots,
                )
                print(f"  ledger: {path}")
    speedups = [r["speedup"] for r in results.values()]
    section: Dict[str, object] = {
        "results": results,
        "min_speedup": round(min(speedups), 4),
        "geomean_speedup": round(float(np.exp(np.mean(np.log(speedups)))), 4),
    }
    if args.hotspots:
        algorithm, mu, solver_kwargs = ALGOS[-1]
        section["hotspots"] = capture_hotspots(
            workload, algorithm, mu, solver_kwargs
        )
    return section


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (1.0 = the committed fig2 geometry)")
    parser.add_argument("--devices", type=int, default=None,
                        help="override device count (tests)")
    parser.add_argument("--samples", type=int, default=None,
                        help="override global corpus size (tests)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override round count (tests)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per cell; wall time is the best "
                             "of these (default 3)")
    parser.add_argument("--output", "-o", default=None,
                        help="write the JSON artifact here")
    parser.add_argument("--hotspots", action="store_true",
                        help="record top self-time spans of a traced batched run")
    parser.add_argument("--ledger-dir", default=None,
                        help="also emit one repro.ledger/v1 file per "
                             "(algorithm, executor) macro cell into this "
                             "directory (config manifest, round records, "
                             "hotspot snapshot) for repro obs-diff")
    parser.add_argument("--client-scaling", action="store_true",
                        help="also run the massive-cohort scaling axis "
                             "(virtual clients, lazy shards)")
    parser.add_argument("--scaling-devices", type=int, nargs="+", default=None,
                        help=f"registered-population sizes for the scaling "
                             f"axis (default {list(SCALING_DEVICES)})")
    parser.add_argument("--scaling-participants", type=int,
                        default=SCALING_PARTICIPANTS,
                        help="participants per round on the scaling axis "
                             f"(default {SCALING_PARTICIPANTS})")
    parser.add_argument("--scaling-rounds", type=int, default=2,
                        help="measured rounds per scaling cell (default 2)")
    parser.add_argument("--skip-macro", action="store_true",
                        help="skip the fig2 macro bench (scaling-only artifact)")
    args = parser.parse_args(argv)
    if args.skip_macro and not args.client_scaling:
        parser.error("--skip-macro requires --client-scaling")

    payload = run_bench(args)
    if "min_speedup" in payload:
        print(f"min speedup {payload['min_speedup']}x, "
              f"geomean {payload['geomean_speedup']}x")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
