"""Save / load federated datasets as ``.npz`` archives.

Generators are deterministic given a seed, but experiments often want to
pin the *exact* byte-level dataset (e.g. to share across machines or to
decouple dataset generation cost from benchmark timing).  The archive
layout is flat: per-device arrays keyed ``dev{n}_{Xtr,ytr,Xte,yte}``
plus a JSON metadata blob.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.base import DeviceData, FederatedDataset
from repro.exceptions import ConfigurationError

_FORMAT_VERSION = 1


def save_federated_dataset(
    dataset: FederatedDataset, path: Union[str, Path]
) -> Path:
    """Write a dataset to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays = {}
    for i, dev in enumerate(dataset.devices):
        arrays[f"dev{i}_Xtr"] = dev.X_train
        arrays[f"dev{i}_ytr"] = dev.y_train
        arrays[f"dev{i}_Xte"] = dev.X_test
        arrays[f"dev{i}_yte"] = dev.y_test
    meta = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "num_features": dataset.num_features,
        "num_classes": dataset.num_classes,
        "num_devices": dataset.num_devices,
        "device_ids": [dev.device_id for dev in dataset.devices],
        "extra": {k: _jsonable(v) for k, v in dataset.extra.items()},
    }
    arrays["meta_json"] = np.array(json.dumps(meta))
    np.savez_compressed(path, **arrays)
    return path


def _jsonable(value):
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    return value


def load_federated_dataset(path: Union[str, Path]) -> FederatedDataset:
    """Read a dataset previously written by :func:`save_federated_dataset`."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no dataset archive at {path}")
    with np.load(path, allow_pickle=False) as archive:
        if "meta_json" not in archive:
            raise ConfigurationError(f"{path} is not a repro dataset archive")
        meta = json.loads(str(archive["meta_json"]))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported dataset format version {meta.get('format_version')}"
            )
        devices = []
        for i, device_id in enumerate(meta["device_ids"]):
            devices.append(
                DeviceData(
                    int(device_id),
                    archive[f"dev{i}_Xtr"],
                    archive[f"dev{i}_ytr"],
                    archive[f"dev{i}_Xte"],
                    archive[f"dev{i}_yte"],
                )
            )
    return FederatedDataset(
        devices=devices,
        num_features=int(meta["num_features"]),
        num_classes=int(meta["num_classes"]),
        name=str(meta["name"]),
        extra=dict(meta.get("extra", {})),
    )
