"""The ``Synthetic(alpha, beta)`` heterogeneous dataset.

Follows the generator of Li et al. (FedProx) referenced by the paper as
"[16, 26]": for device ``k`` the labels come from a device-specific
softmax model ``y = argmax softmax(W_k x + b_k)`` and the inputs from a
device-specific Gaussian.

* ``alpha`` controls *model* heterogeneity: ``W_k, b_k ~ N(u_k, 1)``
  with ``u_k ~ N(0, alpha)``.
* ``beta`` controls *data* heterogeneity: ``x ~ N(v_k, Sigma)`` with
  ``v_k[j] ~ N(B_k, 1)``, ``B_k ~ N(0, beta)`` and the fixed diagonal
  covariance ``Sigma_jj = j^{-1.2}``.

``alpha = beta = 0`` still yields non-IID data (each device keeps its
own ``W_k``); pass ``iid=True`` for the fully-IID control where one
shared ``(W, b, v)`` generates every device's data.

``lazy=True`` returns a :class:`~repro.datasets.base.LazyFederatedDataset`
holding only packed per-device metadata; each shard is regenerated on
demand from its seed-derived stream, bit-identical to the eager path.
That works because device ``k``'s stream is the ``k+2``-th spawned child
of the seed (``spawn_key=(k+2,)``), addressable directly through
:func:`repro.utils.rng.derive_generator` without spawning the other
``N-1`` children.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.datasets.base import DeviceData, FederatedDataset, LazyFederatedDataset
from repro.datasets.partition import power_law_sizes
from repro.datasets.splits import train_split_sizes, train_test_split_device
from repro.exceptions import ConfigurationError
from repro.nn.losses import softmax
from repro.utils.rng import SeedLike, derive_generator, spawn_generators
from repro.utils.validation import check_in_range, check_positive, check_positive_int


def _synthetic_device(
    k: int,
    rng: np.random.Generator,
    *,
    n_k: int,
    scale: np.ndarray,
    shared: "tuple[np.ndarray, np.ndarray, np.ndarray]",
    alpha: float,
    beta: float,
    iid: bool,
    train_fraction: float,
) -> DeviceData:
    """Generate device ``k``'s shard from its dedicated stream.

    All randomness comes from ``rng`` alone, so eager and lazy
    construction produce bit-identical shards from the same child seed.
    """
    num_features = scale.shape[0]
    shared_W, shared_b, shared_v = shared
    num_classes = shared_b.shape[0]
    if iid:
        W, b, v = shared_W, shared_b, shared_v
    else:
        u_k = rng.normal(0.0, np.sqrt(alpha)) if alpha > 0 else 0.0
        W = rng.normal(u_k, 1.0, size=(num_features, num_classes))
        b = rng.normal(u_k, 1.0, size=num_classes)
        B_k = rng.normal(0.0, np.sqrt(beta)) if beta > 0 else 0.0
        v = rng.normal(B_k, 1.0, size=num_features)
    X = v[None, :] + rng.standard_normal((n_k, num_features)) * scale[None, :]
    probs = softmax(X @ W + b)
    y = np.argmax(probs, axis=1)
    X_tr, y_tr, X_te, y_te = train_test_split_device(
        X, y, train_fraction=train_fraction, seed=rng
    )
    return DeviceData(k, X_tr, y_tr, X_te, y_te)


def make_synthetic(
    alpha: float = 1.0,
    beta: float = 1.0,
    *,
    num_devices: int = 30,
    num_features: int = 60,
    num_classes: int = 10,
    iid: bool = False,
    min_size: int = 40,
    max_size: int = 4000,
    train_fraction: float = 0.75,
    seed: SeedLike = 0,
    lazy: bool = False,
) -> Union[FederatedDataset, LazyFederatedDataset]:
    """Generate a ``Synthetic(alpha, beta)`` federated dataset.

    Returns a :class:`FederatedDataset` whose per-device sizes follow a
    power law in ``[min_size, max_size]`` and whose shards are split
    75/25 (paper default) into train/test.  With ``lazy=True`` only the
    O(N) metadata (sizes, shared parameters) is computed up front and a
    :class:`LazyFederatedDataset` materializes shards on demand.
    """
    check_positive("alpha", alpha, strict=False)
    check_positive("beta", beta, strict=False)
    check_positive_int("num_devices", num_devices)
    check_positive_int("num_features", num_features)
    check_positive_int("num_classes", num_classes, minimum=2)
    check_in_range("train_fraction", train_fraction, 0.0, 1.0, inclusive="neither")
    if lazy and isinstance(seed, np.random.Generator):
        raise ConfigurationError(
            "lazy synthetic datasets need a stable seed (int/SeedSequence) "
            "so device streams can be re-derived on demand"
        )

    if lazy:
        # Pin the entropy now (seed=None draws fresh OS entropy once) so
        # every later re-derivation of a device stream is stable.  Only
        # children 0 (sizes) and 1 (shared params) are spawned; device
        # k's child (spawn_key=(k+2,)) is derived on demand.
        if not isinstance(seed, np.random.SeedSequence):
            seed = np.random.SeedSequence(seed)
        size_rng, shared_rng = spawn_generators(seed, 2)
    else:
        size_rng, shared_rng, *device_rngs = spawn_generators(
            seed, num_devices + 2
        )
    sizes = power_law_sizes(
        num_devices, min_size=min_size, max_size=max_size, seed=size_rng
    )
    # Input covariance shared by all devices: Sigma_jj = j^{-1.2}.
    diag = np.power(np.arange(1, num_features + 1, dtype=np.float64), -1.2)
    scale = np.sqrt(diag)

    shared_W = shared_rng.standard_normal((num_features, num_classes))
    shared_b = shared_rng.standard_normal(num_classes)
    shared_v = shared_rng.standard_normal(num_features)
    shared = (shared_W, shared_b, shared_v)

    name = f"synthetic({alpha},{beta})" + ("-iid" if iid else "")
    extra = {"alpha": alpha, "beta": beta, "iid": iid}

    if lazy:
        base_entropy = seed.entropy if isinstance(seed, np.random.SeedSequence) else seed

        def factory(k: int) -> DeviceData:
            return _synthetic_device(
                k,
                derive_generator(base_entropy, k + 2),
                n_k=int(sizes[k]),
                scale=scale,
                shared=shared,
                alpha=alpha,
                beta=beta,
                iid=iid,
                train_fraction=train_fraction,
            )

        return LazyFederatedDataset(
            factory,
            train_sizes=train_split_sizes(sizes, train_fraction),
            num_features=num_features,
            num_classes=num_classes,
            name=name,
            extra=extra,
        )

    devices = [
        _synthetic_device(
            k,
            device_rngs[k],
            n_k=int(sizes[k]),
            scale=scale,
            shared=shared,
            alpha=alpha,
            beta=beta,
            iid=iid,
            train_fraction=train_fraction,
        )
        for k in range(num_devices)
    ]
    return FederatedDataset(
        devices=devices,
        num_features=num_features,
        num_classes=num_classes,
        name=name,
        extra=extra,
    )
