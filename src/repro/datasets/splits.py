"""Per-device train/test splitting (75/25 in the paper)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range


def train_test_split_device(
    X: np.ndarray,
    y: np.ndarray,
    *,
    train_fraction: float = 0.75,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split one device's samples.

    Guarantees at least one training sample; a device with a single
    sample puts it in training and leaves the test shard empty.
    """
    check_in_range("train_fraction", train_fraction, 0.0, 1.0, inclusive="neither")
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    rng = as_generator(seed)
    order = rng.permutation(n)
    cut = max(1, int(round(n * train_fraction)))
    cut = min(cut, n)
    train_idx, test_idx = order[:cut], order[cut:]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]
