"""Per-device train/test splitting (75/25 in the paper)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range


def train_split_size(n: int, train_fraction: float = 0.75) -> int:
    """Training-shard size the split assigns to an ``n``-sample device.

    The single source of truth shared by :func:`train_test_split_device`
    and the lazy datasets' packed ``train_sizes`` metadata, which must
    predict ``num_train`` without materializing the shard.
    """
    check_in_range("train_fraction", train_fraction, 0.0, 1.0, inclusive="neither")
    return min(max(1, int(round(n * train_fraction))), n)


def train_split_sizes(
    sizes: np.ndarray, train_fraction: float = 0.75
) -> np.ndarray:
    """Vectorized :func:`train_split_size` over per-device sample counts."""
    check_in_range("train_fraction", train_fraction, 0.0, 1.0, inclusive="neither")
    sizes = np.asarray(sizes, dtype=np.int64)
    # np.round matches Python round() here: n * fraction with n integral
    # and fraction in (0, 1) banker's-rounds identically in both.
    cuts = np.maximum(1, np.round(sizes * train_fraction).astype(np.int64))
    return np.minimum(cuts, sizes)


def train_test_split_device(
    X: np.ndarray,
    y: np.ndarray,
    *,
    train_fraction: float = 0.75,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle and split one device's samples.

    Guarantees at least one training sample; a device with a single
    sample puts it in training and leaves the test shard empty.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    n = X.shape[0]
    rng = as_generator(seed)
    order = rng.permutation(n)
    cut = train_split_size(n, train_fraction)
    train_idx, test_idx = order[:cut], order[cut:]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]
