"""MNIST-like ten-digit federated dataset (offline surrogate).

Digit prototypes use the classic 7x5 dot-matrix font; per-sample
perturbations produce within-class variation.  The federated partition
follows the paper: power-law device sizes, two labels per device, 75/25
train/test split per device.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.datasets.base import DeviceData, FederatedDataset
from repro.datasets.imaging import render_prototype, synthesize_corpus
from repro.datasets.partition import pathological_partition, power_law_sizes
from repro.datasets.splits import train_test_split_device
from repro.utils.rng import SeedLike, spawn_generators
from repro.utils.validation import check_positive_int

_DIGIT_FONT: Dict[int, List[str]] = {
    0: [" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "],
    1: ["  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "],
    2: [" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"],
    3: [" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "],
    4: ["   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "],
    5: ["#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "],
    6: [" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "],
    7: ["#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "],
    8: [" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "],
    9: [" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "],
}


def digit_prototypes() -> Dict[int, np.ndarray]:
    """Render the ten 28x28 digit prototypes."""
    return {d: render_prototype(rows) for d, rows in _DIGIT_FONT.items()}


def make_digits(
    *,
    num_devices: int = 100,
    num_samples: int = 20000,
    labels_per_device: int = 2,
    min_size: int = 40,
    max_size: int = 4000,
    train_fraction: float = 0.75,
    seed: SeedLike = 0,
) -> FederatedDataset:
    """Generate the MNIST-like federated dataset.

    ``num_samples`` is the size of the global corpus from which device
    shards are drawn; device sizes follow a power law clipped to
    ``[min_size, max_size]`` (paper reports MNIST device sizes in
    [454, 3939]).
    """
    check_positive_int("num_devices", num_devices)
    check_positive_int("num_samples", num_samples)
    corpus_rng, size_rng, part_rng, *split_rngs = spawn_generators(
        seed, num_devices + 3
    )
    X, y = synthesize_corpus(digit_prototypes(), num_samples, seed=corpus_rng)
    sizes = power_law_sizes(
        num_devices, min_size=min_size, max_size=max_size, seed=size_rng
    )
    partitions = pathological_partition(
        y, num_devices, labels_per_device=labels_per_device, sizes=sizes, seed=part_rng
    )
    devices = []
    for n, idx in enumerate(partitions):
        X_tr, y_tr, X_te, y_te = train_test_split_device(
            X[idx], y[idx], train_fraction=train_fraction, seed=split_rngs[n]
        )
        devices.append(DeviceData(n, X_tr, y_tr, X_te, y_te))
    return FederatedDataset(
        devices=devices,
        num_features=X.shape[1],
        num_classes=10,
        name="digits-mnist-like",
        extra={"labels_per_device": labels_per_device},
    )
