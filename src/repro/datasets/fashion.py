"""Fashion-MNIST-like ten-garment federated dataset (offline surrogate).

Garment silhouettes as 7x5 bitmaps (t-shirt, trouser, pullover, dress,
coat, sandal, shirt, sneaker, bag, ankle boot) perturbed with the same
pipeline as the digit surrogate plus multiplicative low-frequency
texture, mimicking the softer intra-class structure of Fashion-MNIST.
"""

from __future__ import annotations

from typing import Dict, List, Union

import numpy as np

from repro.datasets.base import DeviceData, FederatedDataset, LazyFederatedDataset
from repro.datasets.imaging import render_prototype, synthesize_corpus
from repro.datasets.partition import (
    PartitionPlan,
    pathological_partition,
    power_law_sizes,
)
from repro.datasets.splits import train_split_sizes, train_test_split_device
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, derive_generator, spawn_generators
from repro.utils.validation import check_positive_int

#: label order follows Fashion-MNIST: 0 t-shirt ... 9 ankle boot
_GARMENT_FONT: Dict[int, List[str]] = {
    0: ["## ##", "#####", " ### ", " ### ", " ### ", " ### ", " ### "],  # t-shirt
    1: [" ### ", " ### ", " # # ", " # # ", " # # ", " # # ", " # # "],  # trouser
    2: ["#####", "#####", "#####", " ### ", " ### ", " ### ", " ### "],  # pullover
    3: [" ### ", " ### ", "  #  ", " ### ", " ### ", "#####", "#####"],  # dress
    4: ["## ##", "#####", "#####", "#####", "#####", "#####", "#####"],  # coat
    5: ["     ", "     ", "#    ", "## # ", "#####", " ####", "     "],  # sandal
    6: ["## ##", "#####", "## ##", " # # ", " ### ", " # # ", " ### "],  # shirt
    7: ["     ", "   ##", "  ###", "#####", "#####", "#### ", "     "],  # sneaker
    8: [" ### ", "#   #", "#####", "#####", "#####", "#####", " ### "],  # bag
    9: ["  ## ", "  ## ", "  ## ", " ### ", "#####", "#####", "#### "],  # boot
}


def garment_prototypes() -> Dict[int, np.ndarray]:
    """Render the ten 28x28 garment prototypes."""
    return {g: render_prototype(rows) for g, rows in _GARMENT_FONT.items()}


def make_fashion(
    *,
    num_devices: int = 100,
    num_samples: int = 20000,
    labels_per_device: int = 2,
    min_size: int = 40,
    max_size: int = 1400,
    train_fraction: float = 0.75,
    seed: SeedLike = 0,
    lazy: bool = False,
) -> Union[FederatedDataset, LazyFederatedDataset]:
    """Generate the Fashion-MNIST-like federated dataset.

    Device sizes are clipped to ``[min_size, max_size]`` (paper reports
    Fashion-MNIST device sizes in [37, 1350]).

    With ``lazy=True`` the shared corpus and the packed partition plan
    are built once, but no per-device shard arrays exist until
    ``device(n)`` is called: each shard is then sliced from the corpus
    and split with device ``n``'s re-derived stream, bit-identical to
    the eager constructor.  Resident cost is O(corpus + N metadata)
    instead of O(corpus copied into N shards).
    """
    check_positive_int("num_devices", num_devices)
    check_positive_int("num_samples", num_samples)
    if lazy and isinstance(seed, np.random.Generator):
        raise ConfigurationError(
            "lazy fashion datasets need a stable seed (int/SeedSequence) "
            "so device split streams can be re-derived on demand"
        )
    if lazy:
        # Pin the entropy (seed=None draws OS entropy once); children 0-2
        # drive corpus/sizes/partition, device n's split stream is child
        # n+3, re-derived on demand.
        if not isinstance(seed, np.random.SeedSequence):
            seed = np.random.SeedSequence(seed)
        corpus_rng, size_rng, part_rng = spawn_generators(seed, 3)
    else:
        corpus_rng, size_rng, part_rng, *split_rngs = spawn_generators(
            seed, num_devices + 3
        )
    X, y = synthesize_corpus(
        garment_prototypes(),
        num_samples,
        seed=corpus_rng,
        max_rotation=8.0,
        texture_std=0.25,
        noise_std=0.06,
    )
    sizes = power_law_sizes(
        num_devices, min_size=min_size, max_size=max_size, seed=size_rng
    )
    partitions = pathological_partition(
        y, num_devices, labels_per_device=labels_per_device, sizes=sizes, seed=part_rng
    )
    extra = {"labels_per_device": labels_per_device}

    if lazy:
        plan = PartitionPlan.from_lists(partitions)
        del partitions  # drop the N Python arrays; the plan is packed
        base_entropy = seed.entropy

        def factory(n: int) -> DeviceData:
            idx = plan.device_indices(n)
            X_tr, y_tr, X_te, y_te = train_test_split_device(
                X[idx],
                y[idx],
                train_fraction=train_fraction,
                seed=derive_generator(base_entropy, n + 3),
            )
            return DeviceData(n, X_tr, y_tr, X_te, y_te)

        return LazyFederatedDataset(
            factory,
            train_sizes=train_split_sizes(plan.device_sizes(), train_fraction),
            num_features=X.shape[1],
            num_classes=10,
            name="fashion-mnist-like",
            extra=extra,
        )

    devices = []
    for n, idx in enumerate(partitions):
        X_tr, y_tr, X_te, y_te = train_test_split_device(
            X[idx], y[idx], train_fraction=train_fraction, seed=split_rngs[n]
        )
        devices.append(DeviceData(n, X_tr, y_tr, X_te, y_te))
    return FederatedDataset(
        devices=devices,
        num_features=X.shape[1],
        num_classes=10,
        name="fashion-mnist-like",
        extra=extra,
    )

