"""Non-IID partitioning: power-law sizes, few labels per device.

Reproduces the partition mechanics of §5: "each of the devices has a
different sample size, generated according to the power law ... each
device contains only two different labels over 10 labels."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class PartitionPlan:
    """Packed per-device index assignment over a shared corpus.

    Stores one concatenated int64 index vector plus an offsets vector
    instead of ``N`` separate Python arrays: the per-device overhead is
    two int64 slots, so plans for ``N = 10^5``-device federations stay
    cheap to hold while shards are materialized lazily via
    :meth:`device_indices`.
    """

    indices: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "indices", np.ascontiguousarray(self.indices, dtype=np.int64)
        )
        object.__setattr__(
            self, "offsets", np.ascontiguousarray(self.offsets, dtype=np.int64)
        )
        if self.offsets.ndim != 1 or self.offsets.shape[0] < 2:
            raise ConfigurationError("offsets must cover >= 1 device")
        if int(self.offsets[0]) != 0 or int(self.offsets[-1]) != self.indices.shape[0]:
            raise ConfigurationError("offsets must span the index vector")
        if np.any(np.diff(self.offsets) < 0):
            raise ConfigurationError("offsets must be non-decreasing")

    @classmethod
    def from_lists(cls, partitions: Sequence[np.ndarray]) -> "PartitionPlan":
        """Pack a list-of-index-arrays partition (the legacy format)."""
        if not partitions:
            raise ConfigurationError("plan needs >= 1 device")
        sizes = np.array([len(p) for p in partitions], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        return cls(np.concatenate(partitions), offsets)

    @property
    def num_devices(self) -> int:
        return int(self.offsets.shape[0] - 1)

    def device_sizes(self) -> np.ndarray:
        """Per-device sample counts as a packed int64 vector."""
        return np.diff(self.offsets)

    def device_indices(self, device: int) -> np.ndarray:
        """Corpus indices assigned to ``device`` (a zero-copy view)."""
        if not 0 <= device < self.num_devices:
            raise ConfigurationError(
                f"device {device} out of range [0, {self.num_devices})"
            )
        return self.indices[self.offsets[device] : self.offsets[device + 1]]

    def to_lists(self) -> List[np.ndarray]:
        """Back to the legacy list-of-arrays format (copies)."""
        return [
            np.array(self.device_indices(n)) for n in range(self.num_devices)
        ]


def power_law_sizes(
    num_devices: int,
    *,
    min_size: int = 40,
    mean_extra: float = 4.0,
    sigma: float = 1.5,
    max_size: Optional[int] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Draw heavy-tailed per-device sample counts.

    Uses ``min_size + LogNormal(mean_extra, sigma)`` — the same recipe as
    the FedProx reference generators (lognormal is the standard smooth
    stand-in for a power law here).  ``max_size`` optionally clips the
    tail so a single device cannot swallow the sample budget.
    """
    check_positive_int("num_devices", num_devices)
    check_positive_int("min_size", min_size)
    check_positive("sigma", sigma)
    rng = as_generator(seed)
    sizes = (min_size + rng.lognormal(mean_extra, sigma, size=num_devices)).astype(int)
    if max_size is not None:
        if max_size < min_size:
            raise ConfigurationError(
                f"max_size {max_size} < min_size {min_size}"
            )
        sizes = np.minimum(sizes, int(max_size))
    return sizes


def assign_device_labels(
    num_devices: int,
    num_classes: int,
    labels_per_device: int,
    seed: SeedLike = None,
) -> List[np.ndarray]:
    """Assign each device a small label subset, covering all classes.

    Labels are dealt round-robin from a shuffled deck so every class
    appears on roughly ``num_devices * labels_per_device / num_classes``
    devices, matching the paper's "only two different labels over 10".
    """
    check_positive_int("num_devices", num_devices)
    check_positive_int("num_classes", num_classes)
    check_positive_int("labels_per_device", labels_per_device)
    if labels_per_device > num_classes:
        raise ConfigurationError(
            f"labels_per_device {labels_per_device} > num_classes {num_classes}"
        )
    rng = as_generator(seed)
    deck: List[int] = []
    assignments: List[np.ndarray] = []
    for _ in range(num_devices):
        picked: List[int] = []
        while len(picked) < labels_per_device:
            if not deck:
                deck = list(rng.permutation(num_classes))
            candidate = deck.pop()
            if candidate not in picked:
                picked.append(candidate)
            elif len(set(deck)) == 0:  # pragma: no cover - defensive
                break
        assignments.append(np.array(sorted(picked), dtype=int))
    return assignments


def pathological_partition(
    y: np.ndarray,
    num_devices: int,
    *,
    labels_per_device: int = 2,
    sizes: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
) -> List[np.ndarray]:
    """Split sample indices across devices by label-restricted sampling.

    Each device receives ``sizes[n]`` indices drawn (without replacement
    while the label pool lasts, then with replacement) from the pools of
    its assigned labels, split as evenly as possible across its labels.

    Returns a list of index arrays into ``y``.
    """
    y = np.asarray(y)
    rng = as_generator(seed)
    classes = np.unique(y)
    num_classes = len(classes)
    if sizes is None:
        sizes = power_law_sizes(num_devices, seed=rng)
    sizes = np.asarray(sizes, dtype=int)
    if len(sizes) != num_devices:
        raise ConfigurationError(
            f"sizes length {len(sizes)} != num_devices {num_devices}"
        )
    label_sets = assign_device_labels(
        num_devices, num_classes, labels_per_device, seed=rng
    )
    # Shuffled per-class pools consumed in order; cursor per class.
    pools: Dict[int, np.ndarray] = {
        int(c): rng.permutation(np.flatnonzero(y == c)) for c in classes
    }
    cursor: Dict[int, int] = {int(c): 0 for c in classes}

    partitions: List[np.ndarray] = []
    for n in range(num_devices):
        device_labels = [int(classes[j]) for j in label_sets[n]]
        quota = np.full(len(device_labels), sizes[n] // len(device_labels), dtype=int)
        quota[: sizes[n] % len(device_labels)] += 1
        chosen: List[np.ndarray] = []
        for lab, q in zip(device_labels, quota):
            pool = pools[lab]
            start = cursor[lab]
            take = pool[start : start + q]
            cursor[lab] = start + len(take)
            if len(take) < q:
                # Pool exhausted: top up with replacement so the target
                # power-law sizes are honored even on small corpora.
                extra = rng.choice(pool, size=q - len(take), replace=True)
                take = np.concatenate([take, extra])
            chosen.append(take)
        partitions.append(rng.permutation(np.concatenate(chosen)))
    return partitions


def label_distribution(y: np.ndarray, partitions: Sequence[np.ndarray]) -> np.ndarray:
    """Matrix ``(num_devices, num_classes)`` of per-device label counts."""
    y = np.asarray(y)
    classes = np.unique(y)
    out = np.zeros((len(partitions), len(classes)), dtype=int)
    index = {int(c): j for j, c in enumerate(classes)}
    for n, idx in enumerate(partitions):
        labels, counts = np.unique(y[idx], return_counts=True)
        for lab, cnt in zip(labels, counts):
            out[n, index[int(lab)]] = cnt
    return out
