"""Shared image-synthesis machinery for the MNIST-like surrogates.

Class prototypes are coarse 7x5 bitmaps (a classic dot-matrix font for
digits, silhouettes for garments), upsampled to 28x28 and perturbed per
sample with random rotation, translation, blur, amplitude jitter, and
pixel noise.  The result is a ten-class image corpus with genuine
within-class variation and between-class structure — enough to make a
CNN meaningfully better than random and to drive the paper's non-IID
partition mechanics.  (See DESIGN.md §2 for why this substitution
preserves the experiments' shape.)
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator

IMAGE_SIZE = 28
GRID_ROWS = 7
GRID_COLS = 5


def render_prototype(bitmap_rows: Sequence[str]) -> np.ndarray:
    """Upsample a 7x5 '#'-bitmap to a centered 28x28 float image."""
    if len(bitmap_rows) != GRID_ROWS or any(len(r) != GRID_COLS for r in bitmap_rows):
        raise ConfigurationError(
            f"prototype bitmaps must be {GRID_ROWS}x{GRID_COLS} strings"
        )
    coarse = np.array(
        [[1.0 if ch == "#" else 0.0 for ch in row] for row in bitmap_rows],
        dtype=np.float64,
    )
    # 7x5 -> 21x15 by pixel replication, then pad to 28x28 centered.
    fine = np.kron(coarse, np.ones((3, 3)))
    out = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float64)
    r0 = (IMAGE_SIZE - fine.shape[0]) // 2
    c0 = (IMAGE_SIZE - fine.shape[1]) // 2
    out[r0 : r0 + fine.shape[0], c0 : c0 + fine.shape[1]] = fine
    return ndimage.gaussian_filter(out, sigma=0.6)


def perturb(
    prototype: np.ndarray,
    rng: np.random.Generator,
    *,
    max_rotation: float = 14.0,
    max_shift: int = 3,
    blur_range: Tuple[float, float] = (0.4, 1.1),
    noise_std: float = 0.08,
    texture_std: float = 0.0,
) -> np.ndarray:
    """One randomized sample from a class prototype, clipped to [0, 1]."""
    img = prototype
    angle = rng.uniform(-max_rotation, max_rotation)
    img = ndimage.rotate(img, angle, reshape=False, order=1, mode="constant")
    shift = rng.integers(-max_shift, max_shift + 1, size=2)
    img = ndimage.shift(img, shift, order=1, mode="constant")
    img = ndimage.gaussian_filter(img, sigma=rng.uniform(*blur_range))
    img = img * rng.uniform(0.75, 1.0)
    if texture_std > 0.0:
        # Low-frequency multiplicative texture (garment-like shading).
        texture = ndimage.gaussian_filter(
            rng.standard_normal(img.shape), sigma=3.0
        )
        img = img * (1.0 + texture_std * texture)
    img = img + rng.standard_normal(img.shape) * noise_std
    return np.clip(img, 0.0, 1.0)


def synthesize_corpus(
    prototypes: Dict[int, np.ndarray],
    num_samples: int,
    *,
    seed: SeedLike = None,
    class_skew: float = 0.0,
    **perturb_kwargs,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw a labeled corpus of perturbed prototype images.

    Returns flat feature rows ``(num_samples, 784)`` and integer labels.
    ``class_skew > 0`` tilts the class prior (Zipf-like) so the global
    corpus itself is imbalanced, adding another layer of heterogeneity.
    """
    if num_samples < 1:
        raise ConfigurationError("num_samples must be >= 1")
    rng = as_generator(seed)
    classes = np.array(sorted(prototypes.keys()))
    ranks = np.arange(1, len(classes) + 1, dtype=np.float64)
    prior = np.power(ranks, -class_skew)
    prior /= prior.sum()
    labels = rng.choice(classes, size=num_samples, p=prior)
    X = np.empty((num_samples, IMAGE_SIZE * IMAGE_SIZE), dtype=np.float64)
    for i, lab in enumerate(labels):
        X[i] = perturb(prototypes[int(lab)], rng, **perturb_kwargs).ravel()
    return X, labels.astype(int)
