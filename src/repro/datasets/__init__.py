"""Federated dataset containers and generators.

Three dataset families, matching §5 of the paper:

* :func:`repro.datasets.synthetic.make_synthetic` — the FedProx-style
  ``Synthetic(alpha, beta)`` heterogeneous classification generator.
* :func:`repro.datasets.digits.make_digits` — an MNIST-like 28x28
  ten-class digit task (offline surrogate; see DESIGN.md §2).
* :func:`repro.datasets.fashion.make_fashion` — a Fashion-MNIST-like
  28x28 ten-class garment-silhouette task (offline surrogate).

All generators return a :class:`repro.datasets.base.FederatedDataset`
partitioned across devices with power-law sizes and a limited number of
labels per device.
"""

from repro.datasets.base import DeviceData, FederatedDataset, LazyFederatedDataset
from repro.datasets.partition import (
    PartitionPlan,
    pathological_partition,
    power_law_sizes,
    label_distribution,
)
from repro.datasets.splits import (
    train_split_size,
    train_split_sizes,
    train_test_split_device,
)
from repro.datasets.synthetic import make_synthetic
from repro.datasets.digits import make_digits
from repro.datasets.fashion import make_fashion

__all__ = [
    "DeviceData",
    "FederatedDataset",
    "LazyFederatedDataset",
    "PartitionPlan",
    "label_distribution",
    "make_digits",
    "make_fashion",
    "make_synthetic",
    "pathological_partition",
    "power_law_sizes",
    "train_split_size",
    "train_split_sizes",
    "train_test_split_device",
]
