"""Containers for federated data.

A :class:`FederatedDataset` is a list of per-device shards plus global
metadata.  Device weights are the paper's ``D_n / D`` (computed over
*training* samples, which is what both the aggregation rule in Alg. 1
line 12 and the global objective (2) weight by).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError


@dataclass
class DeviceData:
    """One device's local shard, already split into train and test."""

    device_id: int
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray

    def __post_init__(self) -> None:
        self.X_train = np.asarray(self.X_train, dtype=np.float64)
        self.X_test = np.asarray(self.X_test, dtype=np.float64)
        self.y_train = np.asarray(self.y_train)
        self.y_test = np.asarray(self.y_test)
        if self.X_train.ndim != 2 or self.X_test.ndim != 2:
            raise DimensionMismatchError("device features must be 2-D matrices")
        if self.X_train.shape[0] != self.y_train.shape[0]:
            raise DimensionMismatchError("train X/y length mismatch")
        if self.X_test.shape[0] != self.y_test.shape[0]:
            raise DimensionMismatchError("test X/y length mismatch")
        if self.X_train.shape[0] == 0:
            raise ConfigurationError(
                f"device {self.device_id} has no training samples"
            )

    @property
    def num_train(self) -> int:
        """Number of local training samples (the paper's ``D_n``)."""
        return int(self.X_train.shape[0])

    @property
    def num_test(self) -> int:
        """Number of local held-out samples."""
        return int(self.X_test.shape[0])

    @property
    def train_labels(self) -> np.ndarray:
        """Distinct labels present in the training shard."""
        return np.unique(self.y_train)


@dataclass
class FederatedDataset:
    """All device shards plus task-level metadata."""

    devices: List[DeviceData]
    num_features: int
    num_classes: int
    name: str = "federated"
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigurationError("a federated dataset needs >= 1 device")
        for dev in self.devices:
            if dev.X_train.shape[1] != self.num_features:
                raise DimensionMismatchError(
                    f"device {dev.device_id} has {dev.X_train.shape[1]} features, "
                    f"dataset declares {self.num_features}"
                )

    @property
    def num_devices(self) -> int:
        """The paper's ``N``."""
        return len(self.devices)

    def device(self, index: int) -> DeviceData:
        """Shard of device ``index`` (same protocol as the lazy dataset)."""
        return self.devices[index]

    @property
    def train_sizes(self) -> np.ndarray:
        """Per-device ``D_n`` as a packed int64 vector."""
        return np.array([d.num_train for d in self.devices], dtype=np.int64)

    @property
    def total_train(self) -> int:
        """The paper's ``D = sum_n D_n``."""
        return int(sum(d.num_train for d in self.devices))

    def weights(self) -> np.ndarray:
        """Aggregation weights ``p_n = D_n / D`` (sum to one)."""
        sizes = np.array([d.num_train for d in self.devices], dtype=np.float64)
        return sizes / sizes.sum()

    def global_train(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated training data (for centralized reference runs)."""
        X = np.concatenate([d.X_train for d in self.devices], axis=0)
        y = np.concatenate([d.y_train for d in self.devices], axis=0)
        return X, y

    def global_test(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated test data (devices may have empty test shards)."""
        X = np.concatenate([d.X_test for d in self.devices], axis=0)
        y = np.concatenate([d.y_test for d in self.devices], axis=0)
        return X, y

    def size_range(self) -> Tuple[int, int]:
        """(min, max) per-device training sizes — the paper reports these."""
        sizes = [d.num_train for d in self.devices]
        return (min(sizes), max(sizes))

    def summary(self) -> str:
        """Human-readable one-paragraph description."""
        lo, hi = self.size_range()
        labels = [len(d.train_labels) for d in self.devices]
        return (
            f"{self.name}: {self.num_devices} devices, {self.total_train} train "
            f"samples (per-device range [{lo}, {hi}]), {self.num_features} "
            f"features, {self.num_classes} classes, "
            f"labels/device in [{min(labels)}, {max(labels)}]"
        )


class LazyFederatedDataset:
    """A federation whose shards are materialized on demand.

    Registered-population metadata — per-device training sizes, feature
    and class counts — lives in packed ndarrays, so holding ``N = 10^6``
    devices costs megabytes, not the gigabytes of ``N`` resident shards.
    ``device(k)`` rebuilds device ``k``'s :class:`DeviceData` from its
    seed-derived stream; generators guarantee the rebuilt shard is
    bit-identical to the one the eager constructor would have produced,
    so lazy and eager runs of the same seed agree exactly.

    Aggregation weights ``p_n = D_n / D`` and every other Theorem-1
    quantity that only needs sizes read :attr:`train_sizes` without
    touching a shard.  ``.devices`` materializes (and caches) the whole
    federation for backward compatibility — an explicit O(N) escape
    hatch, not something the lazy training path ever calls.
    """

    def __init__(
        self,
        device_factory: Callable[[int], DeviceData],
        *,
        train_sizes: np.ndarray,
        num_features: int,
        num_classes: int,
        name: str = "federated-lazy",
        extra: Optional[Dict[str, object]] = None,
    ) -> None:
        self.device_factory = device_factory
        self.train_sizes = np.asarray(train_sizes, dtype=np.int64)
        if self.train_sizes.ndim != 1 or self.train_sizes.shape[0] == 0:
            raise ConfigurationError(
                "train_sizes must be a non-empty 1-D vector"
            )
        if int(self.train_sizes.min()) < 1:
            raise ConfigurationError(
                "every device needs >= 1 training sample"
            )
        self.num_features = int(num_features)
        self.num_classes = int(num_classes)
        self.name = name
        self.extra: Dict[str, object] = dict(extra or {})
        self._materialized: Optional[List[DeviceData]] = None

    @property
    def num_devices(self) -> int:
        """The paper's ``N`` — a metadata lookup, no shards involved."""
        return int(self.train_sizes.shape[0])

    @property
    def total_train(self) -> int:
        """The paper's ``D = sum_n D_n`` from packed metadata."""
        return int(self.train_sizes.sum())

    def weights(self) -> np.ndarray:
        """Aggregation weights ``p_n = D_n / D`` from packed metadata."""
        sizes = self.train_sizes.astype(np.float64)
        return sizes / sizes.sum()

    def device(self, index: int) -> DeviceData:
        """Materialize device ``index``'s shard from its seeded stream."""
        if not 0 <= index < self.num_devices:
            raise ConfigurationError(
                f"device index {index} out of range [0, {self.num_devices})"
            )
        if self._materialized is not None:
            return self._materialized[index]
        dev = self.device_factory(index)
        if dev.device_id != index:
            raise ConfigurationError(
                f"device factory returned id {dev.device_id} for index {index}"
            )
        if dev.num_train != int(self.train_sizes[index]):
            raise ConfigurationError(
                f"device {index} materialized {dev.num_train} train samples, "
                f"metadata says {int(self.train_sizes[index])}"
            )
        if dev.X_train.shape[1] != self.num_features:
            raise DimensionMismatchError(
                f"device {index} has {dev.X_train.shape[1]} features, "
                f"dataset declares {self.num_features}"
            )
        return dev

    @property
    def devices(self) -> List[DeviceData]:
        """All shards, materialized and cached — an explicit O(N) walk."""
        if self._materialized is None:
            self._materialized = [self.device(k) for k in range(self.num_devices)]
        return self._materialized

    def materialize(self) -> FederatedDataset:
        """Eager :class:`FederatedDataset` with every shard resident."""
        return FederatedDataset(
            devices=list(self.devices),
            num_features=self.num_features,
            num_classes=self.num_classes,
            name=self.name,
            extra=dict(self.extra),
        )

    def global_train(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated training data (materializes every shard)."""
        X = np.concatenate([d.X_train for d in self.devices], axis=0)
        y = np.concatenate([d.y_train for d in self.devices], axis=0)
        return X, y

    def global_test(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated test data (materializes every shard)."""
        X = np.concatenate([d.X_test for d in self.devices], axis=0)
        y = np.concatenate([d.y_test for d in self.devices], axis=0)
        return X, y

    def probe_train(self, max_devices: int) -> Tuple[np.ndarray, np.ndarray]:
        """Training data of the first ``max_devices`` shards.

        The smoothness probe's bounded stand-in for ``global_train``:
        when ``max_devices >= N`` it returns exactly the global
        concatenation, so small-federation runs keep the eager path's
        ``L`` bit-for-bit.
        """
        count = min(int(max_devices), self.num_devices)
        if count < 1:
            raise ConfigurationError("probe needs >= 1 device")
        shards = [self.device(k) for k in range(count)]
        X = np.concatenate([d.X_train for d in shards], axis=0)
        y = np.concatenate([d.y_train for d in shards], axis=0)
        return X, y

    def size_range(self) -> Tuple[int, int]:
        """(min, max) per-device training sizes from packed metadata."""
        return (int(self.train_sizes.min()), int(self.train_sizes.max()))

    def summary(self) -> str:
        """Human-readable one-paragraph description (metadata only)."""
        lo, hi = self.size_range()
        return (
            f"{self.name}: {self.num_devices} devices (lazy), "
            f"{self.total_train} train samples (per-device range "
            f"[{lo}, {hi}]), {self.num_features} features, "
            f"{self.num_classes} classes"
        )
