"""Containers for federated data.

A :class:`FederatedDataset` is a list of per-device shards plus global
metadata.  Device weights are the paper's ``D_n / D`` (computed over
*training* samples, which is what both the aggregation rule in Alg. 1
line 12 and the global objective (2) weight by).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError


@dataclass
class DeviceData:
    """One device's local shard, already split into train and test."""

    device_id: int
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray

    def __post_init__(self) -> None:
        self.X_train = np.asarray(self.X_train, dtype=np.float64)
        self.X_test = np.asarray(self.X_test, dtype=np.float64)
        self.y_train = np.asarray(self.y_train)
        self.y_test = np.asarray(self.y_test)
        if self.X_train.ndim != 2 or self.X_test.ndim != 2:
            raise DimensionMismatchError("device features must be 2-D matrices")
        if self.X_train.shape[0] != self.y_train.shape[0]:
            raise DimensionMismatchError("train X/y length mismatch")
        if self.X_test.shape[0] != self.y_test.shape[0]:
            raise DimensionMismatchError("test X/y length mismatch")
        if self.X_train.shape[0] == 0:
            raise ConfigurationError(
                f"device {self.device_id} has no training samples"
            )

    @property
    def num_train(self) -> int:
        """Number of local training samples (the paper's ``D_n``)."""
        return int(self.X_train.shape[0])

    @property
    def num_test(self) -> int:
        """Number of local held-out samples."""
        return int(self.X_test.shape[0])

    @property
    def train_labels(self) -> np.ndarray:
        """Distinct labels present in the training shard."""
        return np.unique(self.y_train)


@dataclass
class FederatedDataset:
    """All device shards plus task-level metadata."""

    devices: List[DeviceData]
    num_features: int
    num_classes: int
    name: str = "federated"
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigurationError("a federated dataset needs >= 1 device")
        for dev in self.devices:
            if dev.X_train.shape[1] != self.num_features:
                raise DimensionMismatchError(
                    f"device {dev.device_id} has {dev.X_train.shape[1]} features, "
                    f"dataset declares {self.num_features}"
                )

    @property
    def num_devices(self) -> int:
        """The paper's ``N``."""
        return len(self.devices)

    @property
    def total_train(self) -> int:
        """The paper's ``D = sum_n D_n``."""
        return int(sum(d.num_train for d in self.devices))

    def weights(self) -> np.ndarray:
        """Aggregation weights ``p_n = D_n / D`` (sum to one)."""
        sizes = np.array([d.num_train for d in self.devices], dtype=np.float64)
        return sizes / sizes.sum()

    def global_train(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated training data (for centralized reference runs)."""
        X = np.concatenate([d.X_train for d in self.devices], axis=0)
        y = np.concatenate([d.y_train for d in self.devices], axis=0)
        return X, y

    def global_test(self) -> Tuple[np.ndarray, np.ndarray]:
        """Concatenated test data (devices may have empty test shards)."""
        X = np.concatenate([d.X_test for d in self.devices], axis=0)
        y = np.concatenate([d.y_test for d in self.devices], axis=0)
        return X, y

    def size_range(self) -> Tuple[int, int]:
        """(min, max) per-device training sizes — the paper reports these."""
        sizes = [d.num_train for d in self.devices]
        return (min(sizes), max(sizes))

    def summary(self) -> str:
        """Human-readable one-paragraph description."""
        lo, hi = self.size_range()
        labels = [len(d.train_labels) for d in self.devices]
        return (
            f"{self.name}: {self.num_devices} devices, {self.total_train} train "
            f"samples (per-device range [{lo}, {hi}]), {self.num_features} "
            f"features, {self.num_classes} classes, "
            f"labels/device in [{min(labels)}, {max(labels)}]"
        )
