"""§4.3 — choosing FedProxVR's parameters to minimize training time.

The simplified problem (23)-(24):

``minimize_{beta > 3, mu}  (1/Theta) * (1 + gamma * (5 beta^2 - 4 beta)/8)``

where ``gamma = d_cmp / d_com`` is the compute/communication weight
factor, ``theta`` is eliminated through eq. (22), and ``Theta`` must be
positive (Theorem 1).  The problem is non-convex but two-dimensional,
so we follow the paper: a dense log-space grid scan locates the basin
and a Nelder–Mead polish refines the optimum.

:func:`sweep_gamma` regenerates the four panels of Fig. 1 (optimal
``beta``, ``mu``, ``theta`` / ``Theta``, and the scaled training time as
functions of ``gamma``, for one or several heterogeneity levels
``sigma_bar^2``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import optimize

from repro.core import theory
from repro.core.theory import ProblemConstants
from repro.exceptions import InfeasibleParametersError
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class OptimalParameters:
    """Solution of problem (23) at one weight factor ``gamma``."""

    gamma: float
    beta: float
    mu: float
    theta: float
    tau: float
    federated_factor: float
    objective: float

    def as_row(self) -> str:
        """One formatted row for the Fig. 1 replication table."""
        return (
            f"gamma={self.gamma:9.2e}  beta*={self.beta:8.3f}  "
            f"mu*={self.mu:8.3f}  theta*={self.theta:6.4f}  "
            f"tau*={self.tau:9.1f}  Theta*={self.federated_factor:9.3e}  "
            f"obj={self.objective:10.4e}"
        )


def objective(
    beta: float, mu: float, gamma: float, constants: ProblemConstants
) -> float:
    """Evaluate (23); returns ``inf`` outside the feasible region."""
    if beta <= 3.0 or mu <= constants.lam:
        return math.inf
    try:
        theta = theory.theta_from_beta(mu, beta, constants)
    except InfeasibleParametersError:
        return math.inf
    if not (0.0 < theta < 1.0):
        return math.inf
    factor = theory.federated_factor(theta, mu, constants)
    if factor <= 0.0 or not math.isfinite(factor):
        return math.inf
    tau = theory.tau_upper_bound_sarah(beta)
    return (1.0 + gamma * tau) / factor


def optimize_parameters(
    gamma: float,
    constants: ProblemConstants,
    *,
    beta_grid: Optional[np.ndarray] = None,
    mu_grid: Optional[np.ndarray] = None,
    polish: bool = True,
) -> OptimalParameters:
    """Solve problem (23) for one ``gamma``.

    Raises :class:`InfeasibleParametersError` when no grid point is
    feasible (e.g. heterogeneity so large that ``Theta > 0`` is
    unattainable on the default grid).
    """
    check_positive("gamma", gamma)
    if beta_grid is None:
        beta_grid = np.geomspace(3.05, 3e4, 140)
    if mu_grid is None:
        mu_lo = max(constants.lam * 1.05, 1e-3)
        mu_grid = np.geomspace(mu_lo, max(1e4, 1e3 * constants.L), 140)

    best = (math.inf, None, None)
    for beta in beta_grid:
        for mu in mu_grid:
            val = objective(float(beta), float(mu), gamma, constants)
            if val < best[0]:
                best = (val, float(beta), float(mu))
    if best[1] is None:
        raise InfeasibleParametersError(
            f"problem (23) infeasible on the search grid for gamma={gamma}, "
            f"constants={constants}"
        )
    val, beta, mu = best

    if polish:
        # Nelder-Mead in log space keeps iterates positive and handles
        # the objective's inf-walls gracefully.
        def f(z: np.ndarray) -> float:
            return objective(
                3.0 + math.exp(z[0]), constants.lam + math.exp(z[1]), gamma, constants
            )

        res = optimize.minimize(
            f,
            x0=[math.log(beta - 3.0), math.log(mu - constants.lam)],
            method="Nelder-Mead",
            options={"xatol": 1e-6, "fatol": 1e-10, "maxiter": 2000},
        )
        if math.isfinite(res.fun) and res.fun <= val:
            val = float(res.fun)
            beta = 3.0 + math.exp(res.x[0])
            mu = constants.lam + math.exp(res.x[1])

    theta = theory.theta_from_beta(mu, beta, constants)
    factor = theory.federated_factor(theta, mu, constants)
    tau = theory.tau_upper_bound_sarah(beta)
    return OptimalParameters(
        gamma=gamma,
        beta=beta,
        mu=mu,
        theta=theta,
        tau=tau,
        federated_factor=factor,
        objective=val,
    )


def sweep_gamma(
    gammas: Sequence[float],
    constants: ProblemConstants,
    **kwargs,
) -> List[OptimalParameters]:
    """Fig. 1: optimal parameters across a range of weight factors."""
    return [optimize_parameters(float(g), constants, **kwargs) for g in gammas]


def recommend_run_config(
    gamma: float,
    constants: ProblemConstants,
    *,
    round_to_int_tau: bool = True,
) -> dict:
    """Translate an optimum into runnable experiment parameters.

    Returns a dict with ``beta``, ``mu``, ``tau`` (integer by default),
    ``theta`` and the implied ``step size multiplier`` ``1/beta`` — the
    bridge from §4.3's analysis to the §5 experiment harness.
    """
    opt = optimize_parameters(gamma, constants)
    tau = int(round(opt.tau)) if round_to_int_tau else opt.tau
    return {
        "beta": opt.beta,
        "mu": opt.mu,
        "tau": max(1, tau),
        "theta": opt.theta,
        "eta_times_L": 1.0 / opt.beta,
        "federated_factor": opt.federated_factor,
    }
