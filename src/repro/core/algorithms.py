"""Algorithm registry: name -> configured local solver.

The federated *outer* loop (broadcast, local solve, weighted average) is
identical for every algorithm in the paper; algorithms differ only in
their local solver.  This factory is the single place that mapping is
defined, so experiments select algorithms by string.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.local import (
    FedAvgLocalSolver,
    FedProxLocalSolver,
    FedProxVRLocalSolver,
    GDLocalSolver,
    LocalSolver,
    PersonalizedProxLocalSolver,
)
from repro.exceptions import ConfigurationError


def _fedavg(step_size, num_steps, batch_size, mu, **kw) -> LocalSolver:
    del mu, kw
    return FedAvgLocalSolver(
        step_size=step_size, num_steps=num_steps, batch_size=batch_size
    )


def _fedprox(step_size, num_steps, batch_size, mu, **kw) -> LocalSolver:
    del kw
    return FedProxLocalSolver(
        step_size=step_size, num_steps=num_steps, batch_size=batch_size, mu=mu
    )


def _fedproxvr(estimator: str):
    def build(step_size, num_steps, batch_size, mu, **kw) -> LocalSolver:
        return FedProxVRLocalSolver(
            step_size=step_size,
            num_steps=num_steps,
            batch_size=batch_size,
            mu=mu,
            estimator=estimator,
            **kw,
        )

    return build


def _pfedme(step_size, num_steps, batch_size, mu, **kw) -> LocalSolver:
    return PersonalizedProxLocalSolver(
        step_size=step_size,
        num_steps=num_steps,
        batch_size=batch_size,
        mu=mu if mu > 0 else 1.0,
        **kw,
    )


def _gd(step_size, num_steps, batch_size, mu, **kw) -> LocalSolver:
    del kw
    return GDLocalSolver(
        step_size=step_size, num_steps=num_steps, batch_size=batch_size, mu=mu
    )


#: algorithm name -> builder(step_size, num_steps, batch_size, mu, **kw)
ALGORITHMS: Dict[str, Callable[..., LocalSolver]] = {
    "fedavg": _fedavg,
    "fedprox": _fedprox,
    "fedproxvr-svrg": _fedproxvr("svrg"),
    "fedproxvr-sarah": _fedproxvr("sarah"),
    "fedproxvr-sgd": _fedproxvr("sgd"),
    "gd": _gd,
    "pfedme": _pfedme,
}


def make_local_solver(
    name: str,
    *,
    step_size: float,
    num_steps: int,
    batch_size: int,
    mu: float = 0.0,
    **kwargs,
) -> LocalSolver:
    """Build a local solver by algorithm name.

    ``kwargs`` are forwarded to FedProxVR variants (e.g.
    ``iterate_selection``, ``theta``) and ignored by baselines that do
    not take them.
    """
    try:
        builder = ALGORITHMS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; choices: {sorted(ALGORITHMS)}"
        ) from None
    return builder(step_size, num_steps, batch_size, mu, **kwargs)
