"""Empirical problem constants and convergence certificates.

The paper's Theorem 1 predicts ``T >= Delta(w^0) / (Theta eps)`` global
iterations from four problem constants: the smoothness ``L``, the
non-convexity bound ``lambda``, the heterogeneity ``sigma_bar^2``, and
the initial optimality gap ``Delta(w^0)``.  None of these is known a
priori on a real federation; this module estimates all of them from the
data (the paper: "these two values can be estimated by sampling [the]
real-world dataset", Fig. 1 caption) and assembles the Corollary-1
prediction — which the ``bench_certificate`` benchmark then compares
against empirically measured convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core import theory
from repro.core.theory import ProblemConstants
from repro.datasets.base import FederatedDataset
from repro.models.base import Model
from repro.utils.rng import SeedLike, as_generator
from repro.utils.smoothness import (
    estimate_lower_curvature,
    estimate_smoothness_power_iteration,
)
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class EmpiricalConstants:
    """Measured problem constants plus the assembled theory inputs."""

    L: float
    lam: float
    sigma_bar_sq: float
    delta0: float

    def to_problem_constants(self, *, lam_floor: float = 1e-3) -> ProblemConstants:
        """Assemble Assumption-1 constants (lambda floored away from 0
        so ``mu > lambda`` remains a meaningful requirement)."""
        return ProblemConstants(
            L=self.L, lam=max(self.lam, lam_floor), sigma_bar_sq=self.sigma_bar_sq
        )


def estimate_sigma_bar_sq(
    model: Model,
    dataset: FederatedDataset,
    points: Sequence[np.ndarray],
    *,
    floor: float = 1e-12,
) -> float:
    """Worst-case empirical heterogeneity over several probe points.

    Assumption (5) must hold for all ``w``; we probe it at the supplied
    points and take the maximum of the ``p_n``-weighted ratios.
    """
    weights = dataset.weights()
    worst = 0.0
    for w in points:
        grads = np.stack(
            [model.gradient(w, d.X_train, d.y_train) for d in dataset.devices]
        )
        global_grad = np.einsum("n,nd->d", weights, grads)
        denom = max(float(np.linalg.norm(global_grad)), floor)
        ratios_sq = ((np.linalg.norm(grads - global_grad, axis=1)) / denom) ** 2
        worst = max(worst, float(np.dot(weights, ratios_sq)))
    return worst


def estimate_delta0(
    model: Model,
    dataset: FederatedDataset,
    w0: np.ndarray,
    *,
    optimizer_steps: int = 400,
    step_scale: float = 1.0,
) -> float:
    """Estimate ``Delta(w^0) = F_bar(w^0) - F_bar(w*)``.

    ``F_bar(w*)`` is approximated by running centralized full-batch
    gradient descent on the pooled data (a valid lower-bound direction:
    any reachable loss upper-bounds the infimum, so the returned Delta
    is, if anything, an underestimate — conservative for the T bound's
    shape, and accurate on convex tasks).
    """
    X, y = dataset.global_train()
    loss0 = model.loss(w0, X, y)
    L = model.smoothness(X)
    if L is None or L <= 0:
        L = estimate_smoothness_power_iteration(
            lambda w: model.gradient(w, X, y), w0, seed=0
        )
        L = max(L, 1e-12)
    eta = step_scale / L
    w = np.array(w0, dtype=np.float64, copy=True)
    best = loss0
    for _ in range(int(optimizer_steps)):
        w -= eta * model.gradient(w, X, y)
        best = min(best, model.loss(w, X, y))
    return max(0.0, loss0 - best)


def measure_constants(
    model: Model,
    dataset: FederatedDataset,
    *,
    w0: Optional[np.ndarray] = None,
    num_probe_points: int = 3,
    probe_spread: float = 0.5,
    seed: SeedLike = 0,
) -> EmpiricalConstants:
    """Measure ``(L, lambda, sigma_bar^2, Delta(w^0))`` on a federation.

    Probes heterogeneity and curvature at ``w0`` plus random
    perturbations of it, so the estimates are not an artifact of one
    point.
    """
    check_positive("num_probe_points", num_probe_points)
    rng = as_generator(seed)
    if w0 is None:
        w0 = model.init_parameters(rng)
    w0 = np.asarray(w0, dtype=np.float64)
    X, y = dataset.global_train()

    points = [w0] + [
        w0 + probe_spread * rng.standard_normal(w0.size)
        for _ in range(int(num_probe_points) - 1)
    ]

    analytic_L = model.smoothness(X)
    if analytic_L is not None and analytic_L > 0:
        L = float(analytic_L)
    else:
        L = max(
            estimate_smoothness_power_iteration(
                lambda w: model.gradient(w, X, y), p, seed=rng
            )
            for p in points
        )

    lam = max(
        estimate_lower_curvature(
            lambda w: model.gradient(w, X, y), p, seed=rng
        )
        for p in points
    )
    sigma_sq = estimate_sigma_bar_sq(model, dataset, points)
    delta0 = estimate_delta0(model, dataset, w0)
    return EmpiricalConstants(L=L, lam=lam, sigma_bar_sq=sigma_sq, delta0=delta0)


def predicted_global_iterations(
    constants: EmpiricalConstants,
    *,
    theta: float,
    mu: float,
    eps: float,
) -> float:
    """Corollary 1's ``T`` at measured constants (raises if infeasible)."""
    return theory.global_iterations_required(
        constants.delta0,
        theta,
        mu,
        constants.to_problem_constants(),
        eps,
    )


def certificate_report(
    constants: EmpiricalConstants, *, theta: float, mu: float, eps: float
) -> str:
    """Human-readable certificate: constants, Theta, and predicted T."""
    pc = constants.to_problem_constants()
    factor = theory.federated_factor(theta, mu, pc)
    lines = [
        "Convergence certificate (Theorem 1 / Corollary 1)",
        f"  L            = {constants.L:.4g}",
        f"  lambda       = {constants.lam:.4g}",
        f"  sigma_bar^2  = {constants.sigma_bar_sq:.4g}",
        f"  Delta(w^0)   = {constants.delta0:.4g}",
        f"  theta        = {theta:.4g}   (cap {theory.theta_accuracy_cap(constants.sigma_bar_sq):.4g})",
        f"  mu           = {mu:.4g}",
        f"  Theta        = {factor:.4g}",
    ]
    if factor > 0:
        T = constants.delta0 / (factor * eps)
        lines.append(f"  predicted T  = {T:.4g}  for eps = {eps:g}")
    else:
        lines.append("  Theta <= 0: Theorem 1 gives no guarantee at these knobs")
    return "\n".join(lines)
