"""Stochastic gradient estimators: SGD, SVRG (8b), SARAH (8a).

An estimator is stateful across one *inner loop* (one global iteration
``s`` on one device): :meth:`start_epoch` receives the anchor point and
its full local gradient (Alg. 1 lines 3-4), then :meth:`estimate`
produces ``v_t`` for each sampled minibatch.

The estimators evaluate the model's minibatch gradient at whichever
points their recursion requires:

* SGD    — ``v_t = g_B(w_t)``                      (1 evaluation/step)
* SVRG   — ``v_t = g_B(w_t) - g_B(w_0) + v_0``     (2 evaluations/step)
* SARAH  — ``v_t = g_B(w_t) - g_B(w_{t-1}) + v_{t-1}`` (2 evaluations/step)

``num_evaluations`` counts minibatch gradient evaluations, which is the
computation-delay unit ``d_cmp`` of §4.3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import Model


class GradientEstimator(ABC):
    """Stateful inner-loop gradient estimator."""

    #: human-readable identifier used by factories and result records
    name: str = "abstract"

    def __init__(self) -> None:
        self.num_evaluations = 0

    @abstractmethod
    def start_epoch(self, w0: np.ndarray, full_grad: np.ndarray) -> np.ndarray:
        """Begin an inner loop at anchor ``w0`` with ``v_0 = full_grad``.

        Returns ``v_0`` (a defensive copy — the caller may mutate it).
        """

    @abstractmethod
    def estimate(
        self,
        model: Model,
        X_batch: np.ndarray,
        y_batch: np.ndarray,
        w_t: np.ndarray,
    ) -> np.ndarray:
        """Produce ``v_t`` for the current iterate and minibatch."""

    def reset_counter(self) -> None:
        """Zero the gradient-evaluation counter."""
        self.num_evaluations = 0


class SGDEstimator(GradientEstimator):
    """Vanilla stochastic gradient: ``v_t = g_B(w_t)`` (no reduction)."""

    name = "sgd"

    def start_epoch(self, w0: np.ndarray, full_grad: np.ndarray) -> np.ndarray:
        return np.array(full_grad, dtype=np.float64, copy=True)

    def estimate(self, model, X_batch, y_batch, w_t):
        self.num_evaluations += 1
        return model.gradient(w_t, X_batch, y_batch)


class SVRGEstimator(GradientEstimator):
    """Variance-reduced gradient anchored at ``w_0`` (eq. (8b))."""

    name = "svrg"

    def __init__(self) -> None:
        super().__init__()
        self._w0: Optional[np.ndarray] = None
        self._v0: Optional[np.ndarray] = None

    def start_epoch(self, w0, full_grad):
        self._w0 = np.array(w0, dtype=np.float64, copy=True)
        self._v0 = np.array(full_grad, dtype=np.float64, copy=True)
        return self._v0.copy()

    def estimate(self, model, X_batch, y_batch, w_t):
        if self._w0 is None or self._v0 is None:
            raise ConfigurationError("estimate() called before start_epoch()")
        self.num_evaluations += 2
        g_now = model.gradient(w_t, X_batch, y_batch)
        g_anchor = model.gradient(self._w0, X_batch, y_batch)
        return g_now - g_anchor + self._v0


class SARAHEstimator(GradientEstimator):
    """Recursive stochastic gradient (eq. (8a)).

    Unlike SVRG, the control variate tracks the *previous iterate*, so
    the estimator keeps ``(w_{t-1}, v_{t-1})`` and updates them on every
    call.
    """

    name = "sarah"

    def __init__(self) -> None:
        super().__init__()
        self._w_prev: Optional[np.ndarray] = None
        self._v_prev: Optional[np.ndarray] = None

    def start_epoch(self, w0, full_grad):
        self._w_prev = np.array(w0, dtype=np.float64, copy=True)
        self._v_prev = np.array(full_grad, dtype=np.float64, copy=True)
        return self._v_prev.copy()

    def estimate(self, model, X_batch, y_batch, w_t):
        if self._w_prev is None or self._v_prev is None:
            raise ConfigurationError("estimate() called before start_epoch()")
        self.num_evaluations += 2
        g_now = model.gradient(w_t, X_batch, y_batch)
        g_prev = model.gradient(self._w_prev, X_batch, y_batch)
        v_t = g_now - g_prev + self._v_prev
        self._w_prev = np.array(w_t, dtype=np.float64, copy=True)
        self._v_prev = v_t
        return v_t.copy()


class BatchedGradientEstimator(ABC):
    """Stacked-cohort counterpart of :class:`GradientEstimator`.

    Operates on ``(K, D)`` parameter/gradient stacks — one row per
    client of a homogeneous cohort — with minibatch gradients supplied
    by a :class:`repro.models.batched.BatchKernel`-shaped callable.
    Row ``k`` of every update reproduces, bit for bit, the arithmetic
    the sequential estimator performs for client ``k``: the recursions
    (8a)/(8b) are elementwise, so stacking K clients changes nothing
    but the array rank.

    ``num_evaluations`` counts minibatch gradient evaluations *per
    client* (the same number for every row), matching the sequential
    estimator's ``d_cmp`` bookkeeping.
    """

    #: mirrors the sequential estimator's ``name``
    name: str = "abstract"

    def __init__(self) -> None:
        self.num_evaluations = 0

    @abstractmethod
    def start_epoch(self, W0: np.ndarray, full_grads: np.ndarray) -> np.ndarray:
        """Begin K inner loops at anchor stack ``W0`` with ``V_0`` rows."""

    @abstractmethod
    def estimate(
        self,
        kernel,
        X_batch: np.ndarray,
        y_batch: np.ndarray,
        W_t: np.ndarray,
    ) -> np.ndarray:
        """Produce the ``(K, D)`` stack of ``v_t`` for the minibatch stack."""


class BatchedSGDEstimator(BatchedGradientEstimator):
    """Stacked vanilla stochastic gradient: ``v_t = g_B(w_t)`` per row.

    The returned stack is a reused buffer, valid until the next
    ``estimate`` call (all batched estimators share this contract — the
    cohort solvers consume ``v_t`` before sampling the next minibatch).
    """

    name = "sgd"

    def __init__(self) -> None:
        super().__init__()
        self._g: Optional[np.ndarray] = None

    def start_epoch(self, W0, full_grads):
        self._g = np.empty_like(np.asarray(full_grads, dtype=np.float64))
        return np.array(full_grads, dtype=np.float64, copy=True)

    def estimate(self, kernel, X_batch, y_batch, W_t):
        self.num_evaluations += 1
        if self._g is None or self._g.shape != W_t.shape:
            self._g = np.empty_like(W_t)
        return kernel.gradient_stack(W_t, X_batch, y_batch, out=self._g)


class BatchedSVRGEstimator(BatchedGradientEstimator):
    """Stacked SVRG (8b): each row anchored at its client's ``w_0``.

    ``estimate`` computes ``(g_now - g_anchor) + v_0`` with the same
    elementwise operation order as the sequential estimator, into
    reused buffers — each returned row is bit-identical and valid until
    the next ``estimate`` call.
    """

    name = "svrg"

    def __init__(self) -> None:
        super().__init__()
        self._W0: Optional[np.ndarray] = None
        self._V0: Optional[np.ndarray] = None
        self._g_now: Optional[np.ndarray] = None
        self._g_anchor: Optional[np.ndarray] = None

    def start_epoch(self, W0, full_grads):
        self._W0 = np.array(W0, dtype=np.float64, copy=True)
        self._V0 = np.array(full_grads, dtype=np.float64, copy=True)
        self._g_now = np.empty_like(self._V0)
        self._g_anchor = np.empty_like(self._V0)
        return self._V0.copy()

    def estimate(self, kernel, X_batch, y_batch, W_t):
        if self._W0 is None or self._V0 is None:
            raise ConfigurationError("estimate() called before start_epoch()")
        self.num_evaluations += 2
        g_now = kernel.gradient_stack(W_t, X_batch, y_batch, out=self._g_now)
        g_anchor = kernel.gradient_stack(
            self._W0, X_batch, y_batch, out=self._g_anchor
        )
        np.subtract(g_now, g_anchor, out=g_now)
        np.add(g_now, self._V0, out=g_now)
        return g_now


class BatchedSARAHEstimator(BatchedGradientEstimator):
    """Stacked SARAH (8a): rows track their client's previous iterate.

    Buffers rotate: the stack holding ``v_t`` becomes the retained
    ``v_{t-1}`` of the next step, and the retired ``v_{t-2}`` buffer is
    recycled for the next gradient evaluation.  Operation order matches
    the sequential ``g_now - g_prev + v_prev`` exactly.
    """

    name = "sarah"

    def __init__(self) -> None:
        super().__init__()
        self._W_prev: Optional[np.ndarray] = None
        self._V_prev: Optional[np.ndarray] = None
        self._g_now: Optional[np.ndarray] = None
        self._g_prev: Optional[np.ndarray] = None

    def start_epoch(self, W0, full_grads):
        self._W_prev = np.array(W0, dtype=np.float64, copy=True)
        self._V_prev = np.array(full_grads, dtype=np.float64, copy=True)
        self._g_now = np.empty_like(self._V_prev)
        self._g_prev = np.empty_like(self._V_prev)
        return self._V_prev.copy()

    def estimate(self, kernel, X_batch, y_batch, W_t):
        if self._W_prev is None or self._V_prev is None:
            raise ConfigurationError("estimate() called before start_epoch()")
        self.num_evaluations += 2
        g_now = kernel.gradient_stack(W_t, X_batch, y_batch, out=self._g_now)
        g_prev = kernel.gradient_stack(
            self._W_prev, X_batch, y_batch, out=self._g_prev
        )
        np.subtract(g_now, g_prev, out=g_now)
        np.add(g_now, self._V_prev, out=g_now)  # g_now holds v_t
        np.copyto(self._W_prev, W_t)
        # Rotate: v_t becomes the retained v_prev; the old v_prev
        # buffer is dead and becomes the next step's g_now scratch.
        self._V_prev, self._g_now = g_now, self._V_prev
        return g_now


_ESTIMATORS = {
    "sgd": SGDEstimator,
    "svrg": SVRGEstimator,
    "sarah": SARAHEstimator,
}

#: sequential estimator class -> its stacked-cohort counterpart
BATCHED_ESTIMATORS = {
    SGDEstimator: BatchedSGDEstimator,
    SVRGEstimator: BatchedSVRGEstimator,
    SARAHEstimator: BatchedSARAHEstimator,
}


def make_estimator(name: str) -> GradientEstimator:
    """Instantiate an estimator by name (``sgd``/``svrg``/``sarah``)."""
    try:
        return _ESTIMATORS[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown estimator {name!r}; choices: {sorted(_ESTIMATORS)}"
        ) from None


def make_batched_estimator(sequential_cls: type) -> BatchedGradientEstimator:
    """The stacked counterpart of a sequential estimator class."""
    try:
        return BATCHED_ESTIMATORS[sequential_cls]()
    except KeyError:
        raise ConfigurationError(
            f"no batched counterpart for estimator {sequential_cls.__name__}"
        ) from None
