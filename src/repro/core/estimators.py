"""Stochastic gradient estimators: SGD, SVRG (8b), SARAH (8a).

An estimator is stateful across one *inner loop* (one global iteration
``s`` on one device): :meth:`start_epoch` receives the anchor point and
its full local gradient (Alg. 1 lines 3-4), then :meth:`estimate`
produces ``v_t`` for each sampled minibatch.

The estimators evaluate the model's minibatch gradient at whichever
points their recursion requires:

* SGD    — ``v_t = g_B(w_t)``                      (1 evaluation/step)
* SVRG   — ``v_t = g_B(w_t) - g_B(w_0) + v_0``     (2 evaluations/step)
* SARAH  — ``v_t = g_B(w_t) - g_B(w_{t-1}) + v_{t-1}`` (2 evaluations/step)

``num_evaluations`` counts minibatch gradient evaluations, which is the
computation-delay unit ``d_cmp`` of §4.3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import Model


class GradientEstimator(ABC):
    """Stateful inner-loop gradient estimator."""

    #: human-readable identifier used by factories and result records
    name: str = "abstract"

    def __init__(self) -> None:
        self.num_evaluations = 0

    @abstractmethod
    def start_epoch(self, w0: np.ndarray, full_grad: np.ndarray) -> np.ndarray:
        """Begin an inner loop at anchor ``w0`` with ``v_0 = full_grad``.

        Returns ``v_0`` (a defensive copy — the caller may mutate it).
        """

    @abstractmethod
    def estimate(
        self,
        model: Model,
        X_batch: np.ndarray,
        y_batch: np.ndarray,
        w_t: np.ndarray,
    ) -> np.ndarray:
        """Produce ``v_t`` for the current iterate and minibatch."""

    def reset_counter(self) -> None:
        """Zero the gradient-evaluation counter."""
        self.num_evaluations = 0


class SGDEstimator(GradientEstimator):
    """Vanilla stochastic gradient: ``v_t = g_B(w_t)`` (no reduction)."""

    name = "sgd"

    def start_epoch(self, w0: np.ndarray, full_grad: np.ndarray) -> np.ndarray:
        return np.array(full_grad, dtype=np.float64, copy=True)

    def estimate(self, model, X_batch, y_batch, w_t):
        self.num_evaluations += 1
        return model.gradient(w_t, X_batch, y_batch)


class SVRGEstimator(GradientEstimator):
    """Variance-reduced gradient anchored at ``w_0`` (eq. (8b))."""

    name = "svrg"

    def __init__(self) -> None:
        super().__init__()
        self._w0: Optional[np.ndarray] = None
        self._v0: Optional[np.ndarray] = None

    def start_epoch(self, w0, full_grad):
        self._w0 = np.array(w0, dtype=np.float64, copy=True)
        self._v0 = np.array(full_grad, dtype=np.float64, copy=True)
        return self._v0.copy()

    def estimate(self, model, X_batch, y_batch, w_t):
        if self._w0 is None or self._v0 is None:
            raise ConfigurationError("estimate() called before start_epoch()")
        self.num_evaluations += 2
        g_now = model.gradient(w_t, X_batch, y_batch)
        g_anchor = model.gradient(self._w0, X_batch, y_batch)
        return g_now - g_anchor + self._v0


class SARAHEstimator(GradientEstimator):
    """Recursive stochastic gradient (eq. (8a)).

    Unlike SVRG, the control variate tracks the *previous iterate*, so
    the estimator keeps ``(w_{t-1}, v_{t-1})`` and updates them on every
    call.
    """

    name = "sarah"

    def __init__(self) -> None:
        super().__init__()
        self._w_prev: Optional[np.ndarray] = None
        self._v_prev: Optional[np.ndarray] = None

    def start_epoch(self, w0, full_grad):
        self._w_prev = np.array(w0, dtype=np.float64, copy=True)
        self._v_prev = np.array(full_grad, dtype=np.float64, copy=True)
        return self._v_prev.copy()

    def estimate(self, model, X_batch, y_batch, w_t):
        if self._w_prev is None or self._v_prev is None:
            raise ConfigurationError("estimate() called before start_epoch()")
        self.num_evaluations += 2
        g_now = model.gradient(w_t, X_batch, y_batch)
        g_prev = model.gradient(self._w_prev, X_batch, y_batch)
        v_t = g_now - g_prev + self._v_prev
        self._w_prev = np.array(w_t, dtype=np.float64, copy=True)
        self._v_prev = v_t
        return v_t.copy()


_ESTIMATORS = {
    "sgd": SGDEstimator,
    "svrg": SVRGEstimator,
    "sarah": SARAHEstimator,
}


def make_estimator(name: str) -> GradientEstimator:
    """Instantiate an estimator by name (``sgd``/``svrg``/``sarah``)."""
    try:
        return _ESTIMATORS[name.lower()]()
    except KeyError:
        raise ConfigurationError(
            f"unknown estimator {name!r}; choices: {sorted(_ESTIMATORS)}"
        ) from None
