"""Step-size schedules.

The paper fixes ``eta = 1/(beta L)`` and argues (footnote 1) that "using
a fixed step size is more practical than diminishing step size".  This
module supplies the diminishing alternatives so that claim can be tested
rather than assumed: classical ``eta_0/(1+kt)`` and ``eta_0/sqrt(1+t)``
decays, exponential decay, and the constant baseline — plus a local
solver (:class:`ScheduledSGDLocalSolver`) that consumes any of them.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.core.proximal import QuadraticProx
from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.utils.validation import check_positive


class StepSchedule(ABC):
    """Maps a global step counter to a step size."""

    @abstractmethod
    def __call__(self, step: int) -> float:
        """Step size at (zero-based) step ``step``."""


class ConstantSchedule(StepSchedule):
    """The paper's choice: ``eta_t = eta_0``."""

    def __init__(self, eta0: float) -> None:
        self.eta0 = check_positive("eta0", eta0)

    def __call__(self, step: int) -> float:
        return self.eta0


class InverseTimeSchedule(StepSchedule):
    """``eta_t = eta_0 / (1 + decay * t)`` — the classical SGD decay."""

    def __init__(self, eta0: float, decay: float = 0.1) -> None:
        self.eta0 = check_positive("eta0", eta0)
        self.decay = check_positive("decay", decay)

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ConfigurationError("step must be non-negative")
        return self.eta0 / (1.0 + self.decay * step)


class SqrtSchedule(StepSchedule):
    """``eta_t = eta_0 / sqrt(1 + t)`` — the rate-optimal non-convex decay."""

    def __init__(self, eta0: float) -> None:
        self.eta0 = check_positive("eta0", eta0)

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ConfigurationError("step must be non-negative")
        return self.eta0 / math.sqrt(1.0 + step)


class ExponentialSchedule(StepSchedule):
    """``eta_t = eta_0 * gamma^t`` with ``gamma`` in (0, 1]."""

    def __init__(self, eta0: float, gamma: float = 0.99) -> None:
        self.eta0 = check_positive("eta0", eta0)
        if not 0.0 < gamma <= 1.0:
            raise ConfigurationError(f"gamma must be in (0,1], got {gamma}")
        self.gamma = gamma

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ConfigurationError("step must be non-negative")
        return self.eta0 * self.gamma**step


class ScheduledSGDLocalSolver(LocalSolver):
    """Proximal SGD whose step size follows a schedule across *all*
    steps the solver has ever taken (the counter persists across rounds,
    which is what makes a diminishing schedule diminish globally).

    With :class:`ConstantSchedule` this reduces to
    :class:`repro.core.local.FedProxLocalSolver` semantics.
    """

    name = "scheduled-sgd"

    def __init__(
        self,
        *,
        schedule: StepSchedule,
        num_steps: int,
        batch_size: int,
        mu: float = 0.0,
    ) -> None:
        super().__init__(
            step_size=schedule(0), num_steps=num_steps, batch_size=batch_size
        )
        self.schedule = schedule
        self.mu = check_positive("mu", mu, strict=False)
        self.global_step = 0

    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        n = X.shape[0]
        prox = QuadraticProx(self.mu, w_global)
        start_grad = model.gradient(w_global, X, y)
        w = np.array(w_global, dtype=np.float64, copy=True)
        first_eta = self.schedule(self.global_step)
        for _ in range(self.num_steps):
            eta = self.schedule(self.global_step)
            idx = self._sample_batch(rng, n)
            g = model.gradient(w, X[idx], y[idx])
            w = prox(w - eta * g, eta)
            self.global_step += 1
        final = model.gradient(w, X, y) + prox.gradient(w)
        return LocalSolveResult(
            w_local=w,
            num_steps=self.num_steps,
            num_gradient_evaluations=self.num_steps + 2,
            start_grad_norm=float(np.linalg.norm(start_grad)),
            final_surrogate_grad_norm=float(np.linalg.norm(final)),
            diagnostics={"first_eta": first_eta, "global_step": float(self.global_step)},
        )
