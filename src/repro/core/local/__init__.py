"""Local solvers: the per-device inner loops of federated algorithms."""

from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.core.local.sgd import FedAvgLocalSolver
from repro.core.local.proxsgd import FedProxLocalSolver
from repro.core.local.proxvr import FedProxVRLocalSolver
from repro.core.local.gd import GDLocalSolver
from repro.core.local.personalized import PersonalizedProxLocalSolver

__all__ = [
    "FedAvgLocalSolver",
    "FedProxLocalSolver",
    "FedProxVRLocalSolver",
    "GDLocalSolver",
    "PersonalizedProxLocalSolver",
    "LocalSolveResult",
    "LocalSolver",
]
