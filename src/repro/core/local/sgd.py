"""FedAvg's local update: plain minibatch SGD on ``F_n`` (McMahan et al.)."""

from __future__ import annotations

import numpy as np

from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.models.base import Model


class FedAvgLocalSolver(LocalSolver):
    """``num_steps`` steps of ``w <- w - eta g_B(w)`` from the global model.

    This is the SGD-based baseline the paper compares against in every
    experiment; it uses the same ``eta = 1/(beta L)`` step size so the
    comparison isolates the estimator/prox design.
    """

    name = "fedavg"

    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        n = X.shape[0]
        start_loss, start_grad = model.loss_and_gradient(w_global, X, y)
        start_norm = float(np.linalg.norm(start_grad))
        w = np.array(w_global, dtype=np.float64, copy=True)
        evals = 1  # the diagnostic full gradient above
        for _ in range(self.num_steps):
            idx = self._sample_batch(rng, n)
            g = model.gradient(w, X[idx], y[idx])
            evals += 1
            w -= self.step_size * g
        return self._record_solve_metrics(
            LocalSolveResult(
                w_local=w,
                num_steps=self.num_steps,
                num_gradient_evaluations=evals,
                start_grad_norm=start_norm,
                diagnostics={"start_loss": start_loss},
            )
        )

    def solve_cohort(self, models, shards, w_global, rngs, kernel):
        """Stacked-cohort FedAvg: ``W <- W - eta G`` on a ``(K, D)`` stack.

        The anchor diagnostics (full-shard loss/gradient) stay
        per-client calls — shard sizes are heterogeneous — while the
        ``tau``-step minibatch loop runs as stacked kernel evaluations.
        """
        if kernel is None:
            return None
        geometry = self._cohort_geometry(shards)
        if geometry is None:
            return None
        batch, features = geometry
        K = len(shards)
        w_global = np.asarray(w_global, dtype=np.float64)

        start_losses = np.empty(K)
        start_norms = np.empty(K)
        for k, ((X, y), model) in enumerate(zip(shards, models)):
            loss, grad = model.loss_and_gradient(w_global, X, y)
            start_losses[k] = loss
            start_norms[k] = float(np.linalg.norm(grad))

        W = np.repeat(w_global[None, :], K, axis=0)
        X_batch = np.empty((K, batch, features), dtype=np.float64)
        y_batch = np.empty((K, batch), dtype=np.intp)
        G = np.empty_like(W)
        T = np.empty_like(W)
        for _ in range(self.num_steps):
            self._gather_minibatches(shards, rngs, X_batch, y_batch)
            kernel.gradient_stack(W, X_batch, y_batch, out=G)
            # Same ops as ``W - step * G``: scale, then subtract.
            np.multiply(G, self.step_size, out=T)
            np.subtract(W, T, out=W)

        return [
            self._record_solve_metrics(
                LocalSolveResult(
                    w_local=np.array(W[k], dtype=np.float64, copy=True),
                    num_steps=self.num_steps,
                    num_gradient_evaluations=1 + self.num_steps,
                    start_grad_norm=start_norms[k],
                    diagnostics={"start_loss": float(start_losses[k])},
                )
            )
            for k in range(K)
        ]
