"""FedAvg's local update: plain minibatch SGD on ``F_n`` (McMahan et al.)."""

from __future__ import annotations

import numpy as np

from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.models.base import Model


class FedAvgLocalSolver(LocalSolver):
    """``num_steps`` steps of ``w <- w - eta g_B(w)`` from the global model.

    This is the SGD-based baseline the paper compares against in every
    experiment; it uses the same ``eta = 1/(beta L)`` step size so the
    comparison isolates the estimator/prox design.
    """

    name = "fedavg"

    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        n = X.shape[0]
        start_loss, start_grad = model.loss_and_gradient(w_global, X, y)
        start_norm = float(np.linalg.norm(start_grad))
        w = np.array(w_global, dtype=np.float64, copy=True)
        evals = 1  # the diagnostic full gradient above
        for _ in range(self.num_steps):
            idx = self._sample_batch(rng, n)
            g = model.gradient(w, X[idx], y[idx])
            evals += 1
            w -= self.step_size * g
        return self._record_solve_metrics(
            LocalSolveResult(
                w_local=w,
                num_steps=self.num_steps,
                num_gradient_evaluations=evals,
                start_grad_norm=start_norm,
                diagnostics={"start_loss": start_loss},
            )
        )
