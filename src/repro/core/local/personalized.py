"""Personalized proximal local solver (pFedMe-style extension).

A natural extension of the paper's machinery (and the direction its
authors later took with pFedMe): instead of treating the proximal
surrogate as a means to approximate the global minimizer, *keep* each
device's proximal solution as its personalized model

``theta_n(w) = argmin_theta F_n(theta) + (mu/2)||theta - w||^2``

(the Moreau-envelope personalization), while the global model tracks
the average of the personalized solutions.  The inner solve reuses the
identical proximal-VR loop as FedProxVR, so this solver is ~30 lines on
top of :class:`FedProxVRLocalSolver` — demonstrating the composability
the library is designed around.

The server-visible ``w_local`` is a convex combination
``w - lr_global * mu * (w - theta_n)`` (the pFedMe outer update written
as a local model so the standard weighted-average server applies).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.core.estimators import GradientEstimator
from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.core.local.proxvr import FedProxVRLocalSolver
from repro.models.base import Model
from repro.utils.validation import check_in_range, check_positive


class PersonalizedProxLocalSolver(LocalSolver):
    """Moreau-envelope personalization on top of the FedProxVR inner loop.

    Parameters
    ----------
    mu:
        Personalization strength: large ``mu`` ties personalized models
        to the global one; small ``mu`` lets them specialize.
    global_lr:
        The outer step ``lr_global`` applied to ``mu (w - theta_n)``;
        ``global_lr * mu <= 1`` keeps the implied local model a convex
        combination of ``w`` and ``theta_n``.
    """

    name = "pfedme"

    def __init__(
        self,
        *,
        step_size: float,
        num_steps: int,
        batch_size: int,
        mu: float,
        global_lr: float = 1.0,
        estimator: Union[str, GradientEstimator] = "svrg",
    ) -> None:
        super().__init__(
            step_size=step_size, num_steps=num_steps, batch_size=batch_size
        )
        self.mu = check_positive("mu", mu)
        self.global_lr = check_positive("global_lr", global_lr)
        check_in_range("global_lr * mu", self.global_lr * self.mu, 0.0, 1.0,
                       inclusive="right")
        self._inner = FedProxVRLocalSolver(
            step_size=step_size,
            num_steps=num_steps,
            batch_size=batch_size,
            mu=mu,
            estimator=estimator,
            iterate_selection="last",
            evaluate_final=True,
        )
        self.last_personalized: Optional[np.ndarray] = None

    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        inner = self._inner.solve(model, X, y, w_global, rng)
        theta_n = inner.w_local
        self.last_personalized = theta_n
        # Outer update w <- w - lr * mu * (w - theta_n), expressed as a
        # local model so the standard aggregation rule applies.
        step = self.global_lr * self.mu
        w_local = (1.0 - step) * np.asarray(w_global, dtype=np.float64) + step * theta_n
        return LocalSolveResult(
            w_local=w_local,
            num_steps=inner.num_steps,
            num_gradient_evaluations=inner.num_gradient_evaluations,
            start_grad_norm=inner.start_grad_norm,
            final_surrogate_grad_norm=inner.final_surrogate_grad_norm,
            diagnostics={
                **inner.diagnostics,
                "personalized_distance": float(
                    np.linalg.norm(theta_n - np.asarray(w_global))
                ),
            },
        )

    def personalized_model(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """The device's personalized parameters ``theta_n(w_global)``."""
        return self._inner.solve(model, X, y, w_global, rng).w_local
