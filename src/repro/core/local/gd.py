"""Full-gradient local solver (the GD baseline of Wang et al. [31]).

Runs ``num_steps`` deterministic proximal gradient steps on the device
surrogate.  Its per-step cost scales with the full local dataset — the
computational argument the paper's introduction makes against GD — so
its ``num_gradient_evaluations`` are weighted by ``D_n / batch_size``
when converted to comparable compute-delay units.
"""

from __future__ import annotations

import numpy as np

from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.core.proximal import QuadraticProx
from repro.models.base import Model
from repro.utils.validation import check_positive


class GDLocalSolver(LocalSolver):
    """Deterministic (proximal) gradient descent on ``J_n``."""

    name = "gd"

    def __init__(
        self,
        *,
        step_size: float,
        num_steps: int,
        batch_size: int = 1,
        mu: float = 0.0,
    ) -> None:
        super().__init__(
            step_size=step_size, num_steps=num_steps, batch_size=batch_size
        )
        self.mu = check_positive("mu", mu, strict=False)

    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        del rng  # deterministic solver
        n = X.shape[0]
        prox = QuadraticProx(self.mu, w_global)
        w = np.array(w_global, dtype=np.float64, copy=True)
        start_norm = None
        # Each step costs a full pass: D_n / batch_size minibatch-units.
        full_pass_units = max(1, int(np.ceil(n / self.batch_size)))
        for step in range(self.num_steps):
            g = model.gradient(w, X, y)
            if step == 0:
                start_norm = float(np.linalg.norm(g))
            w = prox(w - self.step_size * g, self.step_size)
        if start_norm is None:
            g = model.gradient(w, X, y)
            start_norm = float(np.linalg.norm(g))
        final_grad = model.gradient(w, X, y) + prox.gradient(w)
        return self._record_solve_metrics(
            LocalSolveResult(
                w_local=w,
                num_steps=self.num_steps,
                num_gradient_evaluations=(self.num_steps + 1) * full_pass_units,
                start_grad_norm=start_norm,
                final_surrogate_grad_norm=float(np.linalg.norm(final_grad)),
            )
        )
