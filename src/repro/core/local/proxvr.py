"""FedProxVR's local solver — Alg. 1 lines 3-10.

One inner loop on device ``n`` at global iteration ``s``:

1. anchor at the broadcast model: ``w^0 = w_bar``, ``v^0 = grad F_n(w^0)``
   (full local gradient, lines 3-4);
2. first proximal step ``w^1 = prox_{eta h_s}(w^0 - eta v^0)``;
3. for ``t = 1..tau``: sample a minibatch, update ``v^t`` by SARAH (8a)
   or SVRG (8b), step ``w^{t+1} = prox_{eta h_s}(w^t - eta v^t)``;
4. return ``w^{t'}`` with ``t'`` uniform over ``{0..tau}`` (line 10) —
   or the last / averaged iterate, selectable for the ablation study.

Optional ``theta``-stopping turns the fixed-``tau`` loop into the
inexact criterion (11): every ``check_interval`` steps the solver
evaluates ``||grad J_n(w^t)||`` and stops once it is below
``theta ||grad F_n(w_bar)||``.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.core.estimators import (
    GradientEstimator,
    make_batched_estimator,
    make_estimator,
)
from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.core.proximal import QuadraticProx
from repro.exceptions import ConfigurationError
from repro.models.base import Model
from repro.utils.validation import check_choice, check_positive, check_positive_int

_SELECTIONS = ("random", "last", "average")


class FedProxVRLocalSolver(LocalSolver):
    """Proximal variance-reduced local solver (the paper's contribution).

    Parameters
    ----------
    estimator:
        ``"svrg"``, ``"sarah"`` (or an estimator instance / ``"sgd"`` for
        the degenerate prox-SGD variant).
    mu:
        Proximal penalty of ``h_s`` (eq. (7)); ``mu = 0`` disables the
        prox, reproducing the Fig. 4 divergence setting.
    iterate_selection:
        ``"last"`` (default — what practical implementations return),
        ``"random"`` (Alg. 1 line 10, the choice the analysis needs), or
        ``"average"``.  The theory-validation tests use ``"random"``.
    theta:
        Optional local accuracy for criterion-(11) early stopping.
    check_interval:
        How often (in steps) the stopping criterion is evaluated.
    evaluate_final:
        When true (default), spend one extra full gradient to report the
        achieved ``||grad J_n||`` so experiments can audit (11).
    """

    name = "fedproxvr"

    def __init__(
        self,
        *,
        step_size: float,
        num_steps: int,
        batch_size: int,
        mu: float,
        estimator: Union[str, GradientEstimator] = "sarah",
        iterate_selection: str = "last",
        theta: Optional[float] = None,
        check_interval: int = 10,
        evaluate_final: bool = True,
    ) -> None:
        super().__init__(
            step_size=step_size, num_steps=num_steps, batch_size=batch_size
        )
        self.mu = check_positive("mu", mu, strict=False)
        # Estimators are stateful across one inner loop, and one solver
        # instance serves every client (possibly concurrently), so each
        # solve() gets a fresh estimator built from this prototype.
        if isinstance(estimator, GradientEstimator):
            self._estimator_cls = type(estimator)
        else:
            self._estimator_cls = type(make_estimator(estimator))
        self.estimator = self._estimator_cls()
        self.iterate_selection = check_choice(
            "iterate_selection", iterate_selection, _SELECTIONS
        )
        if theta is not None:
            theta = float(theta)
            if not 0.0 < theta < 1.0:
                raise ConfigurationError(f"theta must be in (0, 1), got {theta}")
        self.theta = theta
        self.check_interval = check_positive_int("check_interval", check_interval)
        self.evaluate_final = bool(evaluate_final)
        self.name = f"fedproxvr-{self.estimator.name}"

    def _surrogate_grad_norm(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w: np.ndarray,
        prox: QuadraticProx,
    ) -> float:
        grad_j = model.gradient(w, X, y) + prox.gradient(w)
        return float(np.linalg.norm(grad_j))

    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        n = X.shape[0]
        eta = self.step_size
        prox = QuadraticProx(self.mu, w_global)
        estimator = self._estimator_cls()  # fresh state per inner loop

        # Lines 3-4: anchor and first proximal step.
        w0 = np.array(w_global, dtype=np.float64, copy=True)
        full_grad = model.gradient(w0, X, y)
        start_norm = float(np.linalg.norm(full_grad))
        v = estimator.start_epoch(w0, full_grad)
        evals = 1 + estimator.num_evaluations

        iterates: List[np.ndarray] = [w0]
        w = prox(w0 - eta * v, eta)
        iterates.append(w)

        steps_taken = 0
        stopped_early = False
        target = self.theta * start_norm if self.theta is not None else None
        # Lines 5-9: tau stochastic proximal VR steps.
        for t in range(1, self.num_steps + 1):
            idx = self._sample_batch(rng, n)
            v = estimator.estimate(model, X[idx], y[idx], w)
            w = prox(w - eta * v, eta)
            iterates.append(w)
            steps_taken = t
            if target is not None and t % self.check_interval == 0:
                norm_j = self._surrogate_grad_norm(model, X, y, w, prox)
                evals += 1
                if norm_j <= target:
                    stopped_early = True
                    break

        evals = 1 + estimator.num_evaluations
        if target is not None:
            evals += steps_taken // self.check_interval

        # Line 10: iterate selection over {w^0 .. w^tau}.
        if self.iterate_selection == "random":
            candidates = iterates[:-1] if len(iterates) > 1 else iterates
            w_out = candidates[int(rng.integers(0, len(candidates)))]
        elif self.iterate_selection == "last":
            w_out = iterates[-1]
        else:  # average
            w_out = np.mean(np.stack(iterates[1:]), axis=0)

        final_norm: Optional[float] = None
        if self.evaluate_final:
            final_norm = self._surrogate_grad_norm(model, X, y, w_out, prox)
            evals += 1

        return self._record_solve_metrics(
            LocalSolveResult(
                w_local=np.array(w_out, dtype=np.float64, copy=True),
                num_steps=steps_taken,
                num_gradient_evaluations=evals,
                start_grad_norm=start_norm,
                final_surrogate_grad_norm=final_norm,
                diagnostics={
                    "stopped_early": float(stopped_early),
                    "estimator_evals": float(estimator.num_evaluations),
                },
            )
        )

    def solve_cohort(self, models, shards, w_global, rngs, kernel):
        """Stacked-cohort Alg. 1: SVRG/SARAH recursions over a (K, D) stack.

        Anchor full gradients (lines 3-4) stay per-client calls on the
        heterogeneous shards; the ``tau`` stochastic steps (lines 5-9)
        run as stacked kernel/estimator/prox operations; iterate
        selection (line 10) draws from each client's own stream in
        client order, exactly as K sequential solves would.

        ``theta``-stopping (criterion (11)) makes control flow
        data-dependent per client, so that configuration reports "no
        batched path" and falls back to sequential solves.
        """
        if kernel is None or self.theta is not None:
            return None
        geometry = self._cohort_geometry(shards)
        if geometry is None:
            return None
        batch, features = geometry
        K = len(shards)
        eta = self.step_size
        w_global = np.asarray(w_global, dtype=np.float64)
        prox = QuadraticProx(self.mu, w_global)
        estimator = make_batched_estimator(self._estimator_cls)

        # Lines 3-4: anchor stack and per-client full local gradients.
        W0 = np.repeat(w_global[None, :], K, axis=0)
        full_grads = np.empty((K, w_global.size), dtype=np.float64)
        start_norms = np.empty(K)
        for k, ((X, y), model) in enumerate(zip(shards, models)):
            full_grads[k] = model.gradient(W0[k], X, y)
            start_norms[k] = float(np.linalg.norm(full_grads[k]))
        V = estimator.start_epoch(W0, full_grads)

        # Iterates are only materialized when line 10 needs them.
        keep_iterates = self.iterate_selection != "last"
        iterates: List[np.ndarray] = [W0] if keep_iterates else []
        # Double-buffered update: same ops as ``prox(W - eta * V)`` —
        # scale, subtract, prox — with the result landing in the spare
        # buffer, which then becomes the current iterate.
        W = np.empty_like(W0)
        T = np.empty_like(W0)
        np.multiply(V, eta, out=W)
        np.subtract(W0, W, out=W)
        prox.apply_(W, eta)
        if keep_iterates:
            iterates.append(W.copy())

        X_batch = np.empty((K, batch, features), dtype=np.float64)
        y_batch = np.empty((K, batch), dtype=np.intp)
        # Lines 5-9: tau stochastic proximal VR steps, stacked.
        for _ in range(1, self.num_steps + 1):
            self._gather_minibatches(shards, rngs, X_batch, y_batch)
            V = estimator.estimate(kernel, X_batch, y_batch, W)
            np.multiply(V, eta, out=T)
            np.subtract(W, T, out=T)
            prox.apply_(T, eta)
            W, T = T, W
            if keep_iterates:
                iterates.append(W.copy())
        steps_taken = self.num_steps
        evals = 1 + estimator.num_evaluations

        # Line 10: iterate selection over {w^0 .. w^tau}, per client.
        if self.iterate_selection == "random":
            candidates = iterates[:-1] if len(iterates) > 1 else iterates
            w_outs = [
                candidates[int(rngs[k].integers(0, len(candidates)))][k]
                for k in range(K)
            ]
        elif self.iterate_selection == "last":
            w_outs = [W[k] for k in range(K)]
        else:  # average
            W_mean = np.mean(np.stack(iterates[1:]), axis=0)
            w_outs = [W_mean[k] for k in range(K)]

        results = []
        for k, ((X, y), model) in enumerate(zip(shards, models)):
            final_norm: Optional[float] = None
            per_client_evals = evals
            if self.evaluate_final:
                final_norm = self._surrogate_grad_norm(
                    model, X, y, w_outs[k], prox
                )
                per_client_evals += 1
            results.append(
                self._record_solve_metrics(
                    LocalSolveResult(
                        w_local=np.array(w_outs[k], dtype=np.float64, copy=True),
                        num_steps=steps_taken,
                        num_gradient_evaluations=per_client_evals,
                        start_grad_norm=start_norms[k],
                        final_surrogate_grad_norm=final_norm,
                        diagnostics={
                            "stopped_early": 0.0,
                            "estimator_evals": float(estimator.num_evaluations),
                        },
                    )
                )
            )
        return results
