"""FedProx's local update: minibatch SGD on the proximal surrogate.

Solves ``J_n(w) = F_n(w) + (mu/2)||w - w_global||^2`` (eq. (6)) with
plain SGD steps, realized as an SGD step on ``F_n`` followed by the
closed-form quadratic prox — exactly Alg. 1's update rule with the
vanilla-SGD estimator, which is the "FedProx" point in the paper's
design space (variance reduction off, prox on).
"""

from __future__ import annotations

import numpy as np

from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.core.proximal import QuadraticProx
from repro.models.base import Model
from repro.utils.validation import check_positive


class FedProxLocalSolver(LocalSolver):
    """Proximal SGD on the device surrogate objective."""

    name = "fedprox"

    def __init__(
        self,
        *,
        step_size: float,
        num_steps: int,
        batch_size: int,
        mu: float,
    ) -> None:
        super().__init__(
            step_size=step_size, num_steps=num_steps, batch_size=batch_size
        )
        self.mu = check_positive("mu", mu, strict=False)

    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        n = X.shape[0]
        prox = QuadraticProx(self.mu, w_global)
        start_grad = model.gradient(w_global, X, y)
        start_norm = float(np.linalg.norm(start_grad))
        w = np.array(w_global, dtype=np.float64, copy=True)
        evals = 1
        for _ in range(self.num_steps):
            idx = self._sample_batch(rng, n)
            g = model.gradient(w, X[idx], y[idx])
            evals += 1
            w = prox(w - self.step_size * g, self.step_size)
        final_grad = model.gradient(w, X, y) + prox.gradient(w)
        evals += 1
        return self._record_solve_metrics(
            LocalSolveResult(
                w_local=w,
                num_steps=self.num_steps,
                num_gradient_evaluations=evals,
                start_grad_norm=start_norm,
                final_surrogate_grad_norm=float(np.linalg.norm(final_grad)),
            )
        )

    def solve_cohort(self, models, shards, w_global, rngs, kernel):
        """Stacked-cohort proximal SGD.

        The quadratic prox (10) is elementwise, so the whole cohort's
        prox step is one broadcast over the ``(K, D)`` stack against the
        shared ``(D,)`` anchor.
        """
        if kernel is None:
            return None
        geometry = self._cohort_geometry(shards)
        if geometry is None:
            return None
        batch, features = geometry
        K = len(shards)
        w_global = np.asarray(w_global, dtype=np.float64)
        prox = QuadraticProx(self.mu, w_global)

        start_norms = np.empty(K)
        for k, ((X, y), model) in enumerate(zip(shards, models)):
            start_norms[k] = float(np.linalg.norm(model.gradient(w_global, X, y)))

        W = np.repeat(w_global[None, :], K, axis=0)
        X_batch = np.empty((K, batch, features), dtype=np.float64)
        y_batch = np.empty((K, batch), dtype=np.intp)
        G = np.empty_like(W)
        T = np.empty_like(W)
        for _ in range(self.num_steps):
            self._gather_minibatches(shards, rngs, X_batch, y_batch)
            kernel.gradient_stack(W, X_batch, y_batch, out=G)
            # Same ops as ``prox(W - step * G)``: scale, subtract, prox.
            np.multiply(G, self.step_size, out=T)
            np.subtract(W, T, out=W)
            prox.apply_(W, self.step_size)

        results = []
        for k, ((X, y), model) in enumerate(zip(shards, models)):
            w_local = np.array(W[k], dtype=np.float64, copy=True)
            final_grad = model.gradient(w_local, X, y) + prox.gradient(w_local)
            results.append(
                self._record_solve_metrics(
                    LocalSolveResult(
                        w_local=w_local,
                        num_steps=self.num_steps,
                        num_gradient_evaluations=self.num_steps + 2,
                        start_grad_norm=start_norms[k],
                        final_surrogate_grad_norm=float(np.linalg.norm(final_grad)),
                    )
                )
            )
        return results
