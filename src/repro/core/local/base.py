"""Local-solver interface and result record.

A local solver implements Alg. 1 lines 3-10 (or a baseline's analogue):
given the broadcast global model it produces the device's local model
for this round, plus bookkeeping the server and the delay model consume
(gradient-evaluation counts map to computation delay ``d_cmp``).

Solvers may additionally implement :meth:`LocalSolver.solve_cohort`, the
batched execution path: a whole homogeneous cohort's inner loops run as
stacked ``(K, D)`` ndarray operations instead of K Python loops, with
per-(client, round) RNG streams consumed in exactly the order the
sequential path consumes them, so results are bit-identical either way.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import Model
from repro.obs import telemetry
from repro.utils.validation import check_positive, check_positive_int

#: ratio buckets for the achieved-theta distribution (criterion (11)):
#: fine below 1 (criterion met by some margin), coarse above.
THETA_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 2.0, 10.0)



@dataclass
class LocalSolveResult:
    """Outcome of one device's local update in one global iteration."""

    w_local: np.ndarray
    num_steps: int
    num_gradient_evaluations: int
    #: ``||grad F_n(w_bar)||`` at the round's start (the RHS scale of (11))
    start_grad_norm: float
    #: ``||grad J_n(w_local)||`` at the returned iterate (LHS of (11)), if evaluated
    final_surrogate_grad_norm: Optional[float] = None
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def achieved_accuracy(self) -> Optional[float]:
        """Empirical local accuracy ``theta_hat`` of criterion (11).

        ``||grad J_n(w_n)|| / ||grad F_n(w_bar)||`` — values below the
        configured ``theta`` certify the round met its local criterion.
        """
        if self.final_surrogate_grad_norm is None:
            return None
        if self.start_grad_norm == 0.0:
            return 0.0 if self.final_surrogate_grad_norm == 0.0 else float("inf")
        return self.final_surrogate_grad_norm / self.start_grad_norm


class LocalSolver(ABC):
    """Abstract per-device solver; instances are stateless across rounds
    except for configuration, so one instance can serve many clients."""

    #: identifier recorded in histories
    name: str = "abstract"

    def __init__(
        self,
        *,
        step_size: float,
        num_steps: int,
        batch_size: int,
    ) -> None:
        self.step_size = check_positive("step_size", step_size)
        self.num_steps = check_positive_int("num_steps", num_steps, minimum=0)
        self.batch_size = check_positive_int("batch_size", batch_size)

    @abstractmethod
    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        """Run the inner loop from the broadcast model ``w_global``."""

    def _sample_batch(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Uniformly sample a minibatch of indices (Alg. 1 line 6)."""
        size = min(self.batch_size, n)
        if size == n:
            return np.arange(n)
        return rng.choice(n, size=size, replace=False)

    # -- batched cohort execution -------------------------------------

    def solve_cohort(
        self,
        models: Sequence[Model],
        shards: Sequence[Tuple[np.ndarray, np.ndarray]],
        w_global: np.ndarray,
        rngs: Sequence[np.random.Generator],
        kernel,
    ) -> Optional[List["LocalSolveResult"]]:
        """Run one round's inner loops for a homogeneous cohort at once.

        Parameters mirror K parallel :meth:`solve` calls: ``models``,
        ``shards`` (``(X, y)`` training pairs) and ``rngs`` are ordered
        per client; ``kernel`` is a
        :class:`repro.models.batched.BatchKernel` over the cohort's
        models (or ``None`` when no vectorized kernel exists).

        Returns results ordered like the inputs, or ``None`` when this
        solver (or this configuration) has no batched path — callers
        must then fall back to per-client :meth:`solve` calls.  The
        contract for implementations is **bit-identity**: result ``k``
        must equal what ``solve`` would have produced for client ``k``
        with the same RNG stream.
        """
        del models, shards, w_global, rngs, kernel
        return None

    def _cohort_geometry(
        self, shards: Sequence[Tuple[np.ndarray, np.ndarray]]
    ) -> Optional[Tuple[int, int]]:
        """``(B, num_features)`` when every shard yields the same
        effective minibatch size, else ``None`` (cohort not stackable)."""
        sizes = {min(self.batch_size, X.shape[0]) for X, _ in shards}
        features = {X.shape[1] for X, _ in shards}
        if len(sizes) != 1 or len(features) != 1:
            return None
        return sizes.pop(), features.pop()

    def _gather_minibatches(
        self,
        shards: Sequence[Tuple[np.ndarray, np.ndarray]],
        rngs: Sequence[np.random.Generator],
        X_out: np.ndarray,
        y_out: np.ndarray,
    ) -> None:
        """Sample one minibatch per client into the stacked buffers.

        Consumes each client's generator exactly like one sequential
        ``_sample_batch`` call, so interleaving clients step-by-step
        (instead of client-by-client) leaves every stream unchanged.
        Gathers stay per shard on purpose: each shard is small enough to
        be cache-resident, which beats one scattered gather from a
        concatenated copy of the whole cohort (measured on the fig2
        macro-bench).

        The cohort geometry guarantees every shard has the same
        effective minibatch size (= ``X_out.shape[1]``), so the
        sequential path's per-call ``min(batch_size, n)`` is hoisted:
        either every shard is sampled (``rng.choice``, same draw as
        ``_sample_batch``) or every shard is taken whole (no RNG
        consumed, matching ``_sample_batch``'s full-shard branch).
        """
        size = X_out.shape[1]
        full_idx = np.arange(size)  # shared by every full-shard gather
        for k, (X, y) in enumerate(shards):
            if size == X.shape[0]:
                idx = full_idx
            else:
                idx = rngs[k].choice(X.shape[0], size=size, replace=False)
            X.take(idx, axis=0, out=X_out[k])
            y_out[k] = y[idx]

    def _record_solve_metrics(self, result: LocalSolveResult) -> LocalSolveResult:
        """Publish one solve's inner-loop telemetry; returns ``result``.

        Called by every concrete solver just before returning, so
        per-client step/gradient-evaluation counts and the achieved
        local accuracy ``theta_hat`` are visible between
        ``RoundRecord`` snapshots.  One attribute check when disabled.
        """
        if not telemetry.enabled:
            return result
        telemetry.counter_add("fl.client.local_steps", result.num_steps, key=self.name)
        telemetry.counter_add(
            "fl.client.grad_evals", result.num_gradient_evaluations, key=self.name
        )
        theta_hat = result.achieved_accuracy
        if theta_hat is not None and np.isfinite(theta_hat):
            telemetry.gauge_set("fl.client.achieved_theta", float(theta_hat))
            telemetry.observe(
                "fl.client.achieved_theta_dist", float(theta_hat),
                buckets=THETA_BUCKETS,
            )
        return result
