"""Local-solver interface and result record.

A local solver implements Alg. 1 lines 3-10 (or a baseline's analogue):
given the broadcast global model it produces the device's local model
for this round, plus bookkeeping the server and the delay model consume
(gradient-evaluation counts map to computation delay ``d_cmp``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.models.base import Model
from repro.obs import telemetry
from repro.utils.validation import check_positive, check_positive_int

#: ratio buckets for the achieved-theta distribution (criterion (11)):
#: fine below 1 (criterion met by some margin), coarse above.
THETA_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 2.0, 10.0)


@dataclass
class LocalSolveResult:
    """Outcome of one device's local update in one global iteration."""

    w_local: np.ndarray
    num_steps: int
    num_gradient_evaluations: int
    #: ``||grad F_n(w_bar)||`` at the round's start (the RHS scale of (11))
    start_grad_norm: float
    #: ``||grad J_n(w_local)||`` at the returned iterate (LHS of (11)), if evaluated
    final_surrogate_grad_norm: Optional[float] = None
    diagnostics: Dict[str, float] = field(default_factory=dict)

    @property
    def achieved_accuracy(self) -> Optional[float]:
        """Empirical local accuracy ``theta_hat`` of criterion (11).

        ``||grad J_n(w_n)|| / ||grad F_n(w_bar)||`` — values below the
        configured ``theta`` certify the round met its local criterion.
        """
        if self.final_surrogate_grad_norm is None:
            return None
        if self.start_grad_norm == 0.0:
            return 0.0 if self.final_surrogate_grad_norm == 0.0 else float("inf")
        return self.final_surrogate_grad_norm / self.start_grad_norm


class LocalSolver(ABC):
    """Abstract per-device solver; instances are stateless across rounds
    except for configuration, so one instance can serve many clients."""

    #: identifier recorded in histories
    name: str = "abstract"

    def __init__(
        self,
        *,
        step_size: float,
        num_steps: int,
        batch_size: int,
    ) -> None:
        self.step_size = check_positive("step_size", step_size)
        self.num_steps = check_positive_int("num_steps", num_steps, minimum=0)
        self.batch_size = check_positive_int("batch_size", batch_size)

    @abstractmethod
    def solve(
        self,
        model: Model,
        X: np.ndarray,
        y: np.ndarray,
        w_global: np.ndarray,
        rng: np.random.Generator,
    ) -> LocalSolveResult:
        """Run the inner loop from the broadcast model ``w_global``."""

    def _sample_batch(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """Uniformly sample a minibatch of indices (Alg. 1 line 6)."""
        size = min(self.batch_size, n)
        if size == n:
            return np.arange(n)
        return rng.choice(n, size=size, replace=False)

    def _record_solve_metrics(self, result: LocalSolveResult) -> LocalSolveResult:
        """Publish one solve's inner-loop telemetry; returns ``result``.

        Called by every concrete solver just before returning, so
        per-client step/gradient-evaluation counts and the achieved
        local accuracy ``theta_hat`` are visible between
        ``RoundRecord`` snapshots.  One attribute check when disabled.
        """
        if not telemetry.enabled:
            return result
        telemetry.counter_add("fl.client.local_steps", result.num_steps, key=self.name)
        telemetry.counter_add(
            "fl.client.grad_evals", result.num_gradient_evaluations, key=self.name
        )
        theta_hat = result.achieved_accuracy
        if theta_hat is not None and np.isfinite(theta_hat):
            telemetry.gauge_set("fl.client.achieved_theta", float(theta_hat))
            telemetry.observe(
                "fl.client.achieved_theta_dist", float(theta_hat),
                buckets=THETA_BUCKETS,
            )
        return result
