"""Numerical form of the paper's convergence analysis.

Implements, as checked closed forms or small root-finding problems:

* **Lemma 1** — the local-convergence conditions tying the step-size
  parameter ``beta`` (``eta = 1/(beta L)``), the local iteration count
  ``tau`` and the local accuracy ``theta``:

  - lower bound (55): ``tau >= 3 (beta^2 L^2 + mu^2) / (theta^2 mu~ L (beta - 3))``
  - SARAH upper bound (13): ``tau <= (5 beta^2 - 4 beta) / 8``
  - SVRG upper bound (14):  ``tau <= (5 beta^2 - 4 beta) / (8 a) - 2``
    with ``a - 4 >= 4 sqrt(a (tau + 1))`` (65)

* **Remark 1(3)** — the smallest feasible ``beta`` (eq. (15)) and the
  matched ``tau`` (eq. (16)).

* **Theorem 1** — the federated factor ``Theta`` and the rate (17).

* **Corollary 1** — global iterations ``T >= Delta / (Theta eps)`` (18).

* **Eq. (22)** — ``theta`` eliminated at the Lemma-1 equality point,
  used by the §4.3 optimizer.

All functions validate their preconditions and raise
:class:`InfeasibleParametersError` where the paper's conditions admit no
solution, so experiment scripts fail loudly on bad configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from scipy import optimize

from repro.exceptions import InfeasibleParametersError
from repro.utils.validation import check_in_range, check_positive


# ---------------------------------------------------------------------------
# Problem constants container
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProblemConstants:
    """The Assumption-1 constants of a federated problem.

    ``L`` — per-sample smoothness; ``lam`` — non-convexity bound (the
    paper's lambda, with ``F_n`` being ``(-lam)``-strongly convex);
    ``sigma_bar_sq`` — data-heterogeneity second moment
    ``sigma_bar^2 = sum_n (D_n/D) sigma_n^2``.
    """

    L: float
    lam: float
    sigma_bar_sq: float = 0.0

    def __post_init__(self) -> None:
        check_positive("L", self.L)
        check_positive("lam", self.lam, strict=False)
        check_positive("sigma_bar_sq", self.sigma_bar_sq, strict=False)

    def mu_tilde(self, mu: float) -> float:
        """Surrogate strong-convexity ``mu~ = mu - lam`` (must be > 0)."""
        mu_t = mu - self.lam
        if mu_t <= 0:
            raise InfeasibleParametersError(
                f"mu={mu} must exceed lambda={self.lam} for J_n to be "
                "strongly convex (Section 4.1)"
            )
        return mu_t


def aggregate_heterogeneous_constants(
    L_values,
    lam_values,
    weights=None,
    sigma_values=None,
) -> ProblemConstants:
    """Fold per-device ``(L_n, lambda_n, sigma_n)`` into one constant set.

    The paper (end of §3) notes all results hold with heterogeneous
    ``L_n, lambda_n`` by substituting the worst case in Lemma 1 and the
    data-weighted aggregates ``L-bar, lambda-bar`` in Theorem 1; we take
    the conservative route and use the per-device *maxima* for ``L`` and
    ``lambda``, with ``sigma_bar^2 = sum_n p_n sigma_n^2`` (the paper's
    own definition).
    """
    import numpy as _np

    L_arr = _np.asarray(list(L_values), dtype=float)
    lam_arr = _np.asarray(list(lam_values), dtype=float)
    if L_arr.size == 0 or L_arr.size != lam_arr.size:
        raise InfeasibleParametersError(
            "need matching, non-empty L and lambda sequences"
        )
    if weights is None:
        w = _np.full(L_arr.size, 1.0 / L_arr.size)
    else:
        w = _np.asarray(list(weights), dtype=float)
        if w.size != L_arr.size or _np.any(w < 0) or w.sum() <= 0:
            raise InfeasibleParametersError("invalid device weights")
        w = w / w.sum()
    if sigma_values is None:
        sigma_sq = 0.0
    else:
        s = _np.asarray(list(sigma_values), dtype=float)
        if s.size != L_arr.size:
            raise InfeasibleParametersError("sigma sequence length mismatch")
        sigma_sq = float(_np.dot(w, s**2))
    return ProblemConstants(
        L=float(L_arr.max()), lam=float(lam_arr.max()), sigma_bar_sq=sigma_sq
    )


# ---------------------------------------------------------------------------
# Lemma 1: tau bounds
# ---------------------------------------------------------------------------


def tau_lower_bound(
    beta: float, theta: float, mu: float, constants: ProblemConstants
) -> float:
    """Lemma 1 lower bound (55): minimum ``tau`` for a theta-accurate solve."""
    check_in_range("theta", theta, 0.0, 1.0, inclusive="right")
    if beta <= 3.0:
        raise InfeasibleParametersError(
            f"beta={beta} must exceed 3 for the Lemma 1 bounds to be positive"
        )
    L = constants.L
    mu_t = constants.mu_tilde(mu)
    return 3.0 * (beta**2 * L**2 + mu**2) / (theta**2 * mu_t * L * (beta - 3.0))


def tau_upper_bound_sarah(beta: float) -> float:
    """Lemma 1(a) upper bound (13): ``(5 beta^2 - 4 beta)/8``."""
    check_positive("beta", beta)
    return (5.0 * beta**2 - 4.0 * beta) / 8.0


def svrg_min_a(tau: float) -> float:
    """Smallest ``a`` satisfying condition (65): ``a - 4 >= 4 sqrt(a(tau+1))``.

    Substituting ``s = sqrt(a)`` gives ``s^2 - 4 s sqrt(tau+1) - 4 >= 0``
    whose positive root is ``s* = 2 sqrt(tau+1) + 2 sqrt(tau+2)``, hence
    ``a_min = 4 (sqrt(tau+1) + sqrt(tau+2))^2``.
    """
    check_positive("tau", tau, strict=False)
    root = math.sqrt(tau + 1.0) + math.sqrt(tau + 2.0)
    return 4.0 * root**2


def tau_upper_bound_svrg(beta: float, a: Optional[float] = None) -> float:
    """Lemma 1(b) upper bound (14) for a given ``a``, or the best
    *self-consistent* bound when ``a`` is omitted.

    Self-consistency: the largest integer ``tau`` with
    ``tau <= (5 beta^2 - 4 beta) / (8 a_min(tau)) - 2`` — found by
    downward scan since the right side decreases in ``tau``.
    """
    check_positive("beta", beta)
    base = 5.0 * beta**2 - 4.0 * beta
    if a is not None:
        check_positive("a", a)
        return base / (8.0 * a) - 2.0
    # Monotone scan: rhs(tau) decreases as tau grows, so the feasible
    # set {tau : tau <= rhs(tau)} is a down-closed integer interval.
    tau = 0
    while True:
        rhs = base / (8.0 * svrg_min_a(tau + 1)) - 2.0
        if tau + 1 > rhs:
            break
        tau += 1
    rhs0 = base / (8.0 * svrg_min_a(0)) - 2.0
    if tau == 0 and rhs0 < 0:
        return rhs0  # infeasible even at tau = 0; report the (negative) bound
    return float(tau)


def lemma1_feasible(
    beta: float,
    tau: float,
    theta: float,
    mu: float,
    constants: ProblemConstants,
    *,
    estimator: str = "sarah",
) -> bool:
    """Check whether ``(beta, tau, theta, mu)`` satisfies Lemma 1."""
    if beta <= 3.0:
        return False
    try:
        lo = tau_lower_bound(beta, theta, mu, constants)
    except InfeasibleParametersError:
        return False
    if estimator == "sarah":
        hi = tau_upper_bound_sarah(beta)
    elif estimator == "svrg":
        hi = tau_upper_bound_svrg(beta, svrg_min_a(tau))
    else:
        raise InfeasibleParametersError(f"unknown estimator {estimator!r}")
    return lo <= tau <= hi


def beta_min(
    theta: float,
    mu: float,
    constants: ProblemConstants,
    *,
    estimator: str = "sarah",
    beta_max: float = 1e7,
) -> float:
    """Remark 1(3): smallest ``beta > 3`` where lower and upper bounds meet.

    For SARAH this solves eq. (15); for SVRG the upper bound uses the
    self-consistent ``a``.  Root-found with ``brentq`` on the gap
    ``upper(beta) - lower(beta)``, which goes from negative (near
    ``beta = 3``, where the lower bound blows up) to positive (large
    ``beta``, where the upper bound grows as ``beta^2`` vs the lower
    bound's ``beta``).
    """
    check_in_range("theta", theta, 0.0, 1.0, inclusive="neither")

    def gap(beta: float) -> float:
        lo = tau_lower_bound(beta, theta, mu, constants)
        if estimator == "sarah":
            hi = tau_upper_bound_sarah(beta)
        else:
            hi = tau_upper_bound_svrg(beta)
        return hi - lo

    lo_beta = 3.0 + 1e-9
    if gap(beta_max) < 0:
        raise InfeasibleParametersError(
            f"no feasible beta <= {beta_max} for theta={theta}, mu={mu}: "
            "the Lemma 1 bounds never cross"
        )
    # gap is negative just above 3 (lower bound diverges), positive at
    # beta_max: bracket the crossing.
    return float(optimize.brentq(gap, lo_beta, beta_max, xtol=1e-10, rtol=1e-12))


def tau_star_sarah(beta: float) -> float:
    """Eq. (16): the matched ``tau`` at ``beta_min`` (SARAH)."""
    return tau_upper_bound_sarah(beta)


def theta_from_beta(mu: float, beta: float, constants: ProblemConstants) -> float:
    """Eq. (22): ``theta`` at the Lemma-1 equality point (SARAH form).

    ``theta^2 = 24 (beta^2 L^2 + mu^2) / (mu~ L (5 beta^2 - 4 beta)(beta - 3))``.
    Raises if the resulting ``theta`` is not a valid accuracy in (0, 1).
    """
    if beta <= 3.0:
        raise InfeasibleParametersError(f"beta={beta} must exceed 3")
    L = constants.L
    mu_t = constants.mu_tilde(mu)
    theta_sq = (
        24.0
        * (beta**2 * L**2 + mu**2)
        / (mu_t * L * (5.0 * beta**2 - 4.0 * beta) * (beta - 3.0))
    )
    return math.sqrt(theta_sq)


# ---------------------------------------------------------------------------
# Theorem 1 / Corollary 1
# ---------------------------------------------------------------------------


def federated_factor(
    theta: float, mu: float, constants: ProblemConstants
) -> float:
    """Theorem 1's ``Theta`` (may be non-positive; caller checks).

    ``Theta = (1/mu) [ 1 - theta sqrt(2(1+sigma^2))
    - (2L/mu~) sqrt((1+theta^2)(1+sigma^2))
    - (2 L mu / mu~^2)(1+theta^2)(1+sigma^2) ]``
    """
    check_positive("theta", theta, strict=False)
    L = constants.L
    s2 = constants.sigma_bar_sq
    mu_t = constants.mu_tilde(mu)
    one_plus = 1.0 + s2
    term1 = theta * math.sqrt(2.0 * one_plus)
    term2 = (2.0 * L / mu_t) * math.sqrt((1.0 + theta**2) * one_plus)
    term3 = (2.0 * L * mu / mu_t**2) * (1.0 + theta**2) * one_plus
    return (1.0 - term1 - term2 - term3) / mu


def theta_accuracy_cap(sigma_bar_sq: float) -> float:
    """Remark 2(1): ``theta`` must be below ``(2(1+sigma^2))^{-1/2}``."""
    check_positive("sigma_bar_sq", sigma_bar_sq, strict=False)
    return 1.0 / math.sqrt(2.0 * (1.0 + sigma_bar_sq))


def best_mu_for_theta(
    theta: float,
    constants: ProblemConstants,
    *,
    mu_max: Optional[float] = None,
) -> float:
    """The ``mu`` maximizing Theorem 1's ``Theta`` at a fixed ``theta``.

    ``Theta(mu)`` rises from negative values (mu near lambda), peaks,
    and decays like ``1/mu``; a log-space scalar search finds the peak.
    Raises :class:`InfeasibleParametersError` when no ``mu`` achieves
    ``Theta > 0`` (theta too large for the heterogeneity, Remark 2(1)).
    """
    check_in_range("theta", theta, 0.0, 1.0, inclusive="left")
    if mu_max is None:
        mu_max = 1e6 * max(1.0, constants.L)

    def negative_factor(log_mu: float) -> float:
        return -federated_factor(theta, constants.lam + math.exp(log_mu), constants)

    lo = math.log(max(1e-9, 1e-4 * constants.L))
    hi = math.log(mu_max)
    result = optimize.minimize_scalar(
        negative_factor, bounds=(lo, hi), method="bounded",
        options={"xatol": 1e-10},
    )
    mu = constants.lam + math.exp(result.x)
    if -result.fun <= 0:
        raise InfeasibleParametersError(
            f"no mu achieves Theta > 0 at theta={theta} "
            f"(theta cap is {theta_accuracy_cap(constants.sigma_bar_sq):.4g}, "
            "and the smoothness/curvature terms may still dominate)"
        )
    return float(mu)


def global_iterations_required(
    delta0: float, theta: float, mu: float, constants: ProblemConstants, eps: float
) -> float:
    """Corollary 1 (18): ``T >= Delta(w^0) / (Theta eps)``."""
    check_positive("delta0", delta0, strict=False)
    check_positive("eps", eps)
    factor = federated_factor(theta, mu, constants)
    if factor <= 0:
        raise InfeasibleParametersError(
            f"Theta={factor:.4g} <= 0 for theta={theta}, mu={mu}: Theorem 1 "
            "gives no guarantee (increase mu or decrease theta)"
        )
    return delta0 / (factor * eps)


def stationarity_bound(
    delta0: float, theta: float, mu: float, constants: ProblemConstants, T: int
) -> float:
    """Theorem 1's RHS (17): the guaranteed mean squared gradient norm."""
    check_positive("T", T)
    factor = federated_factor(theta, mu, constants)
    if factor <= 0:
        raise InfeasibleParametersError(
            f"Theta={factor:.4g} <= 0: no Theorem 1 guarantee at these parameters"
        )
    return delta0 / (factor * T)


def training_time(
    T: float, tau: float, d_com: float, d_cmp: float
) -> float:
    """Eq. (19): total training time ``T (d_com + d_cmp tau)``."""
    check_positive("T", T)
    check_positive("tau", tau, strict=False)
    check_positive("d_com", d_com, strict=False)
    check_positive("d_cmp", d_cmp, strict=False)
    return T * (d_com + d_cmp * tau)
