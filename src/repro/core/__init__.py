"""The paper's contribution: FedProxVR and its analysis.

* :mod:`repro.core.estimators` — SGD / SVRG / SARAH gradient estimators
  (eqs. (8a), (8b)).
* :mod:`repro.core.proximal` — proximal operators, including the
  closed-form quadratic prox (10).
* :mod:`repro.core.local` — local solvers (Alg. 1 lines 3-10 and the
  FedAvg / FedProx / GD baselines).
* :mod:`repro.core.theory` — Lemma 1, Theorem 1, Corollary 1.
* :mod:`repro.core.param_opt` — §4.3 training-time minimization (Fig. 1).

The federated drivers that *use* these pieces (the FSVRG baseline
runner and the Tables 1-2 hyperparameter search) live one layer up in
:mod:`repro.fl` — core never imports from the orchestration layer.
"""

from repro.core.estimators import (
    GradientEstimator,
    SGDEstimator,
    SVRGEstimator,
    SARAHEstimator,
    make_estimator,
)
from repro.core.proximal import (
    ProximalOperator,
    QuadraticProx,
    IdentityProx,
    L1Prox,
    gradient_mapping,
)
from repro.core.local import (
    LocalSolver,
    LocalSolveResult,
    FedAvgLocalSolver,
    FedProxLocalSolver,
    FedProxVRLocalSolver,
    GDLocalSolver,
)
from repro.core.algorithms import make_local_solver, ALGORITHMS
from repro.core import theory
from repro.core import param_opt

__all__ = [
    "ALGORITHMS",
    "FedAvgLocalSolver",
    "FedProxLocalSolver",
    "FedProxVRLocalSolver",
    "GDLocalSolver",
    "GradientEstimator",
    "IdentityProx",
    "L1Prox",
    "LocalSolveResult",
    "LocalSolver",
    "ProximalOperator",
    "QuadraticProx",
    "SARAHEstimator",
    "SGDEstimator",
    "SVRGEstimator",
    "gradient_mapping",
    "make_estimator",
    "make_local_solver",
    "param_opt",
    "theory",
]
