"""Proximal operators.

The paper's surrogate regularizer is the quadratic "soft consensus"
``h_s(w) = (mu/2) ||w - w_anchor||^2`` (eq. (7)) whose prox has the
closed form (10):

``prox_{eta h}(x) = (x + eta mu w_anchor) / (1 + eta mu)``.

We expose prox operators behind a tiny interface so the identical local
loop also runs with other non-smooth penalties (L1, none) — the setting
of the ProxSVRG/ProxSARAH literature the paper builds on.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_positive


class ProximalOperator(ABC):
    """Interface: ``prox(x, eta) = argmin_w h(w) + ||w - x||^2 / (2 eta)``."""

    @abstractmethod
    def __call__(self, x: np.ndarray, eta: float) -> np.ndarray:
        """Apply the prox with step ``eta``."""

    @abstractmethod
    def value(self, w: np.ndarray) -> float:
        """Evaluate ``h(w)``."""


class IdentityProx(ProximalOperator):
    """``h = 0``: the prox is the identity (plain (VR-)SGD)."""

    def __call__(self, x: np.ndarray, eta: float) -> np.ndarray:
        check_positive("eta", eta)
        return np.asarray(x, dtype=np.float64)

    def value(self, w: np.ndarray) -> float:
        return 0.0


class QuadraticProx(ProximalOperator):
    """The paper's ``h_s`` with penalty ``mu`` and a fixed anchor.

    A fresh instance is created per global iteration ``s`` with
    ``anchor = w_bar^{(s-1)}``; ``mu = 0`` degrades gracefully to the
    identity, which is how the Fig. 4 ``mu = 0`` divergence run is
    expressed.

    Stacked cohorts: because the closed form (10) is elementwise,
    :meth:`__call__` and :meth:`gradient` accept a ``(K, D)`` parameter
    stack as well as a single ``(D,)`` vector — the ``(D,)`` anchor
    broadcasts across rows, and each row of the result is bit-identical
    to the corresponding single-vector call.  The batched local solvers
    rely on this.
    """

    def __init__(self, mu: float, anchor: np.ndarray) -> None:
        self.mu = check_positive("mu", mu, strict=False)
        self.anchor = np.asarray(anchor, dtype=np.float64)
        # ``scale * anchor`` cache for apply_ — the inner loop applies
        # the prox with the same eta every step, so the product is
        # computed once and reused (same multiply, same bits).
        self._cached_eta: float = float("nan")
        self._cached_scaled_anchor: np.ndarray = self.anchor

    def __call__(self, x: np.ndarray, eta: float) -> np.ndarray:
        check_positive("eta", eta)
        x = np.asarray(x, dtype=np.float64)
        if self.mu == 0.0:
            return x
        scale = eta * self.mu
        return (x + scale * self.anchor) / (1.0 + scale)

    def apply_(self, x: np.ndarray, eta: float) -> np.ndarray:
        """In-place prox: overwrite ``x`` with ``prox(x, eta)``.

        Same elementary operations in the same order as
        :meth:`__call__` (add the scaled anchor, then divide), so each
        element carries identical bits — only the allocations differ.
        ``x`` must be a float64 ndarray.
        """
        check_positive("eta", eta)
        if self.mu == 0.0:
            return x
        scale = eta * self.mu
        if eta != self._cached_eta:
            self._cached_eta = eta
            self._cached_scaled_anchor = scale * self.anchor
        np.add(x, self._cached_scaled_anchor, out=x)
        np.divide(x, 1.0 + scale, out=x)
        return x

    def value(self, w: np.ndarray) -> float:
        if self.mu == 0.0:
            return 0.0
        diff = np.asarray(w, dtype=np.float64) - self.anchor
        return float(0.5 * self.mu * np.dot(diff, diff))

    def gradient(self, w: np.ndarray) -> np.ndarray:
        """``grad h_s(w) = mu (w - anchor)`` (h is smooth here)."""
        return self.mu * (np.asarray(w, dtype=np.float64) - self.anchor)


class L1Prox(ProximalOperator):
    """``h(w) = lam ||w||_1``: soft-thresholding prox.

    Included as the canonical *non-smooth* penalty handled by the
    ProxSVRG/ProxSARAH machinery the paper generalizes; exercised by the
    sparse-model extension example.
    """

    def __init__(self, lam: float) -> None:
        self.lam = check_positive("lam", lam, strict=False)

    def __call__(self, x: np.ndarray, eta: float) -> np.ndarray:
        check_positive("eta", eta)
        x = np.asarray(x, dtype=np.float64)
        thresh = eta * self.lam
        return np.sign(x) * np.maximum(np.abs(x) - thresh, 0.0)

    def value(self, w: np.ndarray) -> float:
        return float(self.lam * np.sum(np.abs(w)))


def gradient_mapping(
    w: np.ndarray,
    full_grad: np.ndarray,
    prox: ProximalOperator,
    eta: float,
) -> np.ndarray:
    """The gradient mapping ``G(w) = (w - prox(w - eta grad)) / eta`` (eq. (30)).

    Its norm is the stationarity measure of the composite local problem;
    it reduces to ``grad`` when the prox is the identity.
    """
    check_positive("eta", eta)
    w = np.asarray(w, dtype=np.float64)
    return (w - prox(w - eta * np.asarray(full_grad, dtype=np.float64), eta)) / eta
