"""Weight initializers.

Each initializer takes the target shape, a fan-in/fan-out pair, and a
:class:`numpy.random.Generator`, returning a float64 array.  Explicit
generators keep whole-model initialization reproducible from one seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError


def zeros(shape: Tuple[int, ...], fans: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    del fans, rng
    return np.zeros(shape, dtype=np.float64)


def glorot_uniform(
    shape: Tuple[int, ...], fans: Tuple[int, int], rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform: ``U(-a, a)`` with ``a = sqrt(6/(fan_in+fan_out))``."""
    fan_in, fan_out = fans
    limit = np.sqrt(6.0 / max(1, fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(
    shape: Tuple[int, ...], fans: Tuple[int, int], rng: np.random.Generator
) -> np.ndarray:
    """He/Kaiming normal: ``N(0, sqrt(2/fan_in))`` — suited to ReLU nets."""
    fan_in, _ = fans
    std = np.sqrt(2.0 / max(1, fan_in))
    return (rng.standard_normal(shape) * std).astype(np.float64)


def normal_scaled(
    shape: Tuple[int, ...], fans: Tuple[int, int], rng: np.random.Generator
) -> np.ndarray:
    """Plain ``N(0, 0.01)`` initialization (legacy baseline)."""
    del fans
    return (rng.standard_normal(shape) * 0.01).astype(np.float64)


_REGISTRY = {
    "zeros": zeros,
    "glorot_uniform": glorot_uniform,
    "he_normal": he_normal,
    "normal_scaled": normal_scaled,
}


def get(name: str):
    """Look up an initializer by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown initializer {name!r}; choices: {sorted(_REGISTRY)}"
        ) from None
