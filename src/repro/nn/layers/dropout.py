"""Inverted dropout layer.

Active only when ``forward(..., train=True)``: units are zeroed with
probability ``rate`` and survivors scaled by ``1/(1-rate)`` so the
expected activation is unchanged; at evaluation time the layer is the
identity.  The mask generator is owned by the layer (seeded at
construction) so runs remain reproducible.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range


class Dropout(Module):
    """Inverted dropout with keep-scale correction."""

    def __init__(self, rate: float = 0.5, *, seed: SeedLike = None) -> None:
        self.rate = check_in_range("rate", rate, 0.0, 1.0, inclusive="left")
        self._rng = as_generator(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not train or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError(
                "backward called without a preceding forward(train=True) "
                "(dropout is inactive at evaluation time)"
            )
        return np.asarray(grad_output, dtype=np.float64) * self._mask
