"""Max-pooling layer."""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.nn.im2col import conv_output_size, sliding_windows
from repro.nn.module import Module


class MaxPool2D(Module):
    """Non-overlapping-or-strided 2-D max pooling over NCHW inputs.

    The forward pass uses the zero-copy sliding-window view, reducing
    over the window axes; the backward pass routes each upstream
    gradient to the argmax location of its window (ties go to the first
    maximum in row-major window order, matching ``argmax`` semantics).
    """

    def __init__(
        self,
        pool_size: Union[int, Tuple[int, int]] = 2,
        *,
        stride: Optional[int] = None,
    ) -> None:
        if isinstance(pool_size, tuple):
            self.pool_size = (int(pool_size[0]), int(pool_size[1]))
        else:
            self.pool_size = (int(pool_size), int(pool_size))
        if min(self.pool_size) < 1:
            raise ConfigurationError(f"invalid pool_size {self.pool_size}")
        self.stride = int(stride) if stride is not None else self.pool_size[0]
        if self.stride < 1:
            raise ConfigurationError(f"invalid stride {self.stride}")
        self._cache_x_shape: Optional[Tuple[int, int, int, int]] = None
        self._cache_argmax: Optional[np.ndarray] = None

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Per-sample output shape ``(C, OH, OW)`` for a CHW input."""
        C, H, W = input_shape
        ph, pw = self.pool_size
        oh = conv_output_size(H, ph, self.stride, 0)
        ow = conv_output_size(W, pw, self.stride, 0)
        return (C, oh, ow)

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4:
            raise DimensionMismatchError(f"MaxPool2D expected NCHW, got {x.shape}")
        windows = sliding_windows(x, self.pool_size, self.stride)
        N, C, oh, ow, ph, pw = windows.shape
        flat = windows.reshape(N, C, oh, ow, ph * pw)
        if train:
            self._cache_x_shape = x.shape
            self._cache_argmax = np.argmax(flat, axis=-1)
        return flat.max(axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_x_shape is None or self._cache_argmax is None:
            raise RuntimeError("backward called before forward(train=True)")
        N, C, H, W = self._cache_x_shape
        argmax = self._cache_argmax
        oh, ow = argmax.shape[2], argmax.shape[3]
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != (N, C, oh, ow):
            raise DimensionMismatchError(
                f"grad_output shape {grad_output.shape} != {(N, C, oh, ow)}"
            )
        ph, pw = self.pool_size
        grad_input = np.zeros((N, C, H, W), dtype=np.float64)
        # Decode window-local argmax to absolute coordinates, then
        # scatter-add (windows may overlap when stride < pool size).
        local_r, local_c = np.divmod(argmax, pw)
        base_r = np.arange(oh)[None, None, :, None] * self.stride
        base_c = np.arange(ow)[None, None, None, :] * self.stride
        rows = (base_r + local_r).ravel()
        cols = (base_c + local_c).ravel()
        n_idx = np.repeat(np.arange(N), C * oh * ow)
        c_idx = np.tile(np.repeat(np.arange(C), oh * ow), N)
        np.add.at(grad_input, (n_idx, c_idx, rows, cols), grad_output.ravel())
        return grad_input
