"""2-D convolution layer (im2col + GEMM)."""

from __future__ import annotations

import time
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.nn import initializers
from repro.nn.im2col import Im2colScratch, col2im, conv_output_size, im2col
from repro.nn.module import Module
from repro.obs import telemetry
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


def _pair(v: Union[int, Tuple[int, int]]) -> Tuple[int, int]:
    if isinstance(v, tuple):
        return (int(v[0]), int(v[1]))
    return (int(v), int(v))


class Conv2D(Module):
    """Cross-correlation layer over NCHW inputs.

    The forward pass lowers every receptive field to a column
    (:func:`repro.nn.im2col.im2col`) and computes all outputs with one
    matrix multiply; the backward pass reuses the cached columns for the
    weight gradient and scatters the input gradient back with
    :func:`col2im`.  Weight shape is ``(out_channels, in_channels, KH, KW)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Union[int, Tuple[int, int]],
        *,
        stride: int = 1,
        padding: int = 0,
        weight_init: str = "he_normal",
        use_bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        self.in_channels = check_positive_int("in_channels", in_channels)
        self.out_channels = check_positive_int("out_channels", out_channels)
        self.kernel_size = _pair(kernel_size)
        self.stride = check_positive_int("stride", stride)
        self.padding = check_positive_int("padding", padding, minimum=0)
        self.use_bias = bool(use_bias)

        kh, kw = self.kernel_size
        rng = as_generator(seed)
        init = initializers.get(weight_init)
        fan_in = self.in_channels * kh * kw
        fan_out = self.out_channels * kh * kw
        self.weight = init(
            (self.out_channels, self.in_channels, kh, kw), (fan_in, fan_out), rng
        )
        self.grad_weight = np.zeros_like(self.weight)
        if self.use_bias:
            self.bias = np.zeros(self.out_channels, dtype=np.float64)
            self.grad_bias = np.zeros_like(self.bias)

        self._cache_cols: Optional[np.ndarray] = None
        self._cache_x_shape: Optional[Tuple[int, int, int, int]] = None
        # Column scratch: eval forwards reuse one buffer freely; train
        # forwards double-buffer because the columns escape into
        # ``_cache_cols`` and must survive until the matching backward —
        # a single buffer would let forward t+1 corrupt backward t's
        # cached columns.
        self._eval_scratch = Im2colScratch()
        self._train_scratch = (Im2colScratch(), Im2colScratch())
        self._train_flip = 0

    def output_shape(self, input_shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
        """Per-sample output shape ``(C_out, OH, OW)`` for a CHW input."""
        _, H, W = input_shape
        kh, kw = self.kernel_size
        oh = conv_output_size(H, kh, self.stride, self.padding)
        ow = conv_output_size(W, kw, self.stride, self.padding)
        return (self.out_channels, oh, ow)

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise DimensionMismatchError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        N = x.shape[0]
        _, oh, ow = self.output_shape(x.shape[1:])
        kh_, kw_ = self.kernel_size
        if train:
            scratch = self._train_scratch[self._train_flip]
            self._train_flip ^= 1
        else:
            scratch = self._eval_scratch
        buf = scratch.request((self.in_channels * kh_ * kw_, N * oh * ow))
        if telemetry.nn_profiling:
            # The lowering, not the GEMM, is the historical hot spot —
            # time it separately so `obs-report` can name it.
            t0 = time.perf_counter()
            cols = im2col(x, self.kernel_size, self.stride, self.padding, out=buf)
            telemetry.observe(
                "nn.conv2d.im2col_seconds", time.perf_counter() - t0
            )
        else:
            cols = im2col(x, self.kernel_size, self.stride, self.padding, out=buf)
        if train:
            self._cache_cols = cols
            self._cache_x_shape = x.shape
        kh, kw = self.kernel_size
        w2d = self.weight.reshape(self.out_channels, self.in_channels * kh * kw)
        out = w2d @ cols  # (C_out, N*OH*OW)
        if self.use_bias:
            out += self.bias[:, None]
        return out.reshape(self.out_channels, N, oh, ow).transpose(1, 0, 2, 3)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_cols is None or self._cache_x_shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        x_shape = self._cache_x_shape
        N = x_shape[0]
        _, oh, ow = self.output_shape(x_shape[1:])
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != (N, self.out_channels, oh, ow):
            raise DimensionMismatchError(
                f"grad_output shape {grad_output.shape} does not match "
                f"({N}, {self.out_channels}, {oh}, {ow})"
            )
        g2d = grad_output.transpose(1, 0, 2, 3).reshape(self.out_channels, N * oh * ow)
        kh, kw = self.kernel_size
        self.grad_weight[...] = (g2d @ self._cache_cols.T).reshape(self.weight.shape)
        if self.use_bias:
            np.sum(g2d, axis=1, out=self.grad_bias)
        w2d = self.weight.reshape(self.out_channels, self.in_channels * kh * kw)
        grad_cols = w2d.T @ g2d
        if telemetry.nn_profiling:
            t0 = time.perf_counter()
            out = col2im(
                grad_cols, x_shape, self.kernel_size, self.stride, self.padding
            )
            telemetry.observe(
                "nn.conv2d.col2im_seconds", time.perf_counter() - t0
            )
            return out
        return col2im(grad_cols, x_shape, self.kernel_size, self.stride, self.padding)

    def parameters(self) -> List[np.ndarray]:
        if self.use_bias:
            return [self.weight, self.bias]
        return [self.weight]

    def gradients(self) -> List[np.ndarray]:
        if self.use_bias:
            return [self.grad_weight, self.grad_bias]
        return [self.grad_weight]
