"""Elementwise activation layers (stateless, no parameters)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit ``max(x, 0)``."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.maximum(x, 0.0)
        if train:
            self._mask = x > 0.0
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(train=True)")
        return np.asarray(grad_output, dtype=np.float64) * self._mask


class Sigmoid(Module):
    """Logistic sigmoid ``1/(1+exp(-x))`` (numerically stabilized)."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.empty_like(x)
        pos = x >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
        ex = np.exp(x[~pos])
        out[~pos] = ex / (1.0 + ex)
        if train:
            self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(train=True)")
        s = self._out
        return np.asarray(grad_output, dtype=np.float64) * s * (1.0 - s)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        out = np.tanh(np.asarray(x, dtype=np.float64))
        if train:
            self._out = out
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward(train=True)")
        return np.asarray(grad_output, dtype=np.float64) * (1.0 - self._out**2)
