"""Fully-connected layer."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.nn import initializers
from repro.nn.module import Module
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


class Dense(Module):
    """Affine map ``y = x W + b`` with ``W`` of shape ``(in, out)``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    weight_init:
        Name of an initializer in :mod:`repro.nn.initializers`.
    use_bias:
        If false the layer is purely linear (useful for MLR-as-a-layer
        parity checks against the analytic model).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        weight_init: str = "glorot_uniform",
        use_bias: bool = True,
        seed: SeedLike = None,
    ) -> None:
        self.in_features = check_positive_int("in_features", in_features)
        self.out_features = check_positive_int("out_features", out_features)
        self.use_bias = bool(use_bias)
        rng = as_generator(seed)
        init = initializers.get(weight_init)
        fans = (self.in_features, self.out_features)
        self.weight = init((self.in_features, self.out_features), fans, rng)
        self.grad_weight = np.zeros_like(self.weight)
        if self.use_bias:
            self.bias = np.zeros(self.out_features, dtype=np.float64)
            self.grad_bias = np.zeros_like(self.bias)
        self._cache_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise DimensionMismatchError(
                f"Dense expected (batch, {self.in_features}), got {x.shape}"
            )
        if train:
            self._cache_input = x
        out = x @ self.weight
        if self.use_bias:
            out += self.bias
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_input is None:
            raise RuntimeError("backward called before forward(train=True)")
        x = self._cache_input
        grad_output = np.asarray(grad_output, dtype=np.float64)
        if grad_output.shape != (x.shape[0], self.out_features):
            raise DimensionMismatchError(
                f"grad_output shape {grad_output.shape} does not match "
                f"({x.shape[0]}, {self.out_features})"
            )
        np.matmul(x.T, grad_output, out=self.grad_weight)
        if self.use_bias:
            np.sum(grad_output, axis=0, out=self.grad_bias)
        return grad_output @ self.weight.T

    def parameters(self) -> List[np.ndarray]:
        if self.use_bias:
            return [self.weight, self.bias]
        return [self.weight]

    def gradients(self) -> List[np.ndarray]:
        if self.use_bias:
            return [self.grad_weight, self.grad_bias]
        return [self.grad_weight]
