"""Flatten layer: NCHW feature maps -> (N, features) matrices."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.module import Module


class Flatten(Module):
    """Reshape each sample to a vector, preserving the batch axis."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(train=True)")
        return np.asarray(grad_output, dtype=np.float64).reshape(self._shape)
