"""Layer implementations for the repro.nn framework."""

from repro.nn.layers.dense import Dense
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.pooling import MaxPool2D
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout

__all__ = ["Conv2D", "Dense", "Dropout", "Flatten", "MaxPool2D", "ReLU", "Sigmoid", "Tanh"]
