"""Loss heads: scalar loss + gradient with respect to the scores.

Each loss exposes ``value(scores, y)`` (mean over the batch) and
``value_and_grad(scores, y)``; gradients are already divided by the
batch size so that chaining ``grad`` through ``Module.backward`` yields
the gradient of the *mean* loss — the ``(1/D_n) sum_i f_i`` of eq. (1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError


def _check_scores_labels(scores: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    y = np.asarray(y)
    if scores.ndim != 2:
        raise DimensionMismatchError(f"scores must be 2-D, got shape {scores.shape}")
    if y.shape[0] != scores.shape[0]:
        raise DimensionMismatchError(
            f"labels length {y.shape[0]} != batch size {scores.shape[0]}"
        )
    return scores, y


def log_softmax(scores: np.ndarray) -> np.ndarray:
    """Numerically stable log-softmax along the class axis."""
    shifted = scores - scores.max(axis=1, keepdims=True)
    # Safe: each row of ``shifted`` contains a 0, so the sum of exps
    # is >= 1 and the log never sees a value below 1.
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))  # reprolint: disable=RL402


def softmax(scores: np.ndarray) -> np.ndarray:
    """Numerically stable softmax along the class axis."""
    shifted = scores - scores.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Softmax + negative log likelihood over integer class labels."""

    def value(self, scores: np.ndarray, y: np.ndarray) -> float:
        scores, y = _check_scores_labels(scores, y)
        ls = log_softmax(scores)
        return float(-ls[np.arange(scores.shape[0]), y.astype(int)].mean())

    def value_and_grad(
        self, scores: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        scores, y = _check_scores_labels(scores, y)
        n = scores.shape[0]
        ls = log_softmax(scores)
        idx = np.arange(n)
        loss = float(-ls[idx, y.astype(int)].mean())
        grad = np.exp(ls)
        grad[idx, y.astype(int)] -= 1.0
        grad /= n
        return loss, grad


class MeanSquaredError:
    """``mean_i ||scores_i - y_i||^2 / 2`` (per-sample 1/2 factor).

    Accepts ``y`` as a vector (single-output regression) or a matrix
    matching ``scores``.
    """

    def value(self, scores: np.ndarray, y: np.ndarray) -> float:
        scores, y = _check_scores_labels(scores, y)
        y2 = y.reshape(scores.shape).astype(np.float64)
        return float(0.5 * np.mean(np.sum((scores - y2) ** 2, axis=1)))

    def value_and_grad(
        self, scores: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        scores, y = _check_scores_labels(scores, y)
        y2 = y.reshape(scores.shape).astype(np.float64)
        diff = scores - y2
        loss = float(0.5 * np.mean(np.sum(diff**2, axis=1)))
        return loss, diff / scores.shape[0]


class MulticlassHinge:
    """Crammer–Singer multiclass hinge: ``max(0, 1 + max_{j!=y} s_j - s_y)``.

    The binary special case with scores ``(x^T w)`` matches the paper's
    SVM example ``max(0, 1 - y x^T w)``.  Subgradient at the hinge kink
    follows the convention of zero slope at exactly-zero margin violation.
    """

    def _margins(self, scores: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        n = scores.shape[0]
        idx = np.arange(n)
        correct = scores[idx, y.astype(int)]
        masked = scores.copy()
        masked[idx, y.astype(int)] = -np.inf
        runner_up = masked.argmax(axis=1)
        margins = 1.0 + scores[idx, runner_up] - correct
        return margins, runner_up

    def value(self, scores: np.ndarray, y: np.ndarray) -> float:
        scores, y = _check_scores_labels(scores, y)
        if scores.shape[1] < 2:
            raise DimensionMismatchError("MulticlassHinge needs >= 2 classes")
        margins, _ = self._margins(scores, y)
        return float(np.maximum(margins, 0.0).mean())

    def value_and_grad(
        self, scores: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        scores, y = _check_scores_labels(scores, y)
        if scores.shape[1] < 2:
            raise DimensionMismatchError("MulticlassHinge needs >= 2 classes")
        n = scores.shape[0]
        idx = np.arange(n)
        margins, runner_up = self._margins(scores, y)
        active = margins > 0.0
        loss = float(np.maximum(margins, 0.0).mean())
        grad = np.zeros_like(scores)
        grad[idx[active], runner_up[active]] = 1.0
        grad[idx[active], y.astype(int)[active]] = -1.0
        grad /= n
        return loss, grad
