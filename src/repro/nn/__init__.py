"""A minimal, from-scratch NumPy neural-network framework.

This is the substrate that replaces the paper's TensorFlow models: it
provides exactly what FedProxVR needs — differentiable models whose
parameters pack into a flat vector and whose gradients are computed by
hand-written, finite-difference-verified backward passes.

Layers follow a ``forward``/``backward`` contract: ``forward`` caches
whatever ``backward`` needs; ``backward`` receives the upstream gradient
and writes parameter gradients into per-layer buffers while returning
the gradient with respect to its input.
"""

from repro.nn.module import Module
from repro.nn.sequential import Sequential
from repro.nn.layers.dense import Dense
from repro.nn.layers.conv2d import Conv2D
from repro.nn.layers.pooling import MaxPool2D
from repro.nn.layers.activations import ReLU, Sigmoid, Tanh
from repro.nn.layers.flatten import Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.losses import (
    SoftmaxCrossEntropy,
    MeanSquaredError,
    MulticlassHinge,
)
from repro.nn import initializers

__all__ = [
    "Conv2D",
    "Dense",
    "Dropout",
    "Flatten",
    "MaxPool2D",
    "MeanSquaredError",
    "Module",
    "MulticlassHinge",
    "ReLU",
    "Sequential",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "Tanh",
    "initializers",
]
