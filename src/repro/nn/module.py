"""Base class for neural-network layers."""

from __future__ import annotations

from typing import List

import numpy as np


class Module:
    """A differentiable computation node.

    Subclasses override :meth:`forward` and :meth:`backward`, and expose
    their parameters through :meth:`parameters` / :meth:`gradients`
    (parallel lists of arrays).  Parameter arrays are mutated in place by
    optimizers; gradient arrays are overwritten by each backward pass.

    Stateless layers (activations, pooling) simply return empty lists.
    """

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        """Compute the layer output, caching anything backward needs."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Propagate ``dLoss/dOutput`` to ``dLoss/dInput``.

        Also fills this layer's gradient buffers.  Must be called after
        a matching :meth:`forward`.
        """
        raise NotImplementedError

    def parameters(self) -> List[np.ndarray]:
        """Trainable parameter arrays (possibly empty)."""
        return []

    def gradients(self) -> List[np.ndarray]:
        """Gradient arrays parallel to :meth:`parameters`."""
        return []

    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count of this module."""
        return int(sum(p.size for p in self.parameters()))

    @property
    def obs_label(self) -> str:
        """Metric key for this layer when nn profiling is enabled.

        Containers (:class:`repro.nn.Sequential`) prefix this with the
        layer's position, giving keys like ``0:Conv2D`` in the
        ``nn.layer.forward_seconds`` histogram.
        """
        return type(self).__name__

    def zero_gradients(self) -> None:
        """Reset all gradient buffers to zero in place."""
        for g in self.gradients():
            g[...] = 0.0

    def __call__(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        return self.forward(x, train=train)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(params={self.num_parameters})"
