"""im2col / col2im: the vectorization backbone of the Conv2D layer.

Convolution as matrix multiplication: every receptive-field patch is
unrolled into a column, so the convolution becomes a single GEMM — the
classic HPC trick that turns a six-deep Python loop into one BLAS call.
``im2col`` is implemented with stride tricks (a zero-copy sliding-window
view followed by one reshape-copy), ``col2im`` with ``np.add.at``
scatter-accumulation.

Layout conventions: images are ``(N, C, H, W)``; columns are
``(C*KH*KW, N*OH*OW)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.exceptions import ConfigurationError, DimensionMismatchError


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ConfigurationError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def _check_geometry(
    x_shape: Tuple[int, int, int, int], kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[int, int]:
    if len(x_shape) != 4:
        raise DimensionMismatchError(f"expected NCHW input, got shape {x_shape}")
    if stride < 1 or padding < 0:
        raise ConfigurationError(f"invalid stride={stride} or padding={padding}")
    _, _, H, W = x_shape
    kh, kw = kernel
    return (
        conv_output_size(H, kh, stride, padding),
        conv_output_size(W, kw, stride, padding),
    )


def sliding_windows(
    x: np.ndarray, kernel: Tuple[int, int], stride: int
) -> np.ndarray:
    """Zero-copy view of all ``(kh, kw)`` windows of an NCHW array.

    Returns shape ``(N, C, OH, OW, KH, KW)``.  The caller must not
    mutate the view (it aliases ``x`` heavily).
    """
    N, C, H, W = x.shape
    kh, kw = kernel
    oh = (H - kh) // stride + 1
    ow = (W - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(N, C, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Unroll image patches into columns.

    Parameters
    ----------
    x:
        Input images ``(N, C, H, W)``.

    Returns
    -------
    Columns of shape ``(C*KH*KW, N*OH*OW)`` where each column is one
    receptive field, ordered with the batch index slowest.
    """
    x = np.asarray(x, dtype=np.float64)
    oh, ow = _check_geometry(x.shape, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    windows = sliding_windows(x, kernel, stride)
    N, C = x.shape[0], x.shape[1]
    kh, kw = kernel
    # (N, C, OH, OW, KH, KW) -> (C, KH, KW, N, OH, OW) -> 2-D
    cols = windows.transpose(1, 4, 5, 0, 2, 3).reshape(C * kh * kw, N * oh * ow)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image space.

    Overlapping patches accumulate, which makes ``col2im`` the exact
    transpose operator needed by the convolution backward pass.
    """
    N, C, H, W = x_shape
    kh, kw = kernel
    oh, ow = _check_geometry(x_shape, kernel, stride, padding)
    if cols.shape != (C * kh * kw, N * oh * ow):
        raise DimensionMismatchError(
            f"cols shape {cols.shape} inconsistent with image shape {x_shape}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    Hp, Wp = H + 2 * padding, W + 2 * padding
    padded = np.zeros((N, C, Hp, Wp), dtype=np.float64)
    patches = cols.reshape(C, kh, kw, N, oh, ow).transpose(3, 0, 4, 5, 1, 2)
    # Accumulate each kernel offset as a strided slice add: O(kh*kw)
    # vectorized adds instead of a Python loop over every patch.
    for i in range(kh):
        h_end = i + stride * oh
        for j in range(kw):
            w_end = j + stride * ow
            padded[:, :, i:h_end:stride, j:w_end:stride] += patches[:, :, :, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
