"""im2col / col2im: the vectorization backbone of the Conv2D layer.

Convolution as matrix multiplication: every receptive-field patch is
unrolled into a column, so the convolution becomes a single GEMM — the
classic HPC trick that turns a six-deep Python loop into one BLAS call.
``im2col`` is implemented with stride tricks (a zero-copy sliding-window
view followed by one reshape-copy), ``col2im`` with ``np.add.at``
scatter-accumulation.

Layout conventions: images are ``(N, C, H, W)``; columns are
``(C*KH*KW, N*OH*OW)``.

The column matrix is the dominant transient allocation of a CNN step
(``C*KH*KW x N*OH*OW`` doubles, re-made every forward).  ``im2col``
therefore accepts an ``out=`` buffer, and :class:`Im2colScratch` keeps
one correctly-shaped buffer alive across same-geometry calls — the
shapes are fixed for a whole training run, so after the first call the
lowering is a single strided copy with no allocator traffic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.exceptions import ConfigurationError, DimensionMismatchError


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ConfigurationError(
            f"non-positive conv output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def _check_geometry(
    x_shape: Tuple[int, int, int, int], kernel: Tuple[int, int], stride: int, padding: int
) -> Tuple[int, int]:
    if len(x_shape) != 4:
        raise DimensionMismatchError(f"expected NCHW input, got shape {x_shape}")
    if stride < 1 or padding < 0:
        raise ConfigurationError(f"invalid stride={stride} or padding={padding}")
    _, _, H, W = x_shape
    kh, kw = kernel
    return (
        conv_output_size(H, kh, stride, padding),
        conv_output_size(W, kw, stride, padding),
    )


def sliding_windows(
    x: np.ndarray, kernel: Tuple[int, int], stride: int
) -> np.ndarray:
    """Zero-copy view of all ``(kh, kw)`` windows of an NCHW array.

    Returns shape ``(N, C, OH, OW, KH, KW)``.  The caller must not
    mutate the view (it aliases ``x`` heavily).
    """
    N, C, H, W = x.shape
    kh, kw = kernel
    oh = (H - kh) // stride + 1
    ow = (W - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(N, C, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Unroll image patches into columns.

    Parameters
    ----------
    x:
        Input images ``(N, C, H, W)``.
    out:
        Optional preallocated ``(C*KH*KW, N*OH*OW)`` float64 C-order
        buffer (e.g. from :class:`Im2colScratch`); fully overwritten.

    Returns
    -------
    Columns of shape ``(C*KH*KW, N*OH*OW)`` where each column is one
    receptive field, ordered with the batch index slowest.  The same
    object as ``out`` when one is given.
    """
    x = np.asarray(x, dtype=np.float64)
    oh, ow = _check_geometry(x.shape, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
        )
    windows = sliding_windows(x, kernel, stride)
    N, C = x.shape[0], x.shape[1]
    kh, kw = kernel
    cols_shape = (C * kh * kw, N * oh * ow)
    # (N, C, OH, OW, KH, KW) -> (C, KH, KW, N, OH, OW) -> 2-D
    patches = windows.transpose(1, 4, 5, 0, 2, 3)
    if out is None:
        return np.ascontiguousarray(patches).reshape(cols_shape)
    if (
        out.shape != cols_shape
        or out.dtype != np.float64
        or not out.flags.c_contiguous
    ):
        raise DimensionMismatchError(
            f"out buffer {out.shape}/{out.dtype} does not match a C-order "
            f"float64 {cols_shape} column matrix"
        )
    # One strided copy straight into the caller's buffer — no transient.
    np.copyto(out.reshape(C, kh, kw, N, oh, ow), patches)
    return out


class Im2colScratch:
    """One reusable column buffer keyed by shape.

    Same-geometry :func:`im2col` calls (the steady state of a training
    run) reuse the buffer; a shape change reallocates;``invalidate``
    drops it explicitly.  Not thread-safe — intended as per-layer state,
    and layers are already per-call serialized.
    """

    def __init__(self) -> None:
        self._buffer: Optional[np.ndarray] = None

    def request(self, shape: Tuple[int, int]) -> np.ndarray:
        """A float64 C-order buffer of ``shape`` (contents undefined)."""
        if self._buffer is None or self._buffer.shape != tuple(shape):
            self._buffer = np.empty(shape, dtype=np.float64)
        return self._buffer

    def invalidate(self) -> None:
        """Drop the buffer; the next :meth:`request` reallocates."""
        self._buffer = None


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image space.

    Overlapping patches accumulate, which makes ``col2im`` the exact
    transpose operator needed by the convolution backward pass.
    """
    N, C, H, W = x_shape
    kh, kw = kernel
    oh, ow = _check_geometry(x_shape, kernel, stride, padding)
    if cols.shape != (C * kh * kw, N * oh * ow):
        raise DimensionMismatchError(
            f"cols shape {cols.shape} inconsistent with image shape {x_shape}, "
            f"kernel {kernel}, stride {stride}, padding {padding}"
        )
    Hp, Wp = H + 2 * padding, W + 2 * padding
    padded = np.zeros((N, C, Hp, Wp), dtype=np.float64)
    patches = cols.reshape(C, kh, kw, N, oh, ow).transpose(3, 0, 4, 5, 1, 2)
    # Accumulate each kernel offset as a strided slice add: O(kh*kw)
    # vectorized adds instead of a Python loop over every patch.
    for i in range(kh):
        h_end = i + stride * oh
        for j in range(kw):
            w_end = j + stride * ow
            padded[:, :, i:h_end:stride, j:w_end:stride] += patches[:, :, :, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
