"""Sequential container chaining layers."""

from __future__ import annotations

import time
from typing import Iterable, Iterator, List

import numpy as np

from repro.nn.module import Module
from repro.obs import telemetry


class Sequential(Module):
    """Composition of layers applied in order.

    ``forward`` threads activations through every layer; ``backward``
    runs the chain rule in reverse.  Parameters and gradients are the
    concatenation of the layers' lists, in layer order, which gives a
    stable flat-vector layout for :class:`repro.models.nn_model.NNModel`.

    When ``telemetry.nn_profiling`` is on (off by default — it is a
    separate opt-in on top of telemetry itself) each layer's forward and
    backward is timed into the ``nn.layer.forward_seconds`` /
    ``nn.layer.backward_seconds`` histograms keyed by
    ``<position>:<obs_label>``; the default path pays one attribute
    check per call.
    """

    def __init__(self, layers: Iterable[Module]) -> None:
        self.layers: List[Module] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")
        self._obs_keys = [
            f"{i}:{layer.obs_label}" for i, layer in enumerate(self.layers)
        ]

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        out = x
        if not telemetry.nn_profiling:
            for layer in self.layers:
                out = layer.forward(out, train=train)
            return out
        for layer, key in zip(self.layers, self._obs_keys):
            t0 = time.perf_counter()
            out = layer.forward(out, train=train)
            telemetry.observe(
                "nn.layer.forward_seconds", time.perf_counter() - t0, key=key
            )
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        if not telemetry.nn_profiling:
            for layer in reversed(self.layers):
                grad = layer.backward(grad)
            return grad
        for layer, key in zip(
            reversed(self.layers), reversed(self._obs_keys)
        ):
            t0 = time.perf_counter()
            grad = layer.backward(grad)
            telemetry.observe(
                "nn.layer.backward_seconds", time.perf_counter() - t0, key=key
            )
        return grad

    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> List[np.ndarray]:
        grads: List[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}], params={self.num_parameters})"
