"""Sequential container chaining layers."""

from __future__ import annotations

from typing import Iterable, Iterator, List

import numpy as np

from repro.nn.module import Module


class Sequential(Module):
    """Composition of layers applied in order.

    ``forward`` threads activations through every layer; ``backward``
    runs the chain rule in reverse.  Parameters and gradients are the
    concatenation of the layers' lists, in layer order, which gives a
    stable flat-vector layout for :class:`repro.models.nn_model.NNModel`.
    """

    def __init__(self, layers: Iterable[Module]) -> None:
        self.layers: List[Module] = list(layers)
        if not self.layers:
            raise ValueError("Sequential requires at least one layer")

    def forward(self, x: np.ndarray, *, train: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, train=train)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[np.ndarray]:
        params: List[np.ndarray] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def gradients(self) -> List[np.ndarray]:
        grads: List[np.ndarray] = []
        for layer in self.layers:
            grads.extend(layer.gradients())
        return grads

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(type(layer).__name__ for layer in self.layers)
        return f"Sequential([{inner}], params={self.num_parameters})"
