"""repro — reproduction of "Federated Learning with Proximal Stochastic
Variance Reduced Gradient Algorithms" (Dinh et al., ICPP 2020).

Public API tour
---------------

Quick experiment::

    from repro import make_synthetic, MultinomialLogisticModel
    from repro import FederatedRunConfig, run_federated

    ds = make_synthetic(1.0, 1.0, num_devices=30, seed=0)
    cfg = FederatedRunConfig(algorithm="fedproxvr-sarah", num_rounds=100,
                             num_local_steps=20, beta=5, mu=0.1)
    history, w = run_federated(
        ds, lambda: MultinomialLogisticModel(ds.num_features, ds.num_classes),
        cfg)

Theory (Lemma 1 / Theorem 1 / §4.3)::

    from repro.core import theory, param_opt
    c = theory.ProblemConstants(L=1.0, lam=0.5, sigma_bar_sq=0.0)
    opt = param_opt.optimize_parameters(gamma=1e-2, constants=c)
"""

from repro import analysis, viz
from repro.core import certificates, param_opt, theory
from repro.core.algorithms import ALGORITHMS, make_local_solver
from repro.core.estimators import (
    SARAHEstimator,
    SGDEstimator,
    SVRGEstimator,
    make_estimator,
)
from repro.core.local import (
    FedAvgLocalSolver,
    FedProxLocalSolver,
    FedProxVRLocalSolver,
    GDLocalSolver,
)
from repro.core.proximal import IdentityProx, L1Prox, QuadraticProx
from repro.core.theory import ProblemConstants
from repro.datasets import (
    DeviceData,
    FederatedDataset,
    make_digits,
    make_fashion,
    make_synthetic,
)
from repro.datasets.io import load_federated_dataset, save_federated_dataset
from repro.fl import (
    Client,
    FederatedRunConfig,
    FederatedServer,
    TrainingHistory,
    run_federated,
    run_fsvrg,
)
from repro.models import (
    LinearRegressionModel,
    LinearSVMModel,
    Model,
    MultinomialLogisticModel,
    NNModel,
    make_mlp_model,
    make_paper_cnn_model,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "Client",
    "DeviceData",
    "FedAvgLocalSolver",
    "FedProxLocalSolver",
    "FedProxVRLocalSolver",
    "FederatedDataset",
    "FederatedRunConfig",
    "FederatedServer",
    "GDLocalSolver",
    "IdentityProx",
    "L1Prox",
    "LinearRegressionModel",
    "LinearSVMModel",
    "Model",
    "MultinomialLogisticModel",
    "NNModel",
    "ProblemConstants",
    "QuadraticProx",
    "SARAHEstimator",
    "SGDEstimator",
    "SVRGEstimator",
    "TrainingHistory",
    "__version__",
    "analysis",
    "certificates",
    "load_federated_dataset",
    "make_digits",
    "make_estimator",
    "make_fashion",
    "make_local_solver",
    "make_mlp_model",
    "make_paper_cnn_model",
    "make_synthetic",
    "param_opt",
    "run_federated",
    "run_fsvrg",
    "save_federated_dataset",
    "theory",
    "viz",
]
