"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as :class:`TypeError` raised by NumPy.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied by the caller."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative routine failed to converge within its budget."""


class InfeasibleParametersError(ReproError, ValueError):
    """Theory-level parameters violate the feasibility conditions.

    Raised, for example, when Lemma 1 admits no number of local
    iterations ``tau`` for the requested ``(beta, theta, mu)`` or when
    Theorem 1's federated factor ``Theta`` is non-positive.
    """


class DimensionMismatchError(ReproError, ValueError):
    """Array shapes passed to a routine are mutually inconsistent."""
