"""Vectorized multi-client model kernels for batched cohort solves.

A :class:`BatchKernel` computes the minibatch gradients of ``K``
same-architecture models in one set of stacked-ndarray operations:
parameters live in a ``(K, D)`` stack (one flat vector per client), the
gathered minibatches in a ``(K, B, features)`` stack, and the result is
a ``(K, D)`` gradient stack.

The bit-identity contract
-------------------------
``gradient_stack`` must return, row for row, the *exact same bits* as
``model.gradient(W[k], X[k], y[k])`` would.  That is what lets the
batched cohort executor replace the sequential per-client loop without
changing any result.  The contract holds because every stacked
operation used here reduces per slice to the identical elementary
operation sequence of the 2-D path:

* elementwise ufuncs and broadcasts are trivially per-row identical;
* axis reductions (``max``/``sum`` along the class or batch axis) use
  the same reduction order per slice as the 2-D call;
* stacked ``matmul`` dispatches the *same* BLAS GEMM once per slice.

The one pattern deliberately avoided is replacing a matrix–vector
product (GEMV) with a width-1 GEMM: the two BLAS routines are not
guaranteed to share a summation order.  Models whose gradients are
GEMV-shaped (linear regression, binary SVM) therefore report no cohort
signature and fall back to per-client solves.

Adding a kernel for a new model: implement :class:`BatchKernel`,
give the model a signature in :func:`cohort_signature`, and register it
in :func:`make_batch_kernel`.  The equivalence suite
(``tests/fl/test_executor_equivalence.py``) is the gate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Optional, Sequence

import numpy as np

from repro.backend import get_backend
from repro.exceptions import DimensionMismatchError
from repro.models.base import Model
from repro.models.logistic import MultinomialLogisticModel

__all__ = ["BatchKernel", "LogisticBatchKernel", "cohort_signature", "make_batch_kernel"]


class BatchKernel(ABC):
    """Stacked minibatch-gradient evaluator over K homogeneous models."""

    #: number of clients in the stack
    num_clients: int
    #: flat parameter dimension D (per client)
    num_parameters: int

    @abstractmethod
    def gradient_stack(
        self,
        W: np.ndarray,
        X_batch: np.ndarray,
        y_batch: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-client mean-loss gradients.

        Parameters
        ----------
        W:
            Parameter stack ``(K, D)``.
        X_batch:
            Gathered minibatches ``(K, B, num_features)`` (same ``B``
            for every client — the cohort grouping guarantees it).
        y_batch:
            Labels ``(K, B)``.
        out:
            Optional ``(K, D)`` output buffer (fully overwritten).

        shape: W (K, D) float64, X_batch (K, B, f) float64, y_batch (K, B) -> (K, D) float64
        """


class LogisticBatchKernel(BatchKernel):
    """Stacked softmax-regression gradients (the paper's convex MLR task).

    Mirrors :meth:`MultinomialLogisticModel.loss_and_gradient` operation
    by operation — scores GEMM, stable log-softmax, label subtraction,
    mean scaling, feature-transpose GEMM, L2 term, bias column sums —
    so each row of the result is bit-identical to the per-client call.
    """

    def __init__(self, model: MultinomialLogisticModel) -> None:
        self.num_features = model.num_features
        self.num_classes = model.num_classes
        self.l2 = model.l2
        self.fit_intercept = model.fit_intercept
        self.num_parameters = model.num_parameters
        self._wsize = self.num_features * self.num_classes
        # Per-(K, B) caches — gather indices for the label subtraction
        # plus the softmax-chain work buffers — one kernel serves one
        # cohort, so the geometry is stable after the first call.
        self._idx_shape: Optional[tuple] = None
        self._k_idx: Optional[np.ndarray] = None
        self._b_idx: Optional[np.ndarray] = None
        self._G: Optional[np.ndarray] = None
        self._red: Optional[np.ndarray] = None

    def _views(self, W: np.ndarray):
        """(K, f, c) weight view and (K, c) bias view of a (K, D) stack."""
        K = W.shape[0]
        W3 = W[:, : self._wsize].reshape(K, self.num_features, self.num_classes)
        b2 = W[:, self._wsize :] if self.fit_intercept else None
        return W3, b2

    # shape: W (K, D) float64, X_batch (K, B, f) float64, y_batch (K, B) -> (K, D) float64
    def gradient_stack(self, W, X_batch, y_batch, out=None):
        be = get_backend()
        K, B, f = X_batch.shape
        if W.shape != (K, self.num_parameters) or f != self.num_features:
            raise DimensionMismatchError(
                f"stack shapes {W.shape} / {X_batch.shape} do not match a "
                f"({K}, {self.num_parameters}) x ({K}, B, {self.num_features}) kernel"
            )
        self.num_clients = K
        W3, b2 = self._views(W)

        scores = be.batched_matmul(
            X_batch, W3, out=be.scratch((K, B, self.num_classes))
        )  # (K, B, c)
        if b2 is not None:
            scores += b2[:, None, :]

        if self._idx_shape != (K, B):
            self._idx_shape = (K, B)
            self._k_idx = np.arange(K)[:, None]
            self._b_idx = np.arange(B)[None, :]
            self._G = np.empty((K, B, self.num_classes), dtype=np.float64)
            self._red = np.empty((K, B, 1), dtype=np.float64)

        # Stable log-softmax + NLL gradient, axis-per-slice identical to
        # SoftmaxCrossEntropy.value_and_grad on each (B, c) slice; the
        # chain runs in place over persistent buffers but performs the
        # same elementary ops on the same values as the allocating form
        # ``exp(shifted - log(sum(exp(shifted))))``.
        grad_scores, red = self._G, self._red
        scores.max(axis=2, keepdims=True, out=red)
        np.subtract(scores, red, out=scores)  # shifted
        np.exp(scores, out=grad_scores)
        grad_scores.sum(axis=2, keepdims=True, out=red)
        np.log(red, out=red)  # reprolint: disable=RL402
        np.subtract(scores, red, out=scores)  # log-probs
        np.exp(scores, out=grad_scores)
        labels = y_batch if y_batch.dtype.kind == "i" else y_batch.astype(int)
        grad_scores[self._k_idx, self._b_idx, labels] -= 1.0
        grad_scores /= B

        if out is None:
            out = np.empty((K, self.num_parameters), dtype=np.float64)
        out_W, out_b = self._views(out)
        # grad_W = X^T G (+ l2 W when decay is on — skipped at l2 = 0
        # exactly like the sequential model, so both paths agree).
        be.batched_matmul(np.swapaxes(X_batch, 1, 2), grad_scores, out=out_W)
        if self.l2:
            out_W += self.l2 * W3
        if out_b is not None:
            grad_scores.sum(axis=1, out=out_b)
        return out


def cohort_signature(model: Model) -> Optional[Hashable]:
    """Hashable architecture key, or ``None`` if no batch kernel exists.

    Two models may share a cohort (and a kernel) iff their signatures
    are equal and not ``None``.
    """
    if type(model) is MultinomialLogisticModel:
        return (
            "mlr",
            model.num_features,
            model.num_classes,
            float(model.l2),
            bool(model.fit_intercept),
        )
    return None


def make_batch_kernel(models: Sequence[Model]) -> Optional[BatchKernel]:
    """A kernel over ``models``, or ``None`` when they cannot be batched."""
    if not models:
        return None
    signatures = {cohort_signature(m) for m in models}
    if len(signatures) != 1 or None in signatures:
        return None
    model = models[0]
    if isinstance(model, MultinomialLogisticModel):
        return LogisticBatchKernel(model)
    return None
