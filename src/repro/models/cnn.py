"""The paper's two-layer CNN (§5, Experimental settings).

Architecture — matching the description "two 5x5 convolution layers (32
and 64 channels ...), max pooling size 2x2 ... after each layer, ReLU
activation, and a softmax layer at the end":

``conv5x5(C->32) -> ReLU -> maxpool2 -> conv5x5(32->64) -> ReLU ->
maxpool2 -> flatten -> dense(num_classes)`` with softmax-cross-entropy.

A ``channel_scale`` knob shrinks the channel counts proportionally so
tests and CI-scale benchmarks can run the identical code path in
seconds; the paper-exact network is ``channel_scale=1``.
"""

from __future__ import annotations

from typing import Tuple

from repro.models.nn_model import NNModel
from repro.nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
)
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.validation import check_in_range, check_positive_int


def make_paper_cnn_model(
    image_shape: Tuple[int, int, int] = (1, 28, 28),
    num_classes: int = 10,
    *,
    channel_scale: float = 1.0,
    seed: SeedLike = 0,
) -> NNModel:
    """Build the paper's CNN wrapped as a flat-vector ``Model``.

    Parameters
    ----------
    image_shape:
        Per-sample ``(C, H, W)``; MNIST-like data is ``(1, 28, 28)``.
    channel_scale:
        Multiplier on the (32, 64) channel widths, in ``(0, 1]``.
    """
    C, H, W = (int(d) for d in image_shape)
    check_positive_int("channels", C)
    check_positive_int("height", H)
    check_positive_int("width", W)
    check_positive_int("num_classes", num_classes, minimum=2)
    check_in_range("channel_scale", channel_scale, 0.0, 1.0, inclusive="right")
    c1 = max(1, int(round(32 * channel_scale)))
    c2 = max(1, int(round(64 * channel_scale)))

    def build(s: SeedLike) -> Sequential:
        seeds = spawn_seeds(s, 3)
        conv1 = Conv2D(C, c1, 5, padding=2, seed=seeds[0])
        pool1 = MaxPool2D(2)
        conv2 = Conv2D(c1, c2, 5, padding=2, seed=seeds[1])
        pool2 = MaxPool2D(2)
        # Spatial dims after two stride-2 pools with 'same' padding.
        h_out = (H // 2) // 2
        w_out = (W // 2) // 2
        head = Dense(c2 * h_out * w_out, num_classes, seed=seeds[2])
        return Sequential(
            [conv1, ReLU(), pool1, conv2, ReLU(), pool2, Flatten(), head]
        )

    return NNModel(
        build(seed),
        SoftmaxCrossEntropy(),
        input_shape=(C, H, W),
        builder=build,
    )
