"""Model zoo exposing the flat-parameter-vector ``Model`` interface."""

from repro.models.base import Model
from repro.models.linear_regression import LinearRegressionModel
from repro.models.logistic import MultinomialLogisticModel
from repro.models.svm import LinearSVMModel
from repro.models.nn_model import NNModel
from repro.models.mlp import make_mlp_model
from repro.models.cnn import make_paper_cnn_model

__all__ = [
    "LinearRegressionModel",
    "LinearSVMModel",
    "Model",
    "MultinomialLogisticModel",
    "NNModel",
    "make_mlp_model",
    "make_paper_cnn_model",
]
