"""Multi-layer perceptron factory."""

from __future__ import annotations

from typing import Sequence

from repro.models.nn_model import NNModel
from repro.nn import Dense, ReLU, Sequential, SoftmaxCrossEntropy
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.validation import check_positive_int


def make_mlp_model(
    num_features: int,
    num_classes: int,
    hidden_sizes: Sequence[int] = (64,),
    *,
    seed: SeedLike = 0,
) -> NNModel:
    """Build a ReLU MLP classifier wrapped as a flat-vector ``Model``.

    A single hidden layer already gives a non-convex loss surface, which
    is enough to exercise the paper's non-convex analysis on problems
    small enough for fast tests.
    """
    check_positive_int("num_features", num_features)
    check_positive_int("num_classes", num_classes, minimum=2)
    hidden = [check_positive_int("hidden size", h) for h in hidden_sizes]

    def build(s: SeedLike) -> Sequential:
        widths = [num_features] + hidden + [num_classes]
        layer_seeds = spawn_seeds(s, len(widths) - 1)
        layers = []
        for i, (w_in, w_out) in enumerate(zip(widths[:-1], widths[1:])):
            layers.append(Dense(w_in, w_out, seed=layer_seeds[i]))
            if i < len(widths) - 2:
                layers.append(ReLU())
        return Sequential(layers)

    return NNModel(build(seed), SoftmaxCrossEntropy(), builder=build)
