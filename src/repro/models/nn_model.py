"""Adapter exposing a :class:`repro.nn.Sequential` network as a ``Model``.

The federated algorithms operate on flat vectors; the network holds
structured arrays.  ``NNModel`` copies the flat vector into the layer
parameter buffers, runs forward/backward, and packs the layer gradient
buffers back into a flat vector.  The two copies per gradient call are
O(model size) and unavoidable without aliasing layer storage to a single
buffer; they are dwarfed by the conv GEMMs they bracket.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError
from repro.models.base import Model
from repro.nn.module import Module
from repro.utils.parameter_vector import ParameterSpec, flatten_arrays
from repro.utils.rng import SeedLike, as_generator


class NNModel(Model):
    """Flat-vector facade over a neural network and a loss head.

    Parameters
    ----------
    network:
        Any :class:`repro.nn.Module` (normally a ``Sequential``).
    loss_head:
        Object with ``value`` / ``value_and_grad`` over (scores, labels),
        e.g. :class:`repro.nn.SoftmaxCrossEntropy`.
    input_shape:
        Per-sample shape the network expects, e.g. ``(1, 28, 28)`` for
        an NCHW conv net.  ``None`` leaves batches as 2-D matrices.
    builder:
        Zero-argument factory recreating an identically-shaped network;
        used by :meth:`init_parameters` to draw fresh initializations
        without disturbing the live network.
    """

    def __init__(
        self,
        network: Module,
        loss_head,
        *,
        input_shape: Optional[Sequence[int]] = None,
        builder: Optional[Callable[[SeedLike], Module]] = None,
    ) -> None:
        self.network = network
        self.loss_head = loss_head
        self.input_shape = tuple(int(d) for d in input_shape) if input_shape else None
        self._builder = builder
        self.spec = ParameterSpec([p.shape for p in network.parameters()])
        self.num_parameters = self.spec.size

    def init_parameters(self, seed: SeedLike = None) -> np.ndarray:
        if self._builder is not None:
            fresh = self._builder(seed)
            vec = flatten_arrays(fresh.parameters())
            if vec.size != self.num_parameters:
                raise DimensionMismatchError(
                    "builder produced a network with a different parameter count"
                )
            return vec
        # Fall back to perturbing around the captured initialization.
        rng = as_generator(seed)
        base = flatten_arrays(self.network.parameters())
        return base + rng.standard_normal(base.size) * 1e-3

    def _load(self, w: np.ndarray) -> None:
        for target, piece in zip(self.network.parameters(), self.spec.unflatten(w)):
            target[...] = piece

    def _shape_batch(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if self.input_shape is None:
            return X
        expected = int(np.prod(self.input_shape))
        if X.ndim == 2 and X.shape[1] == expected:
            return X.reshape((X.shape[0],) + self.input_shape)
        if X.shape[1:] == self.input_shape:
            return X
        raise DimensionMismatchError(
            f"cannot shape batch {X.shape} to per-sample shape {self.input_shape}"
        )

    def loss(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        w, X, y = self._check_batch(w, X, y)
        self._load(w)
        scores = self.network.forward(self._shape_batch(X), train=False)
        return float(self.loss_head.value(scores, y))

    def loss_and_gradient(
        self, w: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        w, X, y = self._check_batch(w, X, y)
        self._load(w)
        scores = self.network.forward(self._shape_batch(X), train=True)
        loss, grad_scores = self.loss_head.value_and_grad(scores, y)
        self.network.backward(grad_scores)
        return float(loss), flatten_arrays(self.network.gradients())

    def predict(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.float64)
        self._load(w)
        scores = self.network.forward(self._shape_batch(np.asarray(X)), train=False)
        return np.argmax(scores, axis=1)

    def _check_batch(self, w, X, y):
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (self.num_parameters,):
            raise DimensionMismatchError(
                f"parameter vector shape {w.shape} != ({self.num_parameters},)"
            )
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.shape[0] != y.shape[0]:
            raise DimensionMismatchError(
                f"X batch {X.shape[0]} != labels {y.shape[0]}"
            )
        return w, X, y
