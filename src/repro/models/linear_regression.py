"""Linear regression with the paper's per-sample loss.

``f_i(w) = (x_i^T w - y_i)^2 / 2`` — the first loss example in §3.
Supports an optional intercept and an optional L2 ridge term
``(l2/2)||w||^2`` (applied to weights only, not the intercept).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.models.base import Model
from repro.utils.rng import SeedLike, as_generator
from repro.utils.smoothness import least_squares_smoothness
from repro.utils.validation import check_positive, check_positive_int


class LinearRegressionModel(Model):
    """Least-squares regression over flat parameter vectors."""

    def __init__(
        self, num_features: int, *, fit_intercept: bool = True, l2: float = 0.0
    ) -> None:
        self.num_features = check_positive_int("num_features", num_features)
        self.fit_intercept = bool(fit_intercept)
        self.l2 = check_positive("l2", l2, strict=False)
        self.num_parameters = self.num_features + (1 if self.fit_intercept else 0)

    def init_parameters(self, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        return rng.standard_normal(self.num_parameters) * 0.01

    def _split(self, w: np.ndarray) -> Tuple[np.ndarray, float]:
        if self.fit_intercept:
            return w[: self.num_features], float(w[self.num_features])
        return w, 0.0

    def _residual(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        weights, intercept = self._split(w)
        return X @ weights + intercept - y.astype(np.float64)

    def loss(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        w, X, y = self._check_batch(w, X, y)
        r = self._residual(w, X, y)
        weights, _ = self._split(w)
        return float(0.5 * np.mean(r**2) + 0.5 * self.l2 * np.dot(weights, weights))

    def loss_and_gradient(
        self, w: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        w, X, y = self._check_batch(w, X, y)
        n = X.shape[0]
        r = self._residual(w, X, y)
        weights, _ = self._split(w)
        loss = float(0.5 * np.mean(r**2) + 0.5 * self.l2 * np.dot(weights, weights))
        grad = np.empty_like(w)
        grad_w = X.T @ r / n + self.l2 * weights
        grad[: self.num_features] = grad_w
        if self.fit_intercept:
            grad[self.num_features] = float(np.mean(r))
        return loss, grad

    def predict(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.float64)
        X = np.asarray(X, dtype=np.float64)
        weights, intercept = self._split(w)
        return X @ weights + intercept

    def accuracy(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """R^2 coefficient of determination (regression 'accuracy')."""
        y = np.asarray(y, dtype=np.float64)
        pred = self.predict(w, X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0.0:
            return 1.0 if ss_res == 0.0 else 0.0
        return 1.0 - ss_res / ss_tot

    def smoothness(self, X: np.ndarray) -> float:
        base = least_squares_smoothness(X)
        if self.fit_intercept:
            # Intercept column of ones adds 1 to every ||x_i||^2.
            base = float(np.max(np.einsum("ij,ij->i", X, X) + 1.0)) if len(X) else 0.0
        return base + self.l2
