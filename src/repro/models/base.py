"""The ``Model`` interface every algorithm in :mod:`repro.core` consumes.

A model is a pure function of a flat parameter vector ``w`` and a data
batch ``(X, y)``: it reports the *mean* loss over the batch (the paper's
``F_n`` restricted to the batch, eq. (1)) and its gradient.  Keeping the
interface batch-first means the same three methods serve

* full local gradients  — ``gradient(w, X_n, y_n)`` (SVRG/SARAH anchor),
* stochastic gradients  — ``gradient(w, X_n[idx], y_n[idx])``,
* global metrics        — data-weighted sums across devices.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike
from repro.utils.validation import check_array_2d, check_same_length


class Model(ABC):
    """Abstract differentiable model over flat parameter vectors."""

    #: total number of scalar parameters (set by subclasses)
    num_parameters: int

    @abstractmethod
    def init_parameters(self, seed: SeedLike = None) -> np.ndarray:
        """Draw an initial flat parameter vector."""

    @abstractmethod
    def loss(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """Mean loss of ``w`` over the batch."""

    @abstractmethod
    def loss_and_gradient(
        self, w: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Mean loss and its gradient with respect to ``w``."""

    def gradient(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Mean-loss gradient (defaults to ``loss_and_gradient``)."""
        return self.loss_and_gradient(w, X, y)[1]

    @abstractmethod
    def predict(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Predicted labels (classification) or values (regression)."""

    def accuracy(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        """Fraction of correct label predictions."""
        X = check_array_2d("X", X)
        y = np.asarray(y)
        check_same_length("X", X, "y", y)
        if X.shape[0] == 0:
            return float("nan")
        return float(np.mean(self.predict(w, X) == y))

    def smoothness(self, X: np.ndarray) -> Optional[float]:
        """Analytic per-sample smoothness ``L`` on this data, if known.

        Returns ``None`` when no closed form exists (e.g. neural nets) —
        callers should then fall back to
        :func:`repro.utils.smoothness.estimate_smoothness_power_iteration`.
        """
        del X
        return None

    def _check_batch(
        self, w: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Validate and coerce a ``(w, X, y)`` triple."""
        w = np.asarray(w, dtype=np.float64)
        if w.shape != (self.num_parameters,):
            from repro.exceptions import DimensionMismatchError

            raise DimensionMismatchError(
                f"parameter vector shape {w.shape} != ({self.num_parameters},)"
            )
        X = check_array_2d("X", X)
        y = np.asarray(y)
        check_same_length("X", X, "y", y)
        return w, X, y
