"""Multinomial logistic regression (the paper's convex MLR task).

Parameters are a ``(d, k)`` weight matrix plus a ``k`` bias vector,
packed column-major into a flat vector via :class:`ParameterSpec`.
Loss is softmax cross-entropy, optionally with L2 weight decay.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.models.base import Model
from repro.nn.losses import SoftmaxCrossEntropy, softmax
from repro.utils.parameter_vector import ParameterSpec
from repro.utils.rng import SeedLike, as_generator
from repro.utils.smoothness import logistic_smoothness
from repro.utils.validation import check_positive, check_positive_int


class MultinomialLogisticModel(Model):
    """Softmax classifier over flat parameter vectors."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        *,
        l2: float = 0.0,
        fit_intercept: bool = True,
    ) -> None:
        self.num_features = check_positive_int("num_features", num_features)
        self.num_classes = check_positive_int("num_classes", num_classes, minimum=2)
        self.l2 = check_positive("l2", l2, strict=False)
        self.fit_intercept = bool(fit_intercept)
        shapes = [(self.num_features, self.num_classes)]
        if self.fit_intercept:
            shapes.append((self.num_classes,))
        self.spec = ParameterSpec(shapes)
        self.num_parameters = self.spec.size
        self._loss_head = SoftmaxCrossEntropy()

    def init_parameters(self, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        return rng.standard_normal(self.num_parameters) * 0.01

    def _scores(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        pieces = self.spec.unflatten(w)
        scores = X @ pieces[0]
        if self.fit_intercept:
            scores = scores + pieces[1]
        return scores

    def loss(self, w: np.ndarray, X: np.ndarray, y: np.ndarray) -> float:
        w, X, y = self._check_batch(w, X, y)
        base = self._loss_head.value(self._scores(w, X), y)
        if not self.l2:
            return float(base)
        W = self.spec.piece(w, 0)
        return float(base + 0.5 * self.l2 * np.sum(W * W))

    def loss_and_gradient(
        self, w: np.ndarray, X: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        w, X, y = self._check_batch(w, X, y)
        scores = self._scores(w, X)
        base, grad_scores = self._loss_head.value_and_grad(scores, y)
        grad = self.spec.zeros()
        grad_pieces = self.spec.unflatten(grad)
        grad_pieces[0][...] = X.T @ grad_scores
        # The decay term is skipped entirely at l2 = 0 (adding 0.0 * W is
        # two full passes over the weights for a no-op); the batched
        # kernel skips under the same condition, preserving executor
        # bit-identity either way.
        if self.l2:
            W = self.spec.piece(w, 0)
            loss = float(base + 0.5 * self.l2 * np.sum(W * W))
            grad_pieces[0] += self.l2 * W
        else:
            loss = float(base)
        if self.fit_intercept:
            grad_pieces[1][...] = grad_scores.sum(axis=0)
        return loss, grad

    def predict(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        w = np.asarray(w, dtype=np.float64)
        X = np.asarray(X, dtype=np.float64)
        return np.argmax(self._scores(w, X), axis=1)

    def predict_proba(self, w: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Class-membership probabilities (softmax of the scores)."""
        w = np.asarray(w, dtype=np.float64)
        X = np.asarray(X, dtype=np.float64)
        return softmax(self._scores(w, X))

    def smoothness(self, X: np.ndarray) -> float:
        return logistic_smoothness(X, self.num_classes) + self.l2
