"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``     — train one algorithm on one dataset and print/save the history.
``compare`` — train several algorithms under identical settings.
``theory``  — evaluate Lemma 1 bounds and Theorem 1's factor at given knobs.
``optimize``— solve the §4.3 problem for one or more gamma values (Fig. 1).
``obs-report`` — render the span-tree / hotspot summary of a JSONL trace
produced by ``repro run --trace`` (or, with ``--ledger``, the round/alert
summary of a ``repro.ledger/v1`` file from ``repro run --ledger``).
``obs-diff`` — align two run ledgers and report metric/hotspot deltas
with a regression verdict.
``obs-check`` — validate a ledger and assert alert/round expectations
(the CI building block for monitored demo runs).
``lint``    — run the reprolint static-analysis suite (requires the repo
checkout: the ``tools`` package is not shipped with the installed wheel).

The CLI is a thin veneer over the public API, so every option maps 1:1
onto :class:`repro.fl.runner.FederatedRunConfig` / the theory functions.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, List, Optional

import numpy as np

from repro.core import param_opt, theory
from repro.core.theory import ProblemConstants
from repro.datasets import make_digits, make_fashion, make_synthetic
from repro.datasets.base import FederatedDataset
from repro.exceptions import ConfigurationError, InfeasibleParametersError
from repro.fl.history import format_comparison
from repro.fl.runner import EXECUTOR_CHOICES, FederatedRunConfig, run_federated
from repro.models import (
    Model,
    MultinomialLogisticModel,
    make_mlp_model,
    make_paper_cnn_model,
)
from repro.obs import (
    CsvMetricsSink,
    JsonlSink,
    LedgerReader,
    MonitorFailFast,
    RunLedger,
    StderrReporter,
    default_monitor_suite,
    diff_ledgers,
    render_diff,
    telemetry,
)
from repro.obs.report import render_ledger_report, render_report

DATASETS = ("synthetic", "digits", "fashion")
MODELS = ("mlr", "mlp", "cnn")


def build_dataset(name: str, *, num_devices: int, num_samples: int, seed: int) -> FederatedDataset:
    """Instantiate a dataset by CLI name."""
    if name == "synthetic":
        return make_synthetic(
            1.0, 1.0, num_devices=num_devices,
            min_size=40, max_size=max(80, num_samples // max(1, num_devices)),
            seed=seed,
        )
    if name == "digits":
        return make_digits(num_devices=num_devices, num_samples=num_samples, seed=seed)
    if name == "fashion":
        return make_fashion(num_devices=num_devices, num_samples=num_samples, seed=seed)
    raise ConfigurationError(f"unknown dataset {name!r}; choices: {DATASETS}")


def build_model_factory(name: str, dataset: FederatedDataset) -> Callable[[], Model]:
    """Model factory by CLI name, sized to the dataset."""
    if name == "mlr":
        return lambda: MultinomialLogisticModel(
            dataset.num_features, dataset.num_classes
        )
    if name == "mlp":
        return lambda: make_mlp_model(
            dataset.num_features, dataset.num_classes, (64,), seed=0
        )
    if name == "cnn":
        side = int(round(dataset.num_features**0.5))
        if side * side != dataset.num_features:
            raise ConfigurationError(
                "cnn model needs square image features (e.g. the digits/fashion datasets)"
            )
        return lambda: make_paper_cnn_model(
            (1, side, side), dataset.num_classes, channel_scale=0.25, seed=0
        )
    raise ConfigurationError(f"unknown model {name!r}; choices: {MODELS}")


def _add_run_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", choices=DATASETS, default="synthetic")
    p.add_argument("--model", choices=MODELS, default="mlr")
    p.add_argument("--devices", type=int, default=20)
    p.add_argument("--samples", type=int, default=2000,
                   help="global corpus size for image datasets")
    p.add_argument("--rounds", "-T", type=int, default=50)
    p.add_argument("--tau", type=int, default=10, help="local iterations")
    p.add_argument("--beta", type=float, default=5.0, help="eta = 1/(beta L)")
    p.add_argument("--mu", type=float, default=0.1, help="proximal penalty")
    p.add_argument("--batch-size", "-B", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eval-every", type=int, default=5)
    p.add_argument("--executor", choices=EXECUTOR_CHOICES, default="sequential",
                   help="client scheduling: 'batched' runs homogeneous cohorts "
                        "as stacked solves (see docs/PERFORMANCE.md)")
    p.add_argument("--output", help="write the history JSON here")
    p.add_argument("--trace", metavar="PATH",
                   help="enable telemetry and write the JSONL event trace here "
                        "(inspect with 'repro obs-report')")
    p.add_argument("--metrics", metavar="PATH",
                   help="enable telemetry and write the per-round/run metrics CSV here")
    p.add_argument("--obs-stderr", action="store_true",
                   help="with telemetry on, also print per-round metrics to stderr")
    p.add_argument("--profile-nn", action="store_true",
                   help="with telemetry on, time every nn layer forward/backward "
                        "(adds overhead; off by default)")
    p.add_argument("--ledger", metavar="PATH",
                   help="write a crash-safe repro.ledger/v1 run ledger here and "
                        "run the default monitor suite (inspect with "
                        "'repro obs-report --ledger' / 'repro obs-check'; "
                        "compare runs with 'repro obs-diff')")
    p.add_argument("--fail-fast", action="store_true",
                   help="with --ledger, abort the run on the first "
                        "error-severity monitor alert (exit code 3)")


def _configure_telemetry(args) -> bool:
    """Start a telemetry session from CLI flags; True if one started."""
    sinks = []
    if args.trace:
        sinks.append(JsonlSink(args.trace))
    if args.metrics:
        sinks.append(CsvMetricsSink(args.metrics))
    if args.obs_stderr:
        sinks.append(StderrReporter())
    if not sinks:
        if args.profile_nn:
            raise ConfigurationError(
                "--profile-nn needs a telemetry sink; add --trace, "
                "--metrics, or --obs-stderr"
            )
        return False
    telemetry.configure(
        sinks,
        nn_profiling=args.profile_nn,
        extra_meta={"dataset": args.dataset, "model": args.model,
                    "seed": args.seed},
    )
    return True


def _make_config(args, algorithm: str) -> FederatedRunConfig:
    return FederatedRunConfig(
        algorithm=algorithm,
        num_rounds=args.rounds,
        num_local_steps=args.tau,
        beta=args.beta,
        mu=args.mu,
        batch_size=args.batch_size,
        seed=args.seed,
        eval_every=args.eval_every,
        executor=args.executor,
    )


def _make_ledger(path: str, *, fail_fast: bool):
    """A fresh ledger + default monitor suite for one run."""
    return RunLedger(path), default_monitor_suite(fail_fast=fail_fast)


def _ledger_path_for(path: str, algorithm: str) -> str:
    """Per-algorithm ledger path: ``runs.jsonl`` -> ``runs.fedavg.jsonl``."""
    root, ext = os.path.splitext(path)
    return f"{root}.{algorithm}{ext or '.jsonl'}"


def _report_ledger(ledger: RunLedger) -> None:
    print(f"ledger written to {ledger.path} "
          f"({ledger.alert_count} alert(s); inspect with: "
          f"repro obs-report --ledger {ledger.path})")


def cmd_run(args) -> int:
    dataset = build_dataset(
        args.dataset, num_devices=args.devices, num_samples=args.samples, seed=args.seed
    )
    factory = build_model_factory(args.model, dataset)
    print(dataset.summary())
    traced = _configure_telemetry(args)
    ledger = monitors = None
    if args.ledger:
        ledger, monitors = _make_ledger(args.ledger, fail_fast=args.fail_fast)
    try:
        history, _ = run_federated(
            dataset, factory, _make_config(args, args.algorithm),
            verbose=True, ledger=ledger, monitors=monitors,
        )
    except MonitorFailFast as exc:
        print(f"fail-fast: {exc}", file=sys.stderr)
        _report_ledger(ledger)
        return 3
    finally:
        if traced:
            telemetry.shutdown()
    if args.output:
        history.to_json(args.output)
        print(f"history written to {args.output}")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(render with: repro obs-report {args.trace})")
    if args.metrics:
        print(f"metrics CSV written to {args.metrics}")
    if ledger is not None:
        _report_ledger(ledger)
    return 0


def cmd_compare(args) -> int:
    dataset = build_dataset(
        args.dataset, num_devices=args.devices, num_samples=args.samples, seed=args.seed
    )
    factory = build_model_factory(args.model, dataset)
    print(dataset.summary())
    traced = _configure_telemetry(args)
    histories = []
    try:
        for algorithm in args.algorithms:
            config = _make_config(args, algorithm)
            if algorithm == "fedavg":
                config.mu = 0.0
            ledger = monitors = None
            if args.ledger:
                # One ledger per algorithm: a manifest binds one run.
                ledger, monitors = _make_ledger(
                    _ledger_path_for(args.ledger, algorithm),
                    fail_fast=args.fail_fast,
                )
            try:
                history, _ = run_federated(
                    dataset, factory, config,
                    ledger=ledger, monitors=monitors,
                )
            except MonitorFailFast as exc:
                print(f"fail-fast ({algorithm}): {exc}", file=sys.stderr)
                _report_ledger(ledger)
                return 3
            histories.append(history)
            print(f"  {algorithm:>18s}: final loss {history.final('train_loss'):.4f}  "
                  f"acc {history.final('test_accuracy'):.4f}")
            if ledger is not None:
                _report_ledger(ledger)
    finally:
        if traced:
            telemetry.shutdown()
    print()
    print(format_comparison(histories))
    return 0


def cmd_obs_report(args) -> int:
    render = render_ledger_report if args.ledger else render_report
    try:
        print(render(args.trace, top=args.top), end="")
    except (OSError, ValueError) as exc:
        print(f"error: cannot render {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_obs_diff(args) -> int:
    try:
        result = diff_ledgers(
            args.ledger_a, args.ledger_b, rel_threshold=args.rel_threshold
        )
    except (OSError, ValueError) as exc:
        print(f"error: cannot diff ledgers: {exc}", file=sys.stderr)
        return 2
    print(render_diff(result, top=args.top))
    if args.fail_on_regression and result["verdict"] != "ok":
        return 1
    return 0


def cmd_obs_check(args) -> int:
    """Validate a ledger and assert CI expectations on it."""
    try:
        reader = LedgerReader(args.ledger)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.ledger!r}: {exc}", file=sys.stderr)
        return 2
    errors = reader.validate()
    if errors:
        for err in errors:
            print(f"error: {err}", file=sys.stderr)
        return 2
    resume = reader.resume_point()
    alerts = reader.alerts()
    fired = sorted({a.get("monitor", "?") for a in alerts})
    print(f"{args.ledger}: valid repro.ledger/v1  "
          f"rounds={len(reader.rounds())} alerts={len(alerts)} "
          f"status={resume['status'] or 'crashed'} "
          f"resume-cursor={resume['cursor']} next-round={resume['next_round']}"
          + ("  [torn final line dropped]" if resume["truncated"] else ""))
    failures = []
    if args.max_alerts is not None and len(alerts) > args.max_alerts:
        failures.append(
            f"{len(alerts)} alert(s) exceed --max-alerts {args.max_alerts}: "
            + ", ".join(fired)
        )
    for expected in args.expect_alert or ():
        if expected not in fired:
            failures.append(
                f"expected an alert from monitor {expected!r}; "
                f"got {fired or 'none'}"
            )
    if args.require_rounds is not None and len(reader.rounds()) < args.require_rounds:
        failures.append(
            f"only {len(reader.rounds())} committed round(s), "
            f"--require-rounds wants {args.require_rounds}"
        )
    for failure in failures:
        print(f"check failed: {failure}", file=sys.stderr)
    return 1 if failures else 0


def cmd_theory(args) -> int:
    constants = ProblemConstants(L=args.L, lam=args.lam, sigma_bar_sq=args.sigma_sq)
    print(f"constants: L={args.L} lambda={args.lam} sigma^2={args.sigma_sq}")
    try:
        lo = theory.tau_lower_bound(args.beta, args.theta, args.mu, constants)
        hi_sarah = theory.tau_upper_bound_sarah(args.beta)
        hi_svrg = theory.tau_upper_bound_svrg(args.beta)
        print(f"Lemma 1: tau in [{lo:.1f}, {hi_sarah:.1f}] (SARAH), "
              f"[{lo:.1f}, {hi_svrg:.1f}] (SVRG)")
        feasible = theory.lemma1_feasible(
            args.beta, 0.5 * (lo + hi_sarah), args.theta, args.mu, constants
        )
        print(f"SARAH midpoint feasible: {feasible}")
    except InfeasibleParametersError as exc:
        print(f"Lemma 1 infeasible: {exc}")
    factor = theory.federated_factor(args.theta, args.mu, constants)
    print(f"Theorem 1: Theta = {factor:.5g} "
          f"(theta cap {theory.theta_accuracy_cap(args.sigma_sq):.4f})")
    if factor > 0:
        T = theory.global_iterations_required(
            args.delta0, args.theta, args.mu, constants, args.eps
        )
        print(f"Corollary 1: T >= {T:.1f} for eps = {args.eps}")
    return 0


def cmd_optimize(args) -> int:
    constants = ProblemConstants(L=args.L, lam=args.lam, sigma_bar_sq=args.sigma_sq)
    gammas = (
        np.geomspace(args.gamma_min, args.gamma_max, args.points)
        if args.points > 1
        else [args.gamma_min]
    )
    print(f"Fig. 1 sweep: L={args.L} lambda={args.lam} sigma^2={args.sigma_sq}")
    for opt in param_opt.sweep_gamma(gammas, constants):
        print("  " + opt.as_row())
    return 0


def cmd_lint(args) -> int:
    """Run reprolint over the given paths (default: the src tree)."""
    try:
        from tools.reprolint.cli import main as reprolint_main
    except ImportError:
        print(
            "error: the 'tools' package is not importable; run 'repro lint' "
            "from the repository root (or use 'python -m tools.reprolint')",
            file=sys.stderr,
        )
        return 2
    argv = list(args.paths) + ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.prune_baseline:
        argv.append("--prune-baseline")
    if args.fix:
        argv.append("--fix")
    if args.dry_run:
        argv.append("--dry-run")
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.changed is not None:
        argv += ["--changed", args.changed]
    if args.list_rules:
        argv.append("--list-rules")
    return reprolint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FedProxVR (ICPP 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="train one algorithm")
    p_run.add_argument(
        "--algorithm", "-a", default="fedproxvr-sarah",
        help="fedavg | fedprox | fedproxvr-svrg | fedproxvr-sarah | gd",
    )
    _add_run_options(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="train several algorithms")
    p_cmp.add_argument(
        "--algorithms", "-a", nargs="+",
        default=["fedavg", "fedproxvr-svrg", "fedproxvr-sarah"],
    )
    _add_run_options(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_th = sub.add_parser("theory", help="evaluate Lemma 1 / Theorem 1")
    p_th.add_argument("--L", type=float, default=1.0)
    p_th.add_argument("--lam", type=float, default=0.5)
    p_th.add_argument("--sigma-sq", type=float, default=0.0)
    p_th.add_argument("--beta", type=float, default=10.0)
    p_th.add_argument("--theta", type=float, default=0.3)
    p_th.add_argument("--mu", type=float, default=5.0)
    p_th.add_argument("--delta0", type=float, default=1.0)
    p_th.add_argument("--eps", type=float, default=0.01)
    p_th.set_defaults(func=cmd_theory)

    p_opt = sub.add_parser("optimize", help="solve the section-4.3 problem (Fig. 1)")
    p_opt.add_argument("--L", type=float, default=1.0)
    p_opt.add_argument("--lam", type=float, default=0.5)
    p_opt.add_argument("--sigma-sq", type=float, default=0.0)
    p_opt.add_argument("--gamma-min", type=float, default=1e-4)
    p_opt.add_argument("--gamma-max", type=float, default=1.0)
    p_opt.add_argument("--points", type=int, default=7)
    p_opt.set_defaults(func=cmd_optimize)

    p_rep = sub.add_parser(
        "obs-report", help="summarize a JSONL trace from 'repro run --trace'"
    )
    p_rep.add_argument("trace", help="path to the JSONL trace (or ledger) file")
    p_rep.add_argument("--top", type=int, default=10,
                       help="number of hotspot rows (default 10)")
    p_rep.add_argument("--ledger", action="store_true",
                       help="treat the input as a repro.ledger/v1 run ledger "
                            "from 'repro run --ledger'")
    p_rep.set_defaults(func=cmd_obs_report)

    p_diff = sub.add_parser(
        "obs-diff",
        help="diff two run ledgers (metric series + hotspot self-times)",
    )
    p_diff.add_argument("ledger_a", help="baseline repro.ledger/v1 file")
    p_diff.add_argument("ledger_b", help="candidate repro.ledger/v1 file")
    p_diff.add_argument("--top", type=int, default=10,
                        help="number of hotspot rows (default 10)")
    p_diff.add_argument("--rel-threshold", type=float, default=0.25,
                        help="relative slowdown counted as a regression "
                             "(default 0.25 = 25%%)")
    p_diff.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when the verdict is 'regression'")
    p_diff.set_defaults(func=cmd_obs_diff)

    p_chk = sub.add_parser(
        "obs-check",
        help="validate a run ledger and assert alert/round expectations",
    )
    p_chk.add_argument("ledger", help="repro.ledger/v1 file to check")
    p_chk.add_argument("--max-alerts", type=int, default=None,
                       help="fail (exit 1) when more alerts were recorded")
    p_chk.add_argument("--expect-alert", metavar="MONITOR", action="append",
                       default=None,
                       help="fail (exit 1) unless this monitor fired, e.g. "
                            "theorem1_contraction (repeatable)")
    p_chk.add_argument("--require-rounds", type=int, default=None,
                       help="fail (exit 1) with fewer committed rounds")
    p_chk.set_defaults(func=cmd_obs_check)

    p_lint = sub.add_parser(
        "lint", help="run the reprolint static-analysis suite (repo checkout only)"
    )
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    p_lint.add_argument("--output", default=None,
                        help="write the report to this file instead of stdout")
    p_lint.add_argument("--fix", action="store_true",
                        help="apply safe auto-fixes (unused imports, broken "
                             "__all__ entries)")
    p_lint.add_argument("--dry-run", action="store_true",
                        help="with --fix: print the diff, write nothing")
    p_lint.add_argument("--prune-baseline", action="store_true",
                        help="drop stale baseline entries and exit")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="accept current findings into the baseline")
    p_lint.add_argument("--jobs", type=int, default=1,
                        help="analyze files on N threads (default 1: serial)")
    p_lint.add_argument("--changed", nargs="?", const="origin/main",
                        default=None, metavar="REF",
                        help="lint only files changed vs REF (default "
                             "origin/main when the flag is bare)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print every rule and exit")
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigurationError, InfeasibleParametersError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
