"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``     — train one algorithm on one dataset and print/save the history.
``compare`` — train several algorithms under identical settings.
``theory``  — evaluate Lemma 1 bounds and Theorem 1's factor at given knobs.
``optimize``— solve the §4.3 problem for one or more gamma values (Fig. 1).
``obs-report`` — render the span-tree / hotspot summary of a JSONL trace
produced by ``repro run --trace``.
``lint``    — run the reprolint static-analysis suite (requires the repo
checkout: the ``tools`` package is not shipped with the installed wheel).

The CLI is a thin veneer over the public API, so every option maps 1:1
onto :class:`repro.fl.runner.FederatedRunConfig` / the theory functions.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, List, Optional

import numpy as np

from repro.core import param_opt, theory
from repro.core.theory import ProblemConstants
from repro.datasets import make_digits, make_fashion, make_synthetic
from repro.datasets.base import FederatedDataset
from repro.exceptions import ConfigurationError, InfeasibleParametersError
from repro.fl.history import format_comparison
from repro.fl.runner import EXECUTOR_CHOICES, FederatedRunConfig, run_federated
from repro.models import (
    Model,
    MultinomialLogisticModel,
    make_mlp_model,
    make_paper_cnn_model,
)
from repro.obs import CsvMetricsSink, JsonlSink, StderrReporter, telemetry
from repro.obs.report import render_report

DATASETS = ("synthetic", "digits", "fashion")
MODELS = ("mlr", "mlp", "cnn")


def build_dataset(name: str, *, num_devices: int, num_samples: int, seed: int) -> FederatedDataset:
    """Instantiate a dataset by CLI name."""
    if name == "synthetic":
        return make_synthetic(
            1.0, 1.0, num_devices=num_devices,
            min_size=40, max_size=max(80, num_samples // max(1, num_devices)),
            seed=seed,
        )
    if name == "digits":
        return make_digits(num_devices=num_devices, num_samples=num_samples, seed=seed)
    if name == "fashion":
        return make_fashion(num_devices=num_devices, num_samples=num_samples, seed=seed)
    raise ConfigurationError(f"unknown dataset {name!r}; choices: {DATASETS}")


def build_model_factory(name: str, dataset: FederatedDataset) -> Callable[[], Model]:
    """Model factory by CLI name, sized to the dataset."""
    if name == "mlr":
        return lambda: MultinomialLogisticModel(
            dataset.num_features, dataset.num_classes
        )
    if name == "mlp":
        return lambda: make_mlp_model(
            dataset.num_features, dataset.num_classes, (64,), seed=0
        )
    if name == "cnn":
        side = int(round(dataset.num_features**0.5))
        if side * side != dataset.num_features:
            raise ConfigurationError(
                "cnn model needs square image features (e.g. the digits/fashion datasets)"
            )
        return lambda: make_paper_cnn_model(
            (1, side, side), dataset.num_classes, channel_scale=0.25, seed=0
        )
    raise ConfigurationError(f"unknown model {name!r}; choices: {MODELS}")


def _add_run_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", choices=DATASETS, default="synthetic")
    p.add_argument("--model", choices=MODELS, default="mlr")
    p.add_argument("--devices", type=int, default=20)
    p.add_argument("--samples", type=int, default=2000,
                   help="global corpus size for image datasets")
    p.add_argument("--rounds", "-T", type=int, default=50)
    p.add_argument("--tau", type=int, default=10, help="local iterations")
    p.add_argument("--beta", type=float, default=5.0, help="eta = 1/(beta L)")
    p.add_argument("--mu", type=float, default=0.1, help="proximal penalty")
    p.add_argument("--batch-size", "-B", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--eval-every", type=int, default=5)
    p.add_argument("--executor", choices=EXECUTOR_CHOICES, default="sequential",
                   help="client scheduling: 'batched' runs homogeneous cohorts "
                        "as stacked solves (see docs/PERFORMANCE.md)")
    p.add_argument("--output", help="write the history JSON here")
    p.add_argument("--trace", metavar="PATH",
                   help="enable telemetry and write the JSONL event trace here "
                        "(inspect with 'repro obs-report')")
    p.add_argument("--metrics", metavar="PATH",
                   help="enable telemetry and write the per-round/run metrics CSV here")
    p.add_argument("--obs-stderr", action="store_true",
                   help="with telemetry on, also print per-round metrics to stderr")
    p.add_argument("--profile-nn", action="store_true",
                   help="with telemetry on, time every nn layer forward/backward "
                        "(adds overhead; off by default)")


def _configure_telemetry(args) -> bool:
    """Start a telemetry session from CLI flags; True if one started."""
    sinks = []
    if args.trace:
        sinks.append(JsonlSink(args.trace))
    if args.metrics:
        sinks.append(CsvMetricsSink(args.metrics))
    if args.obs_stderr:
        sinks.append(StderrReporter())
    if not sinks:
        if args.profile_nn:
            raise ConfigurationError(
                "--profile-nn needs a telemetry sink; add --trace, "
                "--metrics, or --obs-stderr"
            )
        return False
    telemetry.configure(
        sinks,
        nn_profiling=args.profile_nn,
        extra_meta={"dataset": args.dataset, "model": args.model,
                    "seed": args.seed},
    )
    return True


def _make_config(args, algorithm: str) -> FederatedRunConfig:
    return FederatedRunConfig(
        algorithm=algorithm,
        num_rounds=args.rounds,
        num_local_steps=args.tau,
        beta=args.beta,
        mu=args.mu,
        batch_size=args.batch_size,
        seed=args.seed,
        eval_every=args.eval_every,
        executor=args.executor,
    )


def cmd_run(args) -> int:
    dataset = build_dataset(
        args.dataset, num_devices=args.devices, num_samples=args.samples, seed=args.seed
    )
    factory = build_model_factory(args.model, dataset)
    print(dataset.summary())
    traced = _configure_telemetry(args)
    try:
        history, _ = run_federated(
            dataset, factory, _make_config(args, args.algorithm), verbose=True
        )
    finally:
        if traced:
            telemetry.shutdown()
    if args.output:
        history.to_json(args.output)
        print(f"history written to {args.output}")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(render with: repro obs-report {args.trace})")
    if args.metrics:
        print(f"metrics CSV written to {args.metrics}")
    return 0


def cmd_compare(args) -> int:
    dataset = build_dataset(
        args.dataset, num_devices=args.devices, num_samples=args.samples, seed=args.seed
    )
    factory = build_model_factory(args.model, dataset)
    print(dataset.summary())
    traced = _configure_telemetry(args)
    histories = []
    try:
        for algorithm in args.algorithms:
            config = _make_config(args, algorithm)
            if algorithm == "fedavg":
                config.mu = 0.0
            history, _ = run_federated(dataset, factory, config)
            histories.append(history)
            print(f"  {algorithm:>18s}: final loss {history.final('train_loss'):.4f}  "
                  f"acc {history.final('test_accuracy'):.4f}")
    finally:
        if traced:
            telemetry.shutdown()
    print()
    print(format_comparison(histories))
    return 0


def cmd_obs_report(args) -> int:
    try:
        print(render_report(args.trace, top=args.top), end="")
    except (OSError, ValueError) as exc:
        print(f"error: cannot render {args.trace!r}: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_theory(args) -> int:
    constants = ProblemConstants(L=args.L, lam=args.lam, sigma_bar_sq=args.sigma_sq)
    print(f"constants: L={args.L} lambda={args.lam} sigma^2={args.sigma_sq}")
    try:
        lo = theory.tau_lower_bound(args.beta, args.theta, args.mu, constants)
        hi_sarah = theory.tau_upper_bound_sarah(args.beta)
        hi_svrg = theory.tau_upper_bound_svrg(args.beta)
        print(f"Lemma 1: tau in [{lo:.1f}, {hi_sarah:.1f}] (SARAH), "
              f"[{lo:.1f}, {hi_svrg:.1f}] (SVRG)")
        feasible = theory.lemma1_feasible(
            args.beta, 0.5 * (lo + hi_sarah), args.theta, args.mu, constants
        )
        print(f"SARAH midpoint feasible: {feasible}")
    except InfeasibleParametersError as exc:
        print(f"Lemma 1 infeasible: {exc}")
    factor = theory.federated_factor(args.theta, args.mu, constants)
    print(f"Theorem 1: Theta = {factor:.5g} "
          f"(theta cap {theory.theta_accuracy_cap(args.sigma_sq):.4f})")
    if factor > 0:
        T = theory.global_iterations_required(
            args.delta0, args.theta, args.mu, constants, args.eps
        )
        print(f"Corollary 1: T >= {T:.1f} for eps = {args.eps}")
    return 0


def cmd_optimize(args) -> int:
    constants = ProblemConstants(L=args.L, lam=args.lam, sigma_bar_sq=args.sigma_sq)
    gammas = (
        np.geomspace(args.gamma_min, args.gamma_max, args.points)
        if args.points > 1
        else [args.gamma_min]
    )
    print(f"Fig. 1 sweep: L={args.L} lambda={args.lam} sigma^2={args.sigma_sq}")
    for opt in param_opt.sweep_gamma(gammas, constants):
        print("  " + opt.as_row())
    return 0


def cmd_lint(args) -> int:
    """Run reprolint over the given paths (default: the src tree)."""
    try:
        from tools.reprolint.cli import main as reprolint_main
    except ImportError:
        print(
            "error: the 'tools' package is not importable; run 'repro lint' "
            "from the repository root (or use 'python -m tools.reprolint')",
            file=sys.stderr,
        )
        return 2
    argv = list(args.paths) + ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.prune_baseline:
        argv.append("--prune-baseline")
    if args.fix:
        argv.append("--fix")
    if args.dry_run:
        argv.append("--dry-run")
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.changed is not None:
        argv += ["--changed", args.changed]
    if args.list_rules:
        argv.append("--list-rules")
    return reprolint_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FedProxVR (ICPP 2020) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="train one algorithm")
    p_run.add_argument(
        "--algorithm", "-a", default="fedproxvr-sarah",
        help="fedavg | fedprox | fedproxvr-svrg | fedproxvr-sarah | gd",
    )
    _add_run_options(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="train several algorithms")
    p_cmp.add_argument(
        "--algorithms", "-a", nargs="+",
        default=["fedavg", "fedproxvr-svrg", "fedproxvr-sarah"],
    )
    _add_run_options(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_th = sub.add_parser("theory", help="evaluate Lemma 1 / Theorem 1")
    p_th.add_argument("--L", type=float, default=1.0)
    p_th.add_argument("--lam", type=float, default=0.5)
    p_th.add_argument("--sigma-sq", type=float, default=0.0)
    p_th.add_argument("--beta", type=float, default=10.0)
    p_th.add_argument("--theta", type=float, default=0.3)
    p_th.add_argument("--mu", type=float, default=5.0)
    p_th.add_argument("--delta0", type=float, default=1.0)
    p_th.add_argument("--eps", type=float, default=0.01)
    p_th.set_defaults(func=cmd_theory)

    p_opt = sub.add_parser("optimize", help="solve the section-4.3 problem (Fig. 1)")
    p_opt.add_argument("--L", type=float, default=1.0)
    p_opt.add_argument("--lam", type=float, default=0.5)
    p_opt.add_argument("--sigma-sq", type=float, default=0.0)
    p_opt.add_argument("--gamma-min", type=float, default=1e-4)
    p_opt.add_argument("--gamma-max", type=float, default=1.0)
    p_opt.add_argument("--points", type=int, default=7)
    p_opt.set_defaults(func=cmd_optimize)

    p_rep = sub.add_parser(
        "obs-report", help="summarize a JSONL trace from 'repro run --trace'"
    )
    p_rep.add_argument("trace", help="path to the JSONL trace file")
    p_rep.add_argument("--top", type=int, default=10,
                       help="number of hotspot rows (default 10)")
    p_rep.set_defaults(func=cmd_obs_report)

    p_lint = sub.add_parser(
        "lint", help="run the reprolint static-analysis suite (repo checkout only)"
    )
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    p_lint.add_argument("--output", default=None,
                        help="write the report to this file instead of stdout")
    p_lint.add_argument("--fix", action="store_true",
                        help="apply safe auto-fixes (unused imports, broken "
                             "__all__ entries)")
    p_lint.add_argument("--dry-run", action="store_true",
                        help="with --fix: print the diff, write nothing")
    p_lint.add_argument("--prune-baseline", action="store_true",
                        help="drop stale baseline entries and exit")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="accept current findings into the baseline")
    p_lint.add_argument("--jobs", type=int, default=1,
                        help="analyze files on N threads (default 1: serial)")
    p_lint.add_argument("--changed", nargs="?", const="origin/main",
                        default=None, metavar="REF",
                        help="lint only files changed vs REF (default "
                             "origin/main when the flag is bare)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print every rule and exit")
    p_lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigurationError, InfeasibleParametersError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
