"""Dependency-free terminal visualization of training histories.

The benchmark harness prints series rather than drawing figures (no
plotting dependencies are available offline); this module makes those
series legible: unicode sparklines, aligned multi-run loss tables, and
a coarse ASCII line chart for convergence curves.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.fl.history import TrainingHistory

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: Optional[int] = None) -> str:
    """Render a numeric series as a unicode sparkline.

    Non-finite values render as ``!``; a constant series renders at the
    lowest level.  ``width`` optionally downsamples long series by
    block-averaging.
    """
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        return ""
    if width is not None and data.size > width:
        # block-average into `width` buckets
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array(
            [np.nanmean(data[a:b]) if b > a else np.nan for a, b in zip(edges, edges[1:])]
        )
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return "!" * data.size
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo
    chars = []
    for v in data:
        if not np.isfinite(v):
            chars.append("!")
        elif span == 0.0:
            chars.append(_SPARK_LEVELS[0])
        else:
            level = int(round((v - lo) / span * (len(_SPARK_LEVELS) - 1)))
            chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def history_sparklines(
    histories: Sequence[TrainingHistory],
    *,
    metric: str = "train_loss",
    width: int = 40,
) -> str:
    """One labeled sparkline per run, on a shared scale annotation."""
    lines = []
    for h in histories:
        series = h.series(metric)
        if not series:
            lines.append(f"{h.algorithm:>20s}  (no records)")
            continue
        lines.append(
            f"{h.algorithm:>20s}  {sparkline(series, width=width)}  "
            f"[{series[0]:.4g} -> {series[-1]:.4g}]"
        )
    return "\n".join(lines)


def ascii_chart(
    histories: Sequence[TrainingHistory],
    *,
    metric: str = "train_loss",
    height: int = 12,
    width: int = 60,
) -> str:
    """Coarse multi-series ASCII line chart (one symbol per run)."""
    symbols = "*o+x#@%&"
    all_series: List[np.ndarray] = []
    for h in histories:
        s = np.asarray(h.series(metric), dtype=np.float64)
        all_series.append(s[np.isfinite(s)])
    nonempty = [s for s in all_series if s.size]
    finite = np.concatenate(nonempty) if nonempty else np.array([])
    if finite.size == 0:
        return "(no finite data)"
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for run_idx, series in enumerate(all_series):
        if series.size == 0:
            continue
        sym = symbols[run_idx % len(symbols)]
        for j in range(width):
            src = min(series.size - 1, int(j / max(1, width - 1) * (series.size - 1)))
            row = int((hi - series[src]) / span * (height - 1))
            grid[row][j] = sym
    lines = [f"{hi:10.4g} ┤" + "".join(grid[0])]
    lines += ["           │" + "".join(row) for row in grid[1:-1]]
    lines.append(f"{lo:10.4g} ┤" + "".join(grid[-1]))
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={h.algorithm}" for i, h in enumerate(histories)
    )
    lines.append("           " + legend)
    return "\n".join(lines)
