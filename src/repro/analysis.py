"""Multi-seed experiment replication and summary statistics.

Single-seed curves at reduced scale are noisy; the benches and examples
use this module to rerun a configuration across seeds and report
mean ± std series and final-metric confidence intervals — the standard
hygiene for the "who wins" claims the paper's figures make.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.exceptions import ConfigurationError
from repro.fl.history import TrainingHistory
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models.base import Model


@dataclass
class ReplicatedSeries:
    """Mean/std of one metric across seeds, aligned on round indices."""

    metric: str
    rounds: np.ndarray
    mean: np.ndarray
    std: np.ndarray
    num_seeds: int

    def last(self) -> Tuple[float, float]:
        """(mean, std) of the final recorded round."""
        if self.mean.size == 0:
            return float("nan"), float("nan")
        return float(self.mean[-1]), float(self.std[-1])

    def format_row(self) -> str:
        """One-line summary ``metric: final mean +- std (n seeds)``."""
        m, s = self.last()
        return f"{self.metric}: {m:.5f} +- {s:.5f} (n={self.num_seeds})"


@dataclass
class ReplicatedRun:
    """All histories of one configuration across seeds."""

    algorithm: str
    histories: List[TrainingHistory]

    def series(self, metric: str) -> ReplicatedSeries:
        """Aggregate one metric across seeds (requires aligned rounds)."""
        if not self.histories:
            raise ConfigurationError("no histories to aggregate")
        rounds = [tuple(r.round_index for r in h.records) for h in self.histories]
        if len(set(rounds)) != 1:
            raise ConfigurationError(
                "histories have mismatched evaluation rounds; use identical "
                "num_rounds/eval_every across seeds"
            )
        data = np.array([h.series(metric) for h in self.histories], dtype=float)
        return ReplicatedSeries(
            metric=metric,
            rounds=np.array(rounds[0], dtype=int),
            mean=data.mean(axis=0),
            std=data.std(axis=0, ddof=1) if data.shape[0] > 1 else np.zeros(data.shape[1]),
            num_seeds=data.shape[0],
        )

    def final_values(self, metric: str) -> np.ndarray:
        """Per-seed final values of a metric."""
        return np.array([h.final(metric) for h in self.histories], dtype=float)


def run_replicated(
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    config: FederatedRunConfig,
    *,
    seeds: Sequence[int],
    verbose: bool = False,
) -> ReplicatedRun:
    """Run one configuration once per seed."""
    if not seeds:
        raise ConfigurationError("need at least one seed")
    histories = []
    for seed in seeds:
        cfg = replace(config, seed=int(seed))
        history, _ = run_federated(dataset, model_factory, cfg, verbose=verbose)
        histories.append(history)
    return ReplicatedRun(algorithm=config.algorithm, histories=histories)


def compare_replicated(
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    configs: Dict[str, FederatedRunConfig],
    *,
    seeds: Sequence[int],
) -> Dict[str, ReplicatedRun]:
    """Replicate several labeled configurations over the same seeds."""
    return {
        label: run_replicated(dataset, model_factory, cfg, seeds=seeds)
        for label, cfg in configs.items()
    }


def paired_seed_advantage(
    a: ReplicatedRun,
    b: ReplicatedRun,
    *,
    metric: str = "train_loss",
    lower_is_better: bool = True,
) -> Dict[str, float]:
    """Paired per-seed comparison of two runs.

    Because both runs use the same seeds (same data order, same
    initialization), differencing per seed removes most run-to-run
    variance — the right test for "A beats B" claims at small n.

    Returns the mean paired difference (b - a under lower-is-better, so
    positive favors ``a``), its std, and the win fraction.
    """
    va = a.final_values(metric)
    vb = b.final_values(metric)
    if va.shape != vb.shape:
        raise ConfigurationError("runs have different numbers of seeds")
    diff = (vb - va) if lower_is_better else (va - vb)
    wins = float(np.mean(diff > 0))
    return {
        "mean_advantage": float(diff.mean()),
        "std_advantage": float(diff.std(ddof=1)) if diff.size > 1 else 0.0,
        "win_fraction": wins,
        "num_seeds": int(diff.size),
    }


def summarize(
    runs: Dict[str, ReplicatedRun], *, metrics: Sequence[str] = ("train_loss", "test_accuracy")
) -> str:
    """Multi-run, multi-metric text summary table."""
    lines = []
    header = f"{'config':>22s}" + "".join(f"{m:>28s}" for m in metrics)
    lines.append(header)
    for label, run in runs.items():
        cells = []
        for metric in metrics:
            m, s = run.series(metric).last()
            cells.append(f"{m:14.5f} +- {s:8.5f}")
        lines.append(f"{label:>22s}" + "".join(f"{c:>28s}" for c in cells))
    return "\n".join(lines)
