"""Pluggable array-backend seam.

Every stacked-ndarray kernel in the cohort execution path (batched
minibatch gradients, vectorized prox/estimator algebra, im2col GEMMs)
routes its heavy array operations through an :class:`ArrayBackend`
rather than calling NumPy directly.  The default backend *is* NumPy —
the seam exists so that a faster drop-in (a threaded BLAS wrapper, an
accelerator array library with a NumPy-compatible surface) can be
swapped in per process or per scope without touching any algorithm
code, and so that scratch-buffer reuse has one owner instead of being
re-invented at every call site.

The package sits at layer 0 of the reprolint import DAG (alongside
``repro.utils`` and ``repro.obs``): it may not import models, solvers,
or anything federated — it only knows about arrays.

Usage::

    from repro.backend import get_backend, use_backend

    be = get_backend()            # NumpyBackend unless overridden
    C = be.batched_matmul(A, B)   # (K, m, n) @ (K, n, p)

    with use_backend(MyBackend()):
        ...                       # scoped override (tests, experiments)
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional

from repro.backend.numpy_backend import ArrayBackend, NumpyBackend, ScratchPool
from repro.backend.shm import ArraySpec, ShmArena

__all__ = [
    "ArrayBackend",
    "ArraySpec",
    "NumpyBackend",
    "ScratchPool",
    "ShmArena",
    "get_backend",
    "set_backend",
    "use_backend",
]

_DEFAULT = NumpyBackend()
_state = threading.local()


def get_backend() -> ArrayBackend:
    """The active backend for this thread (default: shared NumPy backend)."""
    return getattr(_state, "backend", None) or _DEFAULT


def set_backend(backend: Optional[ArrayBackend]) -> Optional[ArrayBackend]:
    """Install ``backend`` as this thread's active backend.

    ``None`` restores the process-wide NumPy default.  The override is
    thread-local so worker threads running homogeneous cohorts cannot
    race each other's backend choice.  Returns the previous override
    (``None`` when the default was active) so callers can restore it.
    """
    previous = getattr(_state, "backend", None)
    _state.backend = backend
    return previous


@contextlib.contextmanager
def use_backend(backend: ArrayBackend) -> Iterator[ArrayBackend]:
    """Scoped backend override (restores the previous one on exit)."""
    previous = getattr(_state, "backend", None)
    _state.backend = backend
    try:
        yield backend
    finally:
        _state.backend = previous
