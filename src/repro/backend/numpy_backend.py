"""The default (and reference) array backend: plain NumPy + BLAS.

Two responsibilities:

* :class:`ArrayBackend` defines the narrow operation set the cohort
  kernels need — 2-D and stacked matmul, contiguous gathers, and
  scratch-buffer leasing.  Implementations must be *value-exact*: a
  backend that returns different bits than NumPy for the same inputs
  breaks the bit-identity contract between the batched and sequential
  execution paths and will fail the equivalence suite.
* :class:`ScratchPool` caches preallocated buffers keyed by
  ``(shape, dtype)`` so per-step temporaries (minibatch gathers, column
  matrices) are allocated once per shape instead of once per call.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


class ScratchPool:
    """Reusable ndarray buffers keyed by shape and dtype.

    ``take`` returns a buffer with *undefined contents*; callers must
    fully overwrite it.  Each key holds exactly one buffer: taking the
    same key twice returns the same memory, so a pool must not be used
    for two live buffers of the same shape at once (lease a second pool
    instead).  Not thread-safe by design — every thread/executor owns
    its own pool.
    """

    def __init__(self, max_entries: int = 32) -> None:
        self._buffers: Dict[Tuple[Tuple[int, ...], str], np.ndarray] = {}
        self._max_entries = int(max_entries)

    def take(self, shape: Sequence[int], dtype=np.float64) -> np.ndarray:
        key = (tuple(int(d) for d in shape), np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            if len(self._buffers) >= self._max_entries:
                # Simple full-flush eviction: shapes are stable inside a
                # solve loop, so hitting the cap at all means the
                # workload changed and the old shapes are dead anyway.
                self._buffers.clear()
            buf = np.empty(key[0], dtype=dtype)
            self._buffers[key] = buf
        return buf

    def clear(self) -> None:
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)


class ArrayBackend(ABC):
    """Minimal operation set behind which array math can be swapped."""

    #: identifier recorded in bench artifacts
    name: str = "abstract"

    @abstractmethod
    def matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """2-D (or broadcast-stacked) matrix product ``a @ b``."""

    @abstractmethod
    def batched_matmul(
        self, a: np.ndarray, b: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Stacked matmul ``(K, m, n) @ (K, n, p) -> (K, m, p)``."""

    @abstractmethod
    def gather_rows(
        self, src: np.ndarray, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Row gather ``src[indices]`` (optionally into ``out``)."""

    @abstractmethod
    def scratch(self, shape: Sequence[int], dtype=np.float64) -> np.ndarray:
        """Lease a reusable uninitialized buffer of the given shape."""


class NumpyBackend(ArrayBackend):
    """Reference backend: NumPy ufuncs + whatever BLAS NumPy links.

    Stacked matmuls dispatch one GEMM per slice through the same BLAS
    entry point the 2-D path uses, which is what makes the batched
    cohort kernels bit-identical to per-client solves.
    """

    name = "numpy"

    def __init__(self) -> None:
        self._pool = ScratchPool()

    # shape: a (m, n) float64, b (n, p) float64 -> (m, p) float64
    def matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    # shape: a (K, m, n) float64, b (K, n, p) float64 -> (K, m, p) float64
    def batched_matmul(self, a, b, out=None):
        return np.matmul(a, b, out=out)

    # shape: src (N, D), indices (B,) -> (B, D)
    def gather_rows(self, src, indices, out=None):
        return np.take(src, indices, axis=0, out=out)

    def scratch(self, shape, dtype=np.float64):
        return self._pool.take(shape, dtype)
