"""Shared-memory array placement for multi-process executors.

A :class:`ShmArena` owns a set of named ``multiprocessing.shared_memory``
segments holding ndarrays.  The intended protocol for a process-pool
executor is:

1. the parent ``put``s every client's data shard (and a writable
   broadcast block for the per-round global model) into the arena once,
   at pool start-up;
2. task payloads carry only ``(client_id, round_index)`` — workers
   ``attach`` the named segments lazily and reuse the mapping for every
   subsequent task, so neither model weights nor data shards are ever
   pickled per task;
3. the parent ``close``s (and unlinks) the arena when training ends.

Attached views are read-shared memory: workers must treat ``put`` arrays
as immutable, while ``create`` blocks are single-writer (the parent)
with readers synchronized by the task queue (a worker only reads the
broadcast block while handling a task submitted *after* the write).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs import telemetry

__all__ = ["ArraySpec", "ShmArena", "attach_array"]

_ATTACH_LOCK = threading.Lock()


@dataclass(frozen=True)
class ArraySpec:
    """Everything a process needs to map one shared array: name + layout."""

    shm_name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@contextmanager
def _untracked_attach():
    """Suppress resource-tracker registration while attaching.

    Attach-only processes must not let the tracker "clean up" (unlink)
    segments the creating process still owns — the well-known
    resource_tracker over-zealousness (bpo-38119).  Python 3.13 grows a
    ``track=False`` parameter for exactly this; on earlier versions the
    standard workaround is to skip registration during the attach (an
    after-the-fact ``unregister`` would double-remove when several
    workers sharing one tracker attach the same segment).
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - platforms without a tracker
        yield
        return
    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _skip_shm(name, rtype):
            if rtype != "shared_memory":
                original(name, rtype)

        resource_tracker.register = _skip_shm
        try:
            yield
        finally:
            resource_tracker.register = original


def attach_array(spec: ArraySpec) -> Tuple[np.ndarray, shared_memory.SharedMemory]:
    """Map an existing segment as an ndarray.

    Returns ``(array, handle)``; the caller must keep ``handle`` alive
    for as long as the array is used and ``handle.close()`` it when
    done.  The mapping is never registered with the local resource
    tracker — only the creating :class:`ShmArena` unlinks.
    """
    with _untracked_attach():
        handle = shared_memory.SharedMemory(name=spec.shm_name)
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=handle.buf)
    telemetry.counter_add("backend.shm.attached")
    return array, handle


class ShmArena:
    """Creator-side registry of shared-memory arrays (owns the segments)."""

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._closed = False

    def put(self, array: np.ndarray) -> ArraySpec:
        """Copy ``array`` into a fresh shared segment; returns its spec."""
        self._check_open()
        array = np.ascontiguousarray(array)
        # shm segments must be non-empty; keep 1 byte for 0-size arrays.
        shm = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
        spec = ArraySpec(shm.name, tuple(array.shape), array.dtype.str)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        self._segments[shm.name] = shm
        telemetry.counter_add("backend.shm.created")
        return spec

    def create(self, shape, dtype=np.float64) -> Tuple[ArraySpec, np.ndarray]:
        """Allocate a writable shared block (e.g. the broadcast model).

        Returns ``(spec, view)`` — the view stays valid until
        :meth:`close` and may be rewritten in place between rounds.
        """
        self._check_open()
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        shm = shared_memory.SharedMemory(create=True, size=max(1, nbytes))
        spec = ArraySpec(shm.name, tuple(int(d) for d in shape), dtype.str)
        view = np.ndarray(spec.shape, dtype=dtype, buffer=shm.buf)
        view[...] = 0.0
        self._segments[shm.name] = shm
        telemetry.counter_add("backend.shm.created")
        return spec, view

    def close(self) -> None:
        """Close and unlink every owned segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        segments, self._segments = self._segments, {}
        for shm in segments.values():
            try:
                shm.close()
                shm.unlink()
                telemetry.counter_add("backend.shm.unlinked")
            except FileNotFoundError:
                pass

    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("ShmArena already closed")

    def __len__(self) -> int:
        return len(self._segments)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
