"""Per-device delay models feeding the §4.3 training-time analysis.

Each device has a computation delay ``d_cmp`` per local gradient
evaluation and a communication delay ``d_com`` per round trip with the
server.  The paper's total training time (19) is
``T (d_com + d_cmp tau)``; in simulation we charge each round by the
*slowest* device (synchronous aggregation) through
:class:`repro.utils.timing.SimulatedClock`.

Delay models are **index-addressable**: the server draws only the
selected cohort's delays through :meth:`DelayModel.round_delay_at`, so
partial participation over ``N = 10^6`` registered devices never walks
an O(N) delay list.  :class:`PackedDelayModel` goes further and stores
the constants as scalars or packed ndarrays — ``make_uniform_delays``
is O(1) memory at any population size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_positive_int


@dataclass(frozen=True)
class DeviceDelay:
    """One device's delay constants."""

    d_cmp: float
    d_com: float

    def __post_init__(self) -> None:
        check_positive("d_cmp", self.d_cmp, strict=False)
        check_positive("d_com", self.d_com, strict=False)

    @property
    def gamma(self) -> float:
        """Weight factor ``gamma = d_cmp / d_com`` (§4.3)."""
        if self.d_com == 0.0:
            return float("inf")
        return self.d_cmp / self.d_com

    def round_delay(self, num_gradient_evaluations: int) -> float:
        """Delay of one round with the given local compute volume."""
        if num_gradient_evaluations < 0:
            raise ConfigurationError("negative gradient-evaluation count")
        return self.d_com + self.d_cmp * num_gradient_evaluations


class DelayModel:
    """Delay constants for a whole federation (materialized list form)."""

    def __init__(self, delays: Sequence[DeviceDelay]) -> None:
        if not delays:
            raise ConfigurationError("DelayModel requires >= 1 device")
        self.delays: List[DeviceDelay] = list(delays)

    def __len__(self) -> int:
        return len(self.delays)

    def delay_at(self, index: int) -> DeviceDelay:
        """Device ``index``'s delay constants (index-addressable access)."""
        if not 0 <= index < len(self):
            raise ConfigurationError(
                f"delay index {index} out of range [0, {len(self)})"
            )
        return self.delays[index]

    def round_delay_at(self, index: int, num_gradient_evaluations: int) -> float:
        """Delay of one round for device ``index`` only.

        The partial-participation hot path: the server charges just the
        selected cohort, never materializing per-device delay objects
        for the rest of the registered population.
        """
        return self.delay_at(index).round_delay(num_gradient_evaluations)

    def round_delays(self, evaluation_counts: Sequence[int]) -> List[float]:
        """Per-device delays of one round, ordered like the devices."""
        if len(evaluation_counts) != len(self):
            raise ConfigurationError(
                f"{len(evaluation_counts)} counts for {len(self)} devices"
            )
        return [
            self.round_delay_at(i, c) for i, c in enumerate(evaluation_counts)
        ]

    def mean_gamma(self) -> float:
        """Federation-average weight factor."""
        return float(
            np.mean([self.delay_at(i).gamma for i in range(len(self))])
        )


class PackedDelayModel(DelayModel):
    """Delay constants stored as scalars or packed float64 vectors.

    ``d_cmp``/``d_com`` may each be a scalar (every device identical —
    O(1) memory regardless of ``num_devices``) or a length-``N`` vector.
    :meth:`delay_at` builds a :class:`DeviceDelay` on demand; the
    backward-compatible ``.delays`` list materializes lazily and should
    only be touched by small-federation diagnostics.
    """

    def __init__(
        self,
        d_cmp: Union[float, np.ndarray],
        d_com: Union[float, np.ndarray],
        num_devices: Optional[int] = None,
    ) -> None:
        cmp_arr = np.asarray(d_cmp, dtype=np.float64)
        com_arr = np.asarray(d_com, dtype=np.float64)
        for name, arr in (("d_cmp", cmp_arr), ("d_com", com_arr)):
            if arr.ndim > 1:
                raise ConfigurationError(f"{name} must be scalar or 1-D")
            if arr.size and float(arr.min()) < 0.0:
                raise ConfigurationError(f"{name} entries must be >= 0")
        lengths = {a.shape[0] for a in (cmp_arr, com_arr) if a.ndim == 1}
        if num_devices is not None:
            check_positive_int("num_devices", num_devices)
            lengths.add(int(num_devices))
        if len(lengths) > 1:
            raise ConfigurationError(
                f"inconsistent delay-model lengths: {sorted(lengths)}"
            )
        if not lengths:
            raise ConfigurationError(
                "scalar delays need an explicit num_devices"
            )
        self._n = lengths.pop()
        if self._n < 1:
            raise ConfigurationError("PackedDelayModel requires >= 1 device")
        self._d_cmp = cmp_arr
        self._d_com = com_arr
        self._materialized: Optional[List[DeviceDelay]] = None

    def __len__(self) -> int:
        return self._n

    def _value(self, arr: np.ndarray, index: int) -> float:
        return float(arr) if arr.ndim == 0 else float(arr[index])

    def delay_at(self, index: int) -> DeviceDelay:
        if not 0 <= index < self._n:
            raise ConfigurationError(
                f"delay index {index} out of range [0, {self._n})"
            )
        return DeviceDelay(
            self._value(self._d_cmp, index), self._value(self._d_com, index)
        )

    def round_delay_at(self, index: int, num_gradient_evaluations: int) -> float:
        if not 0 <= index < self._n:
            raise ConfigurationError(
                f"delay index {index} out of range [0, {self._n})"
            )
        if num_gradient_evaluations < 0:
            raise ConfigurationError("negative gradient-evaluation count")
        return self._value(self._d_com, index) + self._value(
            self._d_cmp, index
        ) * num_gradient_evaluations

    def mean_gamma(self) -> float:
        cmp_v = np.broadcast_to(self._d_cmp, (self._n,))
        com_v = np.broadcast_to(self._d_com, (self._n,))
        safe = np.where(com_v == 0.0, 1.0, com_v)
        gammas = np.where(com_v == 0.0, np.inf, cmp_v / safe)
        return float(np.mean(gammas))

    @property
    def delays(self) -> List[DeviceDelay]:
        """Materialized per-device list (O(N) — diagnostics only)."""
        if self._materialized is None:
            self._materialized = [self.delay_at(i) for i in range(self._n)]
        return self._materialized


def make_uniform_delays(
    num_devices: int, *, d_cmp: float = 1e-3, d_com: float = 1.0
) -> PackedDelayModel:
    """All devices identical — the setting of the §4.3 analysis.

    Returns a :class:`PackedDelayModel` holding two scalars, so the
    default delay model is free even for ``N = 10^6`` registered
    devices.
    """
    if num_devices < 1:
        raise ConfigurationError("num_devices must be >= 1")
    return PackedDelayModel(float(d_cmp), float(d_com), num_devices)


def make_heterogeneous_delays(
    num_devices: int,
    *,
    d_cmp_mean: float = 1e-3,
    d_com_mean: float = 1.0,
    spread: float = 0.5,
    seed: SeedLike = None,
) -> PackedDelayModel:
    """Lognormal device-to-device delay variation (straggler modeling).

    ``spread`` is the lognormal sigma; 0 reduces to uniform delays.
    Returns a :class:`PackedDelayModel` over two length-``N`` vectors
    (the draws are vectorized, no per-device objects).
    """
    if num_devices < 1:
        raise ConfigurationError("num_devices must be >= 1")
    check_positive("d_cmp_mean", d_cmp_mean)
    check_positive("d_com_mean", d_com_mean)
    check_positive("spread", spread, strict=False)
    rng = as_generator(seed)
    # E[lognormal(m, s)] = exp(m + s^2/2); solve m for the target mean.
    offset = -0.5 * spread**2
    cmp_draws = d_cmp_mean * np.exp(rng.normal(offset, spread, num_devices))
    com_draws = d_com_mean * np.exp(rng.normal(offset, spread, num_devices))
    return PackedDelayModel(cmp_draws, com_draws)
