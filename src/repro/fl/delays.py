"""Per-device delay models feeding the §4.3 training-time analysis.

Each device has a computation delay ``d_cmp`` per local gradient
evaluation and a communication delay ``d_com`` per round trip with the
server.  The paper's total training time (19) is
``T (d_com + d_cmp tau)``; in simulation we charge each round by the
*slowest* device (synchronous aggregation) through
:class:`repro.utils.timing.SimulatedClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceDelay:
    """One device's delay constants."""

    d_cmp: float
    d_com: float

    def __post_init__(self) -> None:
        check_positive("d_cmp", self.d_cmp, strict=False)
        check_positive("d_com", self.d_com, strict=False)

    @property
    def gamma(self) -> float:
        """Weight factor ``gamma = d_cmp / d_com`` (§4.3)."""
        if self.d_com == 0.0:
            return float("inf")
        return self.d_cmp / self.d_com

    def round_delay(self, num_gradient_evaluations: int) -> float:
        """Delay of one round with the given local compute volume."""
        if num_gradient_evaluations < 0:
            raise ConfigurationError("negative gradient-evaluation count")
        return self.d_com + self.d_cmp * num_gradient_evaluations


class DelayModel:
    """Delay constants for a whole federation."""

    def __init__(self, delays: Sequence[DeviceDelay]) -> None:
        if not delays:
            raise ConfigurationError("DelayModel requires >= 1 device")
        self.delays: List[DeviceDelay] = list(delays)

    def __len__(self) -> int:
        return len(self.delays)

    def round_delays(self, evaluation_counts: Sequence[int]) -> List[float]:
        """Per-device delays of one round, ordered like the devices."""
        if len(evaluation_counts) != len(self.delays):
            raise ConfigurationError(
                f"{len(evaluation_counts)} counts for {len(self.delays)} devices"
            )
        return [
            d.round_delay(c) for d, c in zip(self.delays, evaluation_counts)
        ]

    def mean_gamma(self) -> float:
        """Federation-average weight factor."""
        return float(np.mean([d.gamma for d in self.delays]))


def make_uniform_delays(
    num_devices: int, *, d_cmp: float = 1e-3, d_com: float = 1.0
) -> DelayModel:
    """All devices identical — the setting of the §4.3 analysis."""
    if num_devices < 1:
        raise ConfigurationError("num_devices must be >= 1")
    return DelayModel([DeviceDelay(d_cmp, d_com)] * num_devices)


def make_heterogeneous_delays(
    num_devices: int,
    *,
    d_cmp_mean: float = 1e-3,
    d_com_mean: float = 1.0,
    spread: float = 0.5,
    seed: SeedLike = None,
) -> DelayModel:
    """Lognormal device-to-device delay variation (straggler modeling).

    ``spread`` is the lognormal sigma; 0 reduces to uniform delays.
    """
    if num_devices < 1:
        raise ConfigurationError("num_devices must be >= 1")
    check_positive("d_cmp_mean", d_cmp_mean)
    check_positive("d_com_mean", d_com_mean)
    check_positive("spread", spread, strict=False)
    rng = as_generator(seed)
    # E[lognormal(m, s)] = exp(m + s^2/2); solve m for the target mean.
    offset = -0.5 * spread**2
    cmp_draws = d_cmp_mean * np.exp(rng.normal(offset, spread, num_devices))
    com_draws = d_com_mean * np.exp(rng.normal(offset, spread, num_devices))
    return DelayModel(
        [DeviceDelay(float(a), float(b)) for a, b in zip(cmp_draws, com_draws)]
    )
