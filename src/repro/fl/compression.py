"""Communication compression for model updates.

The paper motivates FL partly by "saving communication bandwidth"; this
module supplies the standard compression operators used to push that
further, as an extension exercised by ``bench_ablation_compression``:

* :class:`TopKSparsifier` — keep the k largest-magnitude coordinates of
  the *update* (w_local - w_global), zeroing the rest;
* :class:`UniformQuantizer` — b-bit uniform quantization with explicit
  range transmission;
* :class:`SignCompressor` — 1-bit sign compression scaled by the mean
  magnitude (signSGD-style);
* :class:`IdentityCompressor` — the no-op baseline.

Compressors act on *updates*, not raw models, so the scheme composes
with any local solver: the client sends ``compress(w_local - w_global)``
and the server reconstructs ``w_global + decompressed``.
:func:`compress_round` applies this transformation to a whole round's
local models and reports the achieved compression ratio.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_in_range, check_positive_int


@dataclass(frozen=True)
class CompressedUpdate:
    """A compressed update plus its transmission cost in bits."""

    dense: np.ndarray  # reconstructed (decompressed) update
    bits: int


class UpdateCompressor(ABC):
    """Interface: lossy-compress a model update vector."""

    @abstractmethod
    def compress(self, update: np.ndarray) -> CompressedUpdate:
        """Compress and immediately reconstruct ``update``."""

    @staticmethod
    def dense_bits(size: int) -> int:
        """Cost of sending a raw float64 vector."""
        return 64 * size


class IdentityCompressor(UpdateCompressor):
    """No compression (the baseline's cost model)."""

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        return CompressedUpdate(dense=update.copy(), bits=self.dense_bits(update.size))


class TopKSparsifier(UpdateCompressor):
    """Keep the ``k`` largest-|.| coordinates; send (index, value) pairs.

    ``k`` may be given absolutely or as a fraction of the dimension.
    """

    def __init__(self, k: int = 0, *, fraction: float = 0.0) -> None:
        if (k <= 0) == (fraction <= 0.0):
            raise ConfigurationError("specify exactly one of k or fraction")
        if fraction:
            check_in_range("fraction", fraction, 0.0, 1.0, inclusive="right")
        else:
            check_positive_int("k", k)
        self.k = int(k)
        self.fraction = float(fraction)

    def _effective_k(self, size: int) -> int:
        k = self.k if self.k > 0 else int(np.ceil(self.fraction * size))
        return max(1, min(k, size))

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        k = self._effective_k(update.size)
        if k == update.size:
            return CompressedUpdate(update.copy(), self.dense_bits(update.size))
        idx = np.argpartition(np.abs(update), -k)[-k:]
        dense = np.zeros_like(update)
        dense[idx] = update[idx]
        # 32-bit index + 64-bit value per kept coordinate
        return CompressedUpdate(dense=dense, bits=k * (32 + 64))


class UniformQuantizer(UpdateCompressor):
    """b-bit uniform quantization over the update's observed range."""

    def __init__(self, num_bits: int = 8) -> None:
        check_positive_int("num_bits", num_bits)
        if num_bits >= 64:
            raise ConfigurationError("use IdentityCompressor for >= 64 bits")
        self.num_bits = int(num_bits)

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        lo, hi = float(update.min(initial=0.0)), float(update.max(initial=0.0))
        levels = (1 << self.num_bits) - 1
        if hi == lo:
            dense = np.full_like(update, lo)
        else:
            scale = (hi - lo) / levels
            codes = np.round((update - lo) / scale)
            dense = lo + codes * scale
        # payload: codes + the (lo, hi) range as two float64
        return CompressedUpdate(
            dense=dense, bits=self.num_bits * update.size + 128
        )


class SignCompressor(UpdateCompressor):
    """1-bit sign compression scaled by the mean magnitude."""

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        scale = float(np.mean(np.abs(update))) if update.size else 0.0
        dense = np.sign(update) * scale
        return CompressedUpdate(dense=dense, bits=update.size + 64)


def compress_round(
    local_models: Sequence[np.ndarray],
    w_global: np.ndarray,
    compressor: UpdateCompressor,
) -> Tuple[List[np.ndarray], float]:
    """Compress every device's update against the broadcast model.

    Returns the reconstructed local models and the achieved compression
    ratio (dense bits / compressed bits, >= 1 for real compressors).
    """
    w_global = np.asarray(w_global, dtype=np.float64)
    reconstructed: List[np.ndarray] = []
    dense_total = 0
    compressed_total = 0
    for w_local in local_models:
        update = np.asarray(w_local, dtype=np.float64) - w_global
        result = compressor.compress(update)
        reconstructed.append(w_global + result.dense)
        dense_total += UpdateCompressor.dense_bits(update.size)
        compressed_total += result.bits
    ratio = dense_total / compressed_total if compressed_total else float("inf")
    return reconstructed, ratio


def make_compressing_aggregator(compressor: UpdateCompressor, w_ref):
    """Adapt a compressor into a server aggregation callable.

    ``w_ref`` is a single-element list holding the current global model;
    the aggregator compresses each round's updates against it and writes
    the new global model back (see the ablation bench for the wiring).
    """
    from repro.fl.aggregation import weighted_average

    def aggregate(vectors, weights=None):
        reconstructed, _ = compress_round(vectors, w_ref[0], compressor)
        out = weighted_average(reconstructed, weights)
        w_ref[0] = out
        return out

    return aggregate
