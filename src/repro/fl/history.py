"""Training histories: per-round records plus export helpers."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Optional, Sequence


@dataclass
class RoundRecord:
    """Metrics captured after one global iteration."""

    round_index: int
    train_loss: float
    grad_norm: float
    test_accuracy: float
    sim_time: float
    wall_time: float
    mean_local_steps: float = 0.0
    mean_gradient_evaluations: float = 0.0
    mean_achieved_theta: Optional[float] = None
    #: max − median per-client wall seconds for the round, measured by
    #: the executor's ``local_solve`` spans; ``None`` when telemetry was
    #: off (histories written before this field existed load as ``None``)
    straggler_gap: Optional[float] = None
    #: FedProx-style Γ̂ gradient-dissimilarity of the round's cohort
    #: (Σ p̃ₙ‖∇Jₙ(w)‖² over ‖·‖² of the weighted mean norm); ``None`` in
    #: histories written before repro.obs v2 added the estimate
    grad_dissimilarity: Optional[float] = None


#: the known RoundRecord field names; :meth:`TrainingHistory.from_dict`
#: drops anything else so histories written by *newer* code still load
_RECORD_FIELDS = frozenset(f.name for f in fields(RoundRecord))


@dataclass
class TrainingHistory:
    """Full record of a federated run."""

    algorithm: str
    dataset: str
    config: Dict[str, object] = field(default_factory=dict)
    records: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Add one round's record."""
        self.records.append(record)

    @property
    def num_rounds(self) -> int:
        """Number of completed global iterations."""
        return len(self.records)

    def series(self, name: str) -> List[float]:
        """Extract one metric as a list across rounds."""
        if not self.records:
            return []
        if not hasattr(self.records[0], name):
            raise KeyError(f"unknown metric {name!r}")
        return [getattr(r, name) for r in self.records]

    def final(self, name: str) -> float:
        """Last value of a metric (``nan`` for empty histories)."""
        values = self.series(name)
        return values[-1] if values else float("nan")

    def best(self, name: str, *, maximize: bool = True) -> float:
        """Best value of a metric over the run."""
        values = [v for v in self.series(name) if v == v]  # drop NaN
        if not values:
            return float("nan")
        return max(values) if maximize else min(values)

    def diverged(self, *, loss_ceiling: float = 1e6) -> bool:
        """Heuristic divergence check: non-finite or exploded loss."""
        losses = self.series("train_loss")
        return any(
            (v != v) or (v in (float("inf"), float("-inf"))) or v > loss_ceiling
            for v in losses
        )

    def rounds_to_loss(self, target: float) -> Optional[int]:
        """First round index whose train loss is <= ``target``."""
        for r in self.records:
            if r.train_loss <= target:
                return r.round_index
        return None

    def rounds_to_accuracy(self, target: float) -> Optional[int]:
        """First round index whose test accuracy is >= ``target``."""
        for r in self.records:
            if r.test_accuracy >= target:
                return r.round_index
        return None

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serializable)."""
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "config": self.config,
            "records": [asdict(r) for r in self.records],
        }

    def to_json(self, path: str) -> None:
        """Write the history as a JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, default=float)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TrainingHistory":
        """Inverse of :meth:`to_dict`."""
        history = cls(
            algorithm=str(payload["algorithm"]),
            dataset=str(payload["dataset"]),
            config=dict(payload.get("config", {})),
        )
        for rec in payload.get("records", []):
            # Forward tolerance, mirroring the old-file tolerance the
            # optional fields give us: unknown keys (written by a newer
            # version) are dropped instead of exploding the constructor.
            history.append(
                RoundRecord(
                    **{k: v for k, v in rec.items() if k in _RECORD_FIELDS}
                )
            )
        return history


def format_comparison(
    histories: Sequence[TrainingHistory], *, metric: str = "test_accuracy"
) -> str:
    """Tabular text comparison of several runs (used by benches)."""
    lines = [f"{'algorithm':>22s} {'final loss':>12s} {'best ' + metric:>16s} {'rounds':>7s}"]
    for h in histories:
        lines.append(
            f"{h.algorithm:>22s} {h.final('train_loss'):12.5f} "
            f"{h.best(metric):16.5f} {h.num_rounds:7d}"
        )
    return "\n".join(lines)
