"""Server-side aggregation rules.

The paper's rule is the data-weighted average (Alg. 1 line 12).  The
robust alternatives (coordinate median, trimmed mean) are included as
extensions: they plug into the same server and are exercised by the
failure-injection tests, demonstrating the aggregation seam.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.utils.validation import check_in_range


def _stack(vectors: Sequence[np.ndarray]) -> np.ndarray:
    if not vectors:
        raise ConfigurationError("cannot aggregate zero vectors")
    try:
        return np.stack([np.asarray(v, dtype=np.float64) for v in vectors])
    except ValueError as exc:
        raise DimensionMismatchError(f"ragged local models: {exc}") from exc


def weighted_average(
    vectors: Sequence[np.ndarray],
    weights: Optional[Sequence[float]] = None,
    *,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``w_bar = sum_n p_n w_n`` (eq. line 12 of Alg. 1).

    ``weights`` default to uniform and are renormalized to sum to one.
    ``out`` allows writing into a preallocated global-model buffer.
    """
    stacked = _stack(vectors)
    if weights is None:
        w = np.full(stacked.shape[0], 1.0 / stacked.shape[0])
    else:
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (stacked.shape[0],):
            raise DimensionMismatchError(
                f"{len(w)} weights for {stacked.shape[0]} vectors"
            )
        if np.any(w < 0):
            raise ConfigurationError("aggregation weights must be non-negative")
        total = w.sum()
        if total <= 0:
            raise ConfigurationError("aggregation weights sum to zero")
        w = w / total
    result = np.einsum("n,nd->d", w, stacked)
    if out is not None:
        out[...] = result
        return out
    return result


def coordinate_median(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Coordinate-wise median — robust to a minority of outlier devices."""
    return np.median(_stack(vectors), axis=0)


def trimmed_mean(vectors: Sequence[np.ndarray], trim_fraction: float = 0.1) -> np.ndarray:
    """Coordinate-wise mean after trimming the extremes on each side.

    ``trim_fraction`` in ``[0, 0.5)`` is the fraction of devices dropped
    at *each* end per coordinate.
    """
    check_in_range("trim_fraction", trim_fraction, 0.0, 0.5, inclusive="left")
    stacked = _stack(vectors)
    n = stacked.shape[0]
    k = int(np.floor(trim_fraction * n))
    if 2 * k >= n:
        raise ConfigurationError(
            f"trim_fraction {trim_fraction} removes all {n} devices"
        )
    if k == 0:
        return stacked.mean(axis=0)
    ordered = np.sort(stacked, axis=0)
    return ordered[k : n - k].mean(axis=0)
