"""Global convergence metrics over a federation.

All metrics weight devices by ``p_n = D_n / D`` so they evaluate the
paper's global objective (2) and its gradient — including the
stationarity gap ``||grad F_bar(w)||^2`` that Theorem 1 bounds.

Each weighted metric accepts an optional precomputed ``weights`` vector
(``p_n`` from :meth:`repro.fl.registry.ClientRegistry.weights`, or a
renormalized :meth:`~repro.fl.registry.ClientRegistry.subset_weights`
slice for sampled cohorts).  When ``weights`` is given, ``clients`` may
be any single-pass iterable — the massive-cohort evaluation path streams
lazily hydrated clients through without ever holding the population in
memory.  Without ``weights`` the functions recompute ``p_n`` from the
client objects exactly as before.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fl.client import Client
from repro.models.base import Model


def _weights(clients: Sequence[Client]) -> np.ndarray:
    if not clients:
        raise ConfigurationError("metrics need >= 1 client")
    sizes = np.array([c.num_train for c in clients], dtype=np.float64)
    return sizes / sizes.sum()


def _resolve(
    clients: Iterable[Client], weights: Optional[np.ndarray]
) -> Tuple[Iterable[Client], np.ndarray]:
    """Pair clients with their weights, materializing only if needed."""
    if weights is not None:
        return clients, np.asarray(weights, dtype=np.float64)
    clients = list(clients)
    return clients, _weights(clients)


def global_loss(
    model: Model,
    clients: Iterable[Client],
    w: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
) -> float:
    """``F_bar(w) = sum_n p_n F_n(w)`` on training shards (eq. (2))."""
    clients, p = _resolve(clients, weights)
    losses = [
        model.loss(w, c.data.X_train, c.data.y_train) for c in clients
    ]
    return float(np.dot(p, losses))


def global_loss_and_gradient_norm(
    model: Model,
    clients: Iterable[Client],
    w: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
) -> Tuple[float, float]:
    """Loss (2) and ``||grad F_bar(w)||`` in a single pass."""
    clients, p = _resolve(clients, weights)
    total_loss = 0.0
    total_grad = np.zeros(model.num_parameters, dtype=np.float64)
    for weight, c in zip(p, clients):
        loss, grad = model.loss_and_gradient(w, c.data.X_train, c.data.y_train)
        total_loss += weight * loss
        total_grad += weight * grad
    return float(total_loss), float(np.linalg.norm(total_grad))


def global_gradient_norm(
    model: Model,
    clients: Iterable[Client],
    w: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
) -> float:
    """``||grad F_bar(w)||`` — the Theorem-1 stationarity measure."""
    return global_loss_and_gradient_norm(model, clients, w, weights=weights)[1]


def global_accuracy(
    model: Model, clients: Iterable[Client], w: np.ndarray, *, split: str = "test"
) -> float:
    """Sample-weighted accuracy over all devices' chosen shards.

    Devices with empty shards are skipped; weighting is by shard size so
    the value equals pooled accuracy over the concatenated data.
    ``clients`` may be any single-pass iterable.
    """
    total_correct = 0.0
    total_samples = 0
    for c in clients:
        data = c.data
        X, y = (
            (data.X_train, data.y_train)
            if split == "train"
            else (data.X_test, data.y_test)
        )
        if X.shape[0] == 0:
            continue
        acc = model.accuracy(w, X, y)
        total_correct += acc * X.shape[0]
        total_samples += X.shape[0]
    if total_samples == 0:
        return float("nan")
    return total_correct / total_samples


def per_device_accuracy(
    model: Model, clients: Iterable[Client], w: np.ndarray, *, split: str = "test"
) -> "dict[int, float]":
    """Accuracy of the global model on each device's own shard.

    The per-device view is what personalization and fairness analyses
    need: a good *average* can hide devices the global model fails
    entirely (common under 2-labels-per-device partitions).  Devices
    with empty shards are omitted.
    """
    out: dict = {}
    for c in clients:
        acc = c.evaluate(w, split=split)
        if acc is not None:
            out[c.client_id] = acc
    return out


def heterogeneity_sigma_bar_sq(
    model: Model,
    clients: Iterable[Client],
    w: np.ndarray,
    *,
    weights: Optional[np.ndarray] = None,
    floor: float = 1e-12,
) -> float:
    """Empirical ``sigma_bar^2`` of Assumption 1 at the point ``w``.

    Estimates each device's divergence ratio
    ``sigma_n = ||grad F_n(w) - grad F_bar(w)|| / ||grad F_bar(w)||``
    and returns the ``p_n``-weighted mean of ``sigma_n^2``.  ``floor``
    guards the denominator near stationary points.

    Under partial participation pass the sampled cohort together with
    ``registry.subset_weights(selected)`` — the renormalized exact
    ``p_n`` keep the estimator consistent with the full-population
    value.
    """
    clients, p = _resolve(clients, weights)
    grads = [
        model.gradient(w, c.data.X_train, c.data.y_train) for c in clients
    ]
    global_grad = np.einsum("n,nd->d", p, np.stack(grads))
    denom = max(float(np.linalg.norm(global_grad)), floor)
    sigma_sq = [
        (float(np.linalg.norm(g - global_grad)) / denom) ** 2 for g in grads
    ]
    return float(np.dot(p, sigma_sq))
