"""Client execution strategies.

Alg. 1's inner loops run "in parallel" across devices; in simulation the
semantics are identical whether clients run sequentially or
concurrently, because each (client, round) pair derives its own RNG
stream.  The thread-pool executor gives real speedups on models whose
gradient work releases the GIL inside BLAS (dense/conv GEMMs); it
requires per-client model instances (see :class:`repro.fl.client.Client`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import List, Sequence

import numpy as np

from repro.core.local.base import LocalSolveResult
from repro.fl.client import Client
from repro.utils.validation import check_positive_int


class ClientExecutor(ABC):
    """Runs one round of local updates over a set of clients."""

    @abstractmethod
    def run_round(
        self,
        clients: Sequence[Client],
        w_global: np.ndarray,
        round_index: int,
    ) -> List[LocalSolveResult]:
        """Return local results ordered like ``clients``."""

    def close(self) -> None:
        """Release any pooled resources (default: nothing to do)."""


class SequentialExecutor(ClientExecutor):
    """Run clients one after another in the calling thread (default)."""

    def run_round(self, clients, w_global, round_index):
        return [c.local_update(w_global, round_index) for c in clients]


class ThreadPoolClientExecutor(ClientExecutor):
    """Run clients concurrently on a persistent thread pool.

    The pool is reused across rounds; call :meth:`close` (or use the
    instance as a context manager) when training finishes.
    """

    def __init__(self, max_workers: int = 4) -> None:
        check_positive_int("max_workers", max_workers)
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._closed = False

    def run_round(self, clients, w_global, round_index):
        if self._closed:
            raise RuntimeError("executor already closed")
        models = [c.model for c in clients]
        if len(set(map(id, models))) != len(models):
            raise RuntimeError(
                "parallel execution requires one model instance per client "
                "(shared models carry per-call forward/backward caches)"
            )
        futures = [
            self._pool.submit(c.local_update, w_global, round_index)
            for c in clients
        ]
        return [f.result() for f in futures]

    def close(self) -> None:
        if not self._closed:
            self._pool.shutdown(wait=True)
            self._closed = True

    def __enter__(self) -> "ThreadPoolClientExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
