"""Client execution strategies.

Alg. 1's inner loops run "in parallel" across devices; in simulation the
semantics are identical whether clients run sequentially or
concurrently, because each (client, round) pair derives its own RNG
stream.  The thread-pool executor gives real speedups on models whose
gradient work releases the GIL inside BLAS (dense/conv GEMMs); it
requires per-client model instances (see :class:`repro.fl.client.Client`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from repro.core.local.base import LocalSolveResult
from repro.fl.client import Client
from repro.obs import telemetry
from repro.utils.validation import check_positive_int


class ClientExecutor(ABC):
    """Runs one round of local updates over a set of clients.

    When telemetry is enabled each client's solve runs inside a
    ``local_solve`` span (nested under the server's ``round`` span) and
    the per-client wall durations of the last round are exposed as
    :attr:`last_client_seconds`, ordered like the ``clients`` argument —
    the raw material for straggler-gap diagnostics that the simulated
    clock only ever sees as a max.  While disabled the attribute stays
    ``None`` and the hot path is untouched.
    """

    #: wall seconds per client for the most recent round (telemetry only)
    last_client_seconds: Optional[List[float]] = None

    @abstractmethod
    def run_round(
        self,
        clients: Sequence[Client],
        w_global: np.ndarray,
        round_index: int,
    ) -> List[LocalSolveResult]:
        """Return local results ordered like ``clients``."""

    def close(self) -> None:
        """Release any pooled resources (default: nothing to do)."""


def _traced_update(client, w_global, round_index, parent):
    """One client's local solve inside a ``local_solve`` span.

    ``parent`` pins the span under the caller's round span even when
    this runs on a pool thread whose own context stack is empty.
    """
    with telemetry.span(
        "local_solve",
        parent=parent,
        client=client.client_id,
        round=round_index,
    ) as span:
        result = client.local_update(w_global, round_index)
    return result, span.duration


class SequentialExecutor(ClientExecutor):
    """Run clients one after another in the calling thread (default)."""

    def run_round(self, clients, w_global, round_index):
        if not telemetry.enabled:
            self.last_client_seconds = None
            return [c.local_update(w_global, round_index) for c in clients]
        parent = telemetry.current_span()
        results: List[LocalSolveResult] = []
        seconds: List[float] = []
        for c in clients:
            result, dur = _traced_update(c, w_global, round_index, parent)
            results.append(result)
            seconds.append(dur)
        self.last_client_seconds = seconds
        return results


class ThreadPoolClientExecutor(ClientExecutor):
    """Run clients concurrently on a persistent thread pool.

    The pool is reused across rounds; call :meth:`close` (or use the
    instance as a context manager) when training finishes.
    """

    def __init__(self, max_workers: int = 4) -> None:
        check_positive_int("max_workers", max_workers)
        self._pool = ThreadPoolExecutor(max_workers=max_workers)
        self._closed = False

    def run_round(self, clients, w_global, round_index):
        if self._closed:
            raise RuntimeError("executor already closed")
        models = [c.model for c in clients]
        if len(set(map(id, models))) != len(models):
            raise RuntimeError(
                "parallel execution requires one model instance per client "
                "(shared models carry per-call forward/backward caches)"
            )
        if not telemetry.enabled:
            self.last_client_seconds = None
            futures = [
                self._pool.submit(c.local_update, w_global, round_index)
                for c in clients
            ]
            return [f.result() for f in futures]
        # Capture the round span *here* (submitting thread); the pool
        # threads have empty context stacks of their own.
        parent = telemetry.current_span()
        futures = [
            self._pool.submit(_traced_update, c, w_global, round_index, parent)
            for c in clients
        ]
        pairs = [f.result() for f in futures]
        self.last_client_seconds = [dur for _, dur in pairs]
        return [result for result, _ in pairs]

    def close(self) -> None:
        if not self._closed:
            self._pool.shutdown(wait=True)
            self._closed = True

    def __enter__(self) -> "ThreadPoolClientExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
