"""Client execution strategies.

Alg. 1's inner loops run "in parallel" across devices; in simulation the
semantics are identical whether clients run sequentially or
concurrently, because each (client, round) pair derives its own RNG
stream.  The thread-pool executor gives real speedups on models whose
gradient work releases the GIL inside BLAS (dense/conv GEMMs); it
requires per-client model instances (see :class:`repro.fl.client.Client`).
The batched executor goes further for homogeneous convex cohorts: it
stacks same-architecture clients into ``(K, D)`` parameter blocks and
runs their inner loops as single vectorized solves
(:meth:`repro.core.local.base.LocalSolver.solve_cohort`), falling back
to per-client solves wherever no bit-identical kernel exists.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.local.base import LocalSolveResult
from repro.fl.client import Client
from repro.models.batched import cohort_signature, make_batch_kernel
from repro.obs import telemetry
from repro.utils.validation import check_positive_int


class ClientExecutor(ABC):
    """Runs one round of local updates over a set of clients.

    When telemetry is enabled each client's solve runs inside a
    ``local_solve`` span (nested under the server's ``round`` span) and
    the per-client wall durations of the last round are exposed as
    :attr:`last_client_seconds`, ordered like the ``clients`` argument —
    the raw material for straggler-gap diagnostics that the simulated
    clock only ever sees as a max.  While disabled the attribute stays
    ``None`` and the hot path is untouched.
    """

    #: wall seconds per client for the most recent round (telemetry only)
    last_client_seconds: Optional[List[float]] = None

    @abstractmethod
    def run_round(
        self,
        clients: Sequence[Client],
        w_global: np.ndarray,
        round_index: int,
    ) -> List[LocalSolveResult]:
        """Return local results ordered like ``clients``.

        ``clients`` may be any subset of the registered population
        (partial participation selects per round).
        """

    def register_clients(self, clients: Sequence[Client]) -> None:
        """Announce the full client population before training starts.

        The server calls this once with *all* clients; each
        ``run_round`` then receives the round's (possibly partial)
        selection.  Executors that pre-place per-client state — the
        process pool maps data shards into shared memory at start-up —
        need the full population here.  Default: nothing to do.

        Under the virtual-client path (``repro.fl.registry``) there is
        no materialized population and this hook is never called: each
        ``run_round`` simply receives that round's lazily hydrated
        cohort.  All executors accept hydrated cohorts unchanged; the
        per-round validation/plan caches below re-key automatically when
        LRU eviction rebuilds a client object.
        """

    def close(self) -> None:
        """Release any pooled resources (default: nothing to do)."""


def _traced_update(client, w_global, round_index, parent):
    """One client's local solve inside a ``local_solve`` span.

    ``parent`` pins the span under the caller's round span even when
    this runs on a pool thread whose own context stack is empty.
    """
    with telemetry.span(
        "local_solve",
        parent=parent,
        client=client.client_id,
        round=round_index,
    ) as span:
        result = client.local_update(w_global, round_index)
    return result, span.duration


class SequentialExecutor(ClientExecutor):
    """Run clients one after another in the calling thread (default)."""

    def run_round(self, clients, w_global, round_index):
        if not telemetry.enabled:
            self.last_client_seconds = None
            return [c.local_update(w_global, round_index) for c in clients]
        parent = telemetry.current_span()
        results: List[LocalSolveResult] = []
        seconds: List[float] = []
        for c in clients:
            result, dur = _traced_update(c, w_global, round_index, parent)
            results.append(result)
            seconds.append(dur)
        self.last_client_seconds = seconds
        return results


class ThreadPoolClientExecutor(ClientExecutor):
    """Run clients concurrently on a persistent thread pool.

    The pool is reused across rounds; call :meth:`close` (or use the
    instance as a context manager) when training finishes.  When
    ``max_workers`` is not given the pool is sized on first use to
    ``min(len(clients), os.cpu_count())`` — one thread per client up to
    the machine's cores, the widest useful fan-out for BLAS-bound
    solves.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None:
            check_positive_int("max_workers", max_workers)
        self._max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # Client sets are stable across rounds, so the distinct-model
        # invariant is checked once per set, not once per round.
        self._validated_clients: Optional[Tuple[int, ...]] = None

    def _ensure_pool(self, num_clients: int) -> ThreadPoolExecutor:
        if self._pool is None:
            workers = self._max_workers
            if workers is None:
                workers = max(1, min(num_clients, os.cpu_count() or 1))
            self._pool = ThreadPoolExecutor(max_workers=workers)
        return self._pool

    def _validate_clients(self, clients: Sequence[Client]) -> None:
        key = tuple(id(c) for c in clients)
        if key == self._validated_clients:
            return
        if len(set(id(c.model) for c in clients)) != len(clients):
            raise RuntimeError(
                "parallel execution requires one model instance per client "
                "(shared models carry per-call forward/backward caches)"
            )
        self._validated_clients = key

    def run_round(self, clients, w_global, round_index):
        if self._closed:
            raise RuntimeError("executor already closed")
        self._validate_clients(clients)
        self._ensure_pool(len(clients))
        if not telemetry.enabled:
            self.last_client_seconds = None
            futures = [
                self._pool.submit(c.local_update, w_global, round_index)
                for c in clients
            ]
            return [f.result() for f in futures]
        # Capture the round span *here* (submitting thread); the pool
        # threads have empty context stacks of their own.
        parent = telemetry.current_span()
        futures = [
            self._pool.submit(_traced_update, c, w_global, round_index, parent)
            for c in clients
        ]
        pairs = [f.result() for f in futures]
        self.last_client_seconds = [dur for _, dur in pairs]
        return [result for result, _ in pairs]

    def close(self) -> None:
        if not self._closed:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
            self._closed = True

    def __enter__(self) -> "ThreadPoolClientExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class BatchedCohortExecutor(ClientExecutor):
    """Run homogeneous cohorts as single stacked ``(K, D)`` solves.

    Clients are grouped by ``(solver instance, model architecture
    signature, effective minibatch size)``; each group with a vectorized
    kernel (:func:`repro.models.batched.make_batch_kernel`) — including
    singletons, which run the same stacked ops at ``K = 1`` — goes
    through :meth:`~repro.core.local.base.LocalSolver.solve_cohort` in
    one call.  Everything else — models without a kernel, solver
    configurations with data-dependent control flow — falls back to the
    sequential per-client path.  Either way the results are
    bit-identical to :class:`SequentialExecutor` on the same seeds; the
    grouping only changes how the arithmetic is scheduled.

    The grouping plan is computed once per distinct client set and
    reused across rounds.  Models may be shared across clients (like the
    sequential executor): the batched path touches per-client models
    only in serial anchor/final-gradient loops.
    """

    def __init__(self) -> None:
        self._plan_clients: Optional[Tuple[int, ...]] = None
        self._plan: List[Tuple[List[int], Optional[object], str]] = []

    def _build_plan(
        self, clients: Sequence[Client]
    ) -> List[Tuple[List[int], Optional[object], str]]:
        groups: Dict[Hashable, List[int]] = {}
        signatures: Dict[Hashable, str] = {}
        for i, c in enumerate(clients):
            sig = cohort_signature(c.model)
            if sig is None:
                # No kernel for this architecture -> unconditional singleton.
                groups.setdefault(("solo", i), []).append(i)
                signatures[("solo", i)] = "solo"
                continue
            # A cohort stacks minibatches into one (K, B, features)
            # block, so clients whose shards clamp the minibatch
            # (n_train < batch_size) form size-specific sub-cohorts.
            batch = getattr(c.solver, "batch_size", None)
            effective = (
                min(int(batch), c.data.X_train.shape[0])
                if batch is not None
                else None
            )
            key = (id(c.solver), sig, effective)
            groups.setdefault(key, []).append(i)
            signatures[key] = f"{sig}/B={effective}"
        plan: List[Tuple[List[int], Optional[object], str]] = []
        for key, indices in groups.items():
            # Singleton groups get a K=1 kernel too: the stacked ops run
            # the same elementary sequence at K=1, and a kernel solve is
            # cheaper than the allocating per-client path it replaces.
            kernel = make_batch_kernel([clients[i].model for i in indices])
            plan.append((indices, kernel, signatures[key]))
        return plan

    def run_round(self, clients, w_global, round_index):
        key = tuple(id(c) for c in clients)
        if key != self._plan_clients:
            self._plan = self._build_plan(clients)
            self._plan_clients = key

        traced = telemetry.enabled
        parent = telemetry.current_span() if traced else None
        results: List[Optional[LocalSolveResult]] = [None] * len(clients)
        batched_count = 0
        for indices, kernel, signature in self._plan:
            cohort_results = None
            if kernel is not None:
                cohort = [clients[i] for i in indices]
                solver = cohort[0].solver
                models = [c.model for c in cohort]
                shards = [(c.data.X_train, c.data.y_train) for c in cohort]
                rngs = [c.round_rng(round_index) for c in cohort]
                if traced:
                    with telemetry.span(
                        "cohort_solve",
                        parent=parent,
                        cohort_size=len(cohort),
                        signature=signature,
                        round=round_index,
                    ):
                        cohort_results = solver.solve_cohort(
                            models, shards, w_global, rngs, kernel
                        )
                else:
                    cohort_results = solver.solve_cohort(
                        models, shards, w_global, rngs, kernel
                    )
            if cohort_results is not None:
                batched_count += len(indices)
                for i, result in zip(indices, cohort_results):
                    results[i] = result
            else:
                for i in indices:
                    if traced:
                        results[i], _ = _traced_update(
                            clients[i], w_global, round_index, parent
                        )
                    else:
                        results[i] = clients[i].local_update(
                            w_global, round_index
                        )
        if traced:
            telemetry.counter_add("fl.executor.batched_clients", batched_count)
            telemetry.counter_add(
                "fl.executor.fallback_clients", len(clients) - batched_count
            )
        # Stacked solves have no meaningful per-client wall time.
        self.last_client_seconds = None
        return results
