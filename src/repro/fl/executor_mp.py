"""Process-pool client executor backed by shared-memory shards.

Multi-process execution sidesteps the GIL for solver code that is
Python-bound rather than BLAS-bound, but naive ``ProcessPoolExecutor``
usage pickles every task's inputs — for federated simulation that means
re-serializing each client's full data shard every round.  This
executor instead follows the :class:`repro.backend.ShmArena` protocol:

* at pool start-up the parent copies every client's ``(X, y)`` training
  shard into named ``multiprocessing.shared_memory`` segments and
  allocates one writable broadcast block for the global model;
* workers attach the segments once, in their initializer, and keep the
  mappings for the life of the pool;
* a round's task payload is just ``(slot, round_index)`` — the worker
  reads the broadcast block, derives the client's per-round RNG stream
  (:func:`repro.utils.rng.derive_generator`, order-independent), runs
  the local solve, and pickles back only the
  :class:`~repro.core.local.base.LocalSolveResult`.

Results are bit-identical to :class:`~repro.fl.executor.SequentialExecutor`
because the per-(client, round) streams do not depend on which process
runs them.  Telemetry: workers cannot emit spans themselves — a forked
worker inherits a copy of the parent's span-id counter, so worker-side
ids would collide — instead each task measures its own wall time and
ships ``(result, timing)`` home, where the parent emits a
``local_solve`` span via :meth:`~repro.obs.Telemetry.external_span`,
parented on the serialized round-span context and tagged with the
worker's process name.  :attr:`last_client_seconds` is therefore
populated on traced mp runs, lighting up the straggler-gap diagnostic.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.backend.shm import ArraySpec, ShmArena, attach_array
from repro.core.local.base import LocalSolveResult
from repro.fl.client import Client
from repro.fl.executor import ClientExecutor
from repro.obs import telemetry
from repro.utils.rng import derive_generator
from repro.utils.validation import check_positive_int

__all__ = ["ProcessPoolClientExecutor"]

#: per-worker state installed by :func:`_init_worker` (slot -> mappings)
_WORKER: Optional[Dict[str, Any]] = None


def _init_worker(entries: List[Dict[str, Any]], w_spec: ArraySpec) -> None:
    """Attach every shared segment once; runs in each worker at start."""
    global _WORKER
    attached = []
    handles = []
    for entry in entries:
        X, hX = attach_array(entry["X_spec"])
        y, hy = attach_array(entry["y_spec"])
        handles.extend((hX, hy))
        attached.append(
            {
                "client_id": entry["client_id"],
                "base_seed": entry["base_seed"],
                "model": entry["model"],
                "solver": entry["solver"],
                "X": X,
                "y": y,
            }
        )
    w_view, hw = attach_array(w_spec)
    handles.append(hw)
    _WORKER = {"entries": attached, "w": w_view, "handles": handles}


def _run_task(
    slot: int, round_index: int, timed: bool = False
) -> "LocalSolveResult | Tuple[LocalSolveResult, Dict[str, Any]]":
    """One client's local solve inside a worker process.

    With ``timed`` (traced runs) the worker measures its own wall time
    and returns ``(result, timing)``; the parent turns the timing into
    an external ``local_solve`` span.  No span ids are allocated here —
    see the module docstring.
    """
    assert _WORKER is not None, "worker initializer did not run"
    entry = _WORKER["entries"][slot]
    # Private copy of the broadcast block: solvers anchor proximal terms
    # on the passed array, and the parent rewrites the block next round.
    w_global = np.array(_WORKER["w"], dtype=np.float64, copy=True)
    rng = derive_generator(entry["base_seed"], entry["client_id"], round_index)
    if not timed:
        return entry["solver"].solve(
            entry["model"], entry["X"], entry["y"], w_global, rng
        )
    t_wall = time.time()
    t0 = time.perf_counter()
    result = entry["solver"].solve(
        entry["model"], entry["X"], entry["y"], w_global, rng
    )
    timing = {
        "duration": time.perf_counter() - t0,
        "t_wall": t_wall,
        "process": multiprocessing.current_process().name,
        "client_id": entry["client_id"],
    }
    return result, timing


class ProcessPoolClientExecutor(ClientExecutor):
    """Run clients on a persistent process pool with shared-memory shards.

    The pool binds to the first client set it sees: shards are placed in
    shared memory and workers attach them in their initializer, so later
    rounds must present the same clients (federated runs do).  Call
    :meth:`close` (or use as a context manager) to shut the pool down
    and unlink the segments.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        if max_workers is not None:
            check_positive_int("max_workers", max_workers)
        self._max_workers = max_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self._arena: Optional[ShmArena] = None
        self._w_view: Optional[np.ndarray] = None
        self._registered: Optional[List[Client]] = None
        self._slots: Optional[Dict[int, int]] = None
        self._closed = False

    def register_clients(self, clients) -> None:
        if self._pool is not None:
            if any(id(c) not in self._slots for c in clients):
                raise RuntimeError(
                    "cannot register new clients after the pool started; "
                    "shards live in shared memory mapped at start-up"
                )
            return
        self._registered = list(clients)

    def _start_pool(self, clients: Sequence[Client], w_global: np.ndarray) -> None:
        arena = ShmArena()
        try:
            entries = [
                {
                    "client_id": c.client_id,
                    "base_seed": c.base_seed,
                    "model": c.model,
                    "solver": c.solver,
                    "X_spec": arena.put(
                        np.asarray(c.data.X_train, dtype=np.float64)
                    ),
                    "y_spec": arena.put(
                        np.asarray(c.data.y_train, dtype=np.float64)
                    ),
                }
                for c in clients
            ]
            w_spec, w_view = arena.create(np.asarray(w_global).shape)
            workers = self._max_workers
            if workers is None:
                workers = max(
                    1, min(len(clients), multiprocessing.cpu_count())
                )
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(entries, w_spec),
            )
        except Exception:
            arena.close()
            raise
        self._arena = arena
        self._w_view = w_view
        self._pool = pool
        self._slots = {id(c): slot for slot, c in enumerate(clients)}

    def run_round(self, clients, w_global, round_index):
        if self._closed:
            raise RuntimeError("executor already closed")
        if self._pool is None:
            # Bind to the registered population (falling back to this
            # round's selection when the server never registered one).
            population = self._registered if self._registered else list(clients)
            self._start_pool(population, w_global)
        assert self._w_view is not None and self._pool is not None
        try:
            slots = [self._slots[id(c)] for c in clients]
        except KeyError:
            raise RuntimeError(
                "process executor got a client outside the registered "
                "population; shards live in shared memory mapped at "
                "pool start-up.  Virtual-client runs must keep the cohort "
                "stable: full participation with an LRU pool holding the "
                "whole federation (the runner's default at "
                "client_fraction=1.0)"
            ) from None
        w_global = np.asarray(w_global, dtype=np.float64)
        if w_global.shape != self._w_view.shape:
            raise RuntimeError(
                f"global model shape changed: {w_global.shape} != "
                f"{self._w_view.shape}"
            )
        # Single-writer broadcast: all of last round's tasks finished
        # (their futures were awaited), so no worker is reading.
        self._w_view[...] = w_global
        traced = telemetry.enabled
        futures = [
            self._pool.submit(_run_task, slot, round_index, traced)
            for slot in slots
        ]
        if not traced:
            self.last_client_seconds = None
            return [f.result() for f in futures]
        # Serialized-context parenting: the round span lives in this
        # (coordinating) process; workers only report timings, and the
        # external spans carry their process names for report keying.
        parent = telemetry.current_span()
        parent_id = parent.context()["span_id"] if parent is not None else None
        results: List[LocalSolveResult] = []
        seconds: List[float] = []
        for future in futures:
            result, timing = future.result()
            telemetry.external_span(
                "local_solve",
                timing["duration"],
                t_wall=timing["t_wall"],
                parent_id=parent_id,
                process=timing["process"],
                client=timing["client_id"],
                round=round_index,
            )
            results.append(result)
            seconds.append(timing["duration"])
        self.last_client_seconds = seconds
        return results

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        self._w_view = None

    def __enter__(self) -> "ProcessPoolClientExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
