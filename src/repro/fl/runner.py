"""High-level entry point: configure and run one federated experiment.

``run_federated`` is the function the examples and benchmarks call: it
estimates the smoothness constant, derives the paper's step size
``eta = 1/(beta L)``, builds clients/solver/server, trains for ``T``
rounds, and returns the :class:`TrainingHistory` plus the final model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.algorithms import make_local_solver
from repro.datasets.base import FederatedDataset, LazyFederatedDataset
from repro.exceptions import ConfigurationError
from repro.fl.client import Client
from repro.fl.delays import DelayModel, make_uniform_delays
from repro.fl.executor import (
    BatchedCohortExecutor,
    ClientExecutor,
    SequentialExecutor,
    ThreadPoolClientExecutor,
)
from repro.fl.registry import EagerClientPool, LazyClientPool
from repro.fl.server import FederatedServer
from repro.fl.history import TrainingHistory
from repro.models.base import Model
from repro.obs import telemetry
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.smoothness import estimate_smoothness_power_iteration
from repro.utils.validation import check_positive, check_positive_int

#: valid ``FederatedRunConfig.executor`` values.  ``sequential`` and
#: ``batched`` share model instances across clients; ``thread`` and
#: ``process`` need one instance per client (see docs/PERFORMANCE.md).
EXECUTOR_CHOICES = ("sequential", "thread", "batched", "process")


def make_executor(name: str, max_workers: Optional[int] = None) -> ClientExecutor:
    """Build a :class:`ClientExecutor` from its config name."""
    if name == "sequential":
        return SequentialExecutor()
    if name == "batched":
        return BatchedCohortExecutor()
    if name == "thread":
        return ThreadPoolClientExecutor(max_workers=max_workers)
    if name == "process":
        # Imported lazily: the module pulls in multiprocessing machinery
        # that sequential runs never need.
        from repro.fl.executor_mp import ProcessPoolClientExecutor

        return ProcessPoolClientExecutor(max_workers=max_workers)
    raise ConfigurationError(
        f"executor must be one of {EXECUTOR_CHOICES}, got {name!r}"
    )


@dataclass
class FederatedRunConfig:
    """Everything needed to run one experiment.

    Attributes mirror the paper's notation: ``num_rounds`` is ``T``,
    ``num_local_steps`` is ``tau``, ``beta`` parametrizes the step size,
    ``mu`` is the proximal penalty, ``batch_size`` is ``B``.

    ``smoothness`` overrides the automatic ``L`` estimate; leave as
    ``None`` to use the model's analytic value (convex models) or a
    Hessian power-iteration probe (neural models).

    Massive-cohort knobs (ROADMAP item 1): ``virtual_clients`` turns on
    the lazy O(K)-per-round path (``None`` auto-enables it for
    :class:`~repro.datasets.base.LazyFederatedDataset` inputs);
    ``lru_capacity`` bounds the hydrated-client pool (``None`` sizes it
    automatically); ``max_eval_clients`` caps the metrics pass at a
    weighted client sample; ``smoothness_probe_devices`` bounds how many
    shards the lazy path concatenates to estimate ``L`` (federations at
    or below the bound reproduce the eager estimate exactly).
    """

    algorithm: str = "fedproxvr-sarah"
    num_rounds: int = 50
    num_local_steps: int = 10
    beta: float = 5.0
    mu: float = 0.1
    batch_size: int = 32
    smoothness: Optional[float] = None
    client_fraction: float = 1.0
    eval_every: int = 1
    executor: str = "sequential"
    max_workers: Optional[int] = None
    seed: int = 0
    solver_kwargs: Dict[str, object] = field(default_factory=dict)
    delay_model: Optional[DelayModel] = None
    virtual_clients: Optional[bool] = None
    lru_capacity: Optional[int] = None
    max_eval_clients: Optional[int] = None
    smoothness_probe_devices: int = 32

    def __post_init__(self) -> None:
        check_positive_int("num_rounds", self.num_rounds)
        check_positive_int("num_local_steps", self.num_local_steps, minimum=0)
        check_positive("beta", self.beta)
        check_positive("mu", self.mu, strict=False)
        check_positive_int("batch_size", self.batch_size)
        if self.lru_capacity is not None:
            check_positive_int("lru_capacity", self.lru_capacity)
        if self.max_eval_clients is not None:
            check_positive_int("max_eval_clients", self.max_eval_clients)
        check_positive_int(
            "smoothness_probe_devices", self.smoothness_probe_devices
        )
        if self.executor not in EXECUTOR_CHOICES:
            raise ConfigurationError(
                f"executor must be one of {EXECUTOR_CHOICES}, "
                f"got {self.executor!r}"
            )


def resolve_smoothness(
    model: Model,
    dataset: FederatedDataset,
    *,
    override: Optional[float] = None,
    seed: SeedLike = 0,
    probe_devices: Optional[int] = None,
) -> float:
    """Pick ``L``: explicit override > analytic formula > power iteration.

    ``probe_devices`` bounds the estimate to the first that-many shards
    — the lazy massive-cohort path's way of keeping setup sublinear in
    ``N``.  When the bound covers the whole federation (always true for
    eager callers that leave it ``None``) the estimate equals the
    historical full-corpus value bit-for-bit.
    """
    if override is not None:
        return check_positive("smoothness", override)
    if probe_devices is not None and hasattr(dataset, "probe_train"):
        X, y = dataset.probe_train(probe_devices)
    else:
        X, y = dataset.global_train()
    analytic = model.smoothness(X)
    if analytic is not None and analytic > 0:
        return float(analytic)
    w0 = model.init_parameters(seed)
    probe = estimate_smoothness_power_iteration(
        lambda w: model.gradient(w, X, y), w0, seed=seed
    )
    if probe <= 0:
        raise ConfigurationError("could not estimate a positive smoothness L")
    return float(probe)


def build_clients(
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    solver,
    *,
    share_model: bool,
    seed: int,
) -> list:
    """Instantiate one client per device shard (the eager O(N) path)."""
    shared = model_factory() if share_model else None
    clients = []
    for dev in dataset.devices:
        model = shared if share_model else model_factory()
        clients.append(
            Client(
                client_id=dev.device_id,
                data=dev,
                model=model,
                solver=solver,
                base_seed=seed,
            )
        )
    return clients


def default_lru_capacity(
    num_devices: int, client_fraction: float, override: Optional[int] = None
) -> int:
    """Hydrated-client pool size: the override, else an automatic choice.

    Full participation needs the whole population resident anyway; under
    sampling the pool holds a few rounds' worth of cohorts (hot clients
    re-selected soon stay hydrated) with a floor of 64.
    """
    if override is not None:
        return min(int(override), num_devices)
    if client_fraction >= 1.0:
        return num_devices
    k = max(1, int(round(client_fraction * num_devices)))
    return min(num_devices, max(64, 4 * k))


def build_client_pool(
    dataset,
    model_factory: Callable[[], Model],
    solver,
    *,
    share_model: bool,
    seed: int,
    virtual: bool,
    client_fraction: float = 1.0,
    lru_capacity: Optional[int] = None,
):
    """Build the server's client source.

    ``virtual=False``: the classic eager path — ``N`` clients up front,
    wrapped in an :class:`~repro.fl.registry.EagerClientPool`.
    ``virtual=True``: an :class:`~repro.fl.registry.LazyClientPool` that
    registers only packed metadata and hydrates per-round cohorts on
    demand; works with lazy *and* eager datasets (for the latter the
    shards are already resident but the O(N) client/model objects are
    still avoided).
    """
    if not virtual:
        return EagerClientPool(
            build_clients(
                dataset,
                model_factory,
                solver,
                share_model=share_model,
                seed=seed,
            )
        )
    return LazyClientPool(
        dataset,
        model_factory,
        solver,
        share_model=share_model,
        base_seed=seed,
        capacity=default_lru_capacity(
            dataset.num_devices, client_fraction, lru_capacity
        ),
    )


def bind_monitor_theory(
    monitors, *, beta: float, mu: float, L: float
) -> None:
    """Pin a monitor suite to the run's Theorem-1 constants.

    θ comes from eq. (22) — the Lemma-1 equality point the §4.3
    optimizer targets — via the authoritative ``core.theory`` form
    (this module sits above ``core`` in the layering DAG, unlike the
    monitors themselves).  Configurations outside Lemma 1's domain
    (β ≤ 3, the injected-divergence CI demo being the canonical case)
    leave the suite unbound, which degrades the Theorem-1 monitor to
    its monotone-descent fallback.
    """
    from repro.core.theory import ProblemConstants, theta_from_beta
    from repro.exceptions import InfeasibleParametersError

    try:
        theta = theta_from_beta(mu, beta, ProblemConstants(L=L, lam=0.0))
    except InfeasibleParametersError:
        return
    if not 0.0 < theta < 1.0:
        return
    monitors.bind_theory(beta=beta, mu=mu, L=L, theta=theta)


def run_federated(
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    config: FederatedRunConfig,
    *,
    w0: Optional[np.ndarray] = None,
    verbose: bool = False,
    ledger=None,
    monitors=None,
) -> Tuple[TrainingHistory, np.ndarray]:
    """Run one federated experiment end to end.

    Parameters
    ----------
    dataset:
        The federated data (one shard per device).
    model_factory:
        Zero-argument callable building a fresh ``Model``; called once
        under the sequential/batched executors and once per client when
        running on the thread or process pool.
    config:
        See :class:`FederatedRunConfig`.
    w0:
        Optional starting global model (defaults to the model's own
        initialization with ``config.seed``).
    ledger:
        Optional :class:`repro.obs.RunLedger`; receives the run
        manifest up front, one committed record per round, and is
        closed (with a ``completed`` / ``diverged`` / ``failed``
        status) before this function returns.
    monitors:
        Optional :class:`repro.obs.MonitorSuite`; bound to the run's
        (β, μ, L, θ) constants and attached to ``ledger`` so alerts
        land there.  Pure observers — results are bit-identical with
        or without them.

    Returns
    -------
    ``(history, w_final)``.
    """
    init_seed, server_seed = (s.entropy for s in spawn_seeds(config.seed, 2))

    virtual = config.virtual_clients
    if virtual is None:
        virtual = isinstance(dataset, LazyFederatedDataset)
    if (
        virtual
        and config.executor == "process"
        and config.client_fraction < 1.0
    ):
        raise ConfigurationError(
            "executor='process' with virtual clients and client_fraction "
            f"= {config.client_fraction} is unsupported: the process "
            "executor maps every participating client's shard into a "
            "ShmArena shared-memory segment once, at pool start-up, and "
            "workers attach those fixed segments for the whole run — a "
            "partially sampled virtual cohort would need different "
            "segments each round. Supported alternatives: (a) keep "
            "partial participation on an in-process executor "
            "(executor='thread', 'batched', or 'sequential'); (b) keep "
            "executor='process' with full participation "
            "(client_fraction=1.0) so the shared-memory cohort is the "
            "whole population; or (c) set virtual_clients=False to "
            "materialize the population eagerly, which registers every "
            "shard in shared memory up front so sampled cohorts are "
            "subsets of the mapped segments."
        )

    probe_model = model_factory()
    with telemetry.span("estimate_smoothness", dataset=dataset.name):
        L = resolve_smoothness(
            probe_model,
            dataset,
            override=config.smoothness,
            seed=config.seed,
            probe_devices=config.smoothness_probe_devices if virtual else None,
        )
    eta = 1.0 / (config.beta * L)
    telemetry.gauge_set("fl.run.smoothness_L", L)
    telemetry.gauge_set("fl.run.step_size_eta", eta)

    solver = make_local_solver(
        config.algorithm,
        step_size=eta,
        num_steps=config.num_local_steps,
        batch_size=config.batch_size,
        mu=config.mu,
        **config.solver_kwargs,
    )

    # Concurrent executors need per-client model instances (transient
    # layer caches are per-call state); sequential and batched share one.
    share_model = config.executor in ("sequential", "batched")
    pool = build_client_pool(
        dataset,
        model_factory,
        solver,
        share_model=share_model,
        seed=config.seed,
        virtual=virtual,
        client_fraction=config.client_fraction,
        lru_capacity=config.lru_capacity,
    )
    executor = make_executor(config.executor, config.max_workers)

    delay_model = config.delay_model
    if delay_model is None:
        delay_model = make_uniform_delays(dataset.num_devices)

    server = FederatedServer(
        pool,
        eval_model=probe_model,
        executor=executor,
        delay_model=delay_model,
        client_fraction=config.client_fraction,
        seed=server_seed,
        eval_client_cap=config.max_eval_clients,
    )
    if w0 is None:
        w0 = probe_model.init_parameters(init_seed)

    run_config = {
        "algorithm": config.algorithm,
        "T": config.num_rounds,
        "tau": config.num_local_steps,
        "beta": config.beta,
        "mu": config.mu,
        "batch_size": config.batch_size,
        "L": L,
        "eta": eta,
        "seed": config.seed,
        **{f"solver_{k}": v for k, v in config.solver_kwargs.items()},
    }
    if ledger is not None:
        ledger.write_manifest(
            run_config,
            entropy={
                "seed": config.seed,
                "init_seed": init_seed,
                "server_seed": server_seed,
            },
            attrs={
                "dataset": dataset.name,
                "executor": config.executor,
                "num_devices": dataset.num_devices,
                "client_fraction": config.client_fraction,
            },
        )
    if monitors is not None:
        bind_monitor_theory(monitors, beta=config.beta, mu=config.mu, L=L)
        if ledger is not None:
            monitors.attach_ledger(ledger)

    # Simulated time (eq. (19)) is run-scoped: stamp every event this
    # run emits with the server clock's elapsed value.
    telemetry.attach_sim_clock(server.clock)
    status = "failed"
    try:
        with telemetry.span(
            "run",
            algorithm=config.algorithm,
            dataset=dataset.name,
            executor=config.executor,
            num_rounds=config.num_rounds,
            tau=config.num_local_steps,
        ):
            history, w_final = server.train(
                w0,
                config.num_rounds,
                algorithm_name=config.algorithm,
                dataset_name=dataset.name,
                config=run_config,
                eval_every=config.eval_every,
                verbose=verbose,
                ledger=ledger,
                monitors=monitors,
            )
        status = "diverged" if history.diverged() else "completed"
    finally:
        executor.close()
        if ledger is not None:
            ledger.close(status)
    return history, w_final
