"""High-level entry point: configure and run one federated experiment.

``run_federated`` is the function the examples and benchmarks call: it
estimates the smoothness constant, derives the paper's step size
``eta = 1/(beta L)``, builds clients/solver/server, trains for ``T``
rounds, and returns the :class:`TrainingHistory` plus the final model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.algorithms import make_local_solver
from repro.datasets.base import FederatedDataset
from repro.exceptions import ConfigurationError
from repro.fl.client import Client
from repro.fl.delays import DelayModel, make_uniform_delays
from repro.fl.executor import (
    BatchedCohortExecutor,
    ClientExecutor,
    SequentialExecutor,
    ThreadPoolClientExecutor,
)
from repro.fl.server import FederatedServer
from repro.fl.history import TrainingHistory
from repro.models.base import Model
from repro.obs import telemetry
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.smoothness import estimate_smoothness_power_iteration
from repro.utils.validation import check_positive, check_positive_int

#: valid ``FederatedRunConfig.executor`` values.  ``sequential`` and
#: ``batched`` share model instances across clients; ``thread`` and
#: ``process`` need one instance per client (see docs/PERFORMANCE.md).
EXECUTOR_CHOICES = ("sequential", "thread", "batched", "process")


def make_executor(name: str, max_workers: Optional[int] = None) -> ClientExecutor:
    """Build a :class:`ClientExecutor` from its config name."""
    if name == "sequential":
        return SequentialExecutor()
    if name == "batched":
        return BatchedCohortExecutor()
    if name == "thread":
        return ThreadPoolClientExecutor(max_workers=max_workers)
    if name == "process":
        # Imported lazily: the module pulls in multiprocessing machinery
        # that sequential runs never need.
        from repro.fl.executor_mp import ProcessPoolClientExecutor

        return ProcessPoolClientExecutor(max_workers=max_workers)
    raise ConfigurationError(
        f"executor must be one of {EXECUTOR_CHOICES}, got {name!r}"
    )


@dataclass
class FederatedRunConfig:
    """Everything needed to run one experiment.

    Attributes mirror the paper's notation: ``num_rounds`` is ``T``,
    ``num_local_steps`` is ``tau``, ``beta`` parametrizes the step size,
    ``mu`` is the proximal penalty, ``batch_size`` is ``B``.

    ``smoothness`` overrides the automatic ``L`` estimate; leave as
    ``None`` to use the model's analytic value (convex models) or a
    Hessian power-iteration probe (neural models).
    """

    algorithm: str = "fedproxvr-sarah"
    num_rounds: int = 50
    num_local_steps: int = 10
    beta: float = 5.0
    mu: float = 0.1
    batch_size: int = 32
    smoothness: Optional[float] = None
    client_fraction: float = 1.0
    eval_every: int = 1
    executor: str = "sequential"
    max_workers: Optional[int] = None
    seed: int = 0
    solver_kwargs: Dict[str, object] = field(default_factory=dict)
    delay_model: Optional[DelayModel] = None

    def __post_init__(self) -> None:
        check_positive_int("num_rounds", self.num_rounds)
        check_positive_int("num_local_steps", self.num_local_steps, minimum=0)
        check_positive("beta", self.beta)
        check_positive("mu", self.mu, strict=False)
        check_positive_int("batch_size", self.batch_size)
        if self.executor not in EXECUTOR_CHOICES:
            raise ConfigurationError(
                f"executor must be one of {EXECUTOR_CHOICES}, "
                f"got {self.executor!r}"
            )


def resolve_smoothness(
    model: Model,
    dataset: FederatedDataset,
    *,
    override: Optional[float] = None,
    seed: SeedLike = 0,
) -> float:
    """Pick ``L``: explicit override > analytic formula > power iteration."""
    if override is not None:
        return check_positive("smoothness", override)
    X, y = dataset.global_train()
    analytic = model.smoothness(X)
    if analytic is not None and analytic > 0:
        return float(analytic)
    w0 = model.init_parameters(seed)
    probe = estimate_smoothness_power_iteration(
        lambda w: model.gradient(w, X, y), w0, seed=seed
    )
    if probe <= 0:
        raise ConfigurationError("could not estimate a positive smoothness L")
    return float(probe)


def build_clients(
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    solver,
    *,
    share_model: bool,
    seed: int,
) -> list:
    """Instantiate one client per device shard."""
    shared = model_factory() if share_model else None
    clients = []
    for dev in dataset.devices:
        model = shared if share_model else model_factory()
        clients.append(
            Client(
                client_id=dev.device_id,
                data=dev,
                model=model,
                solver=solver,
                base_seed=seed,
            )
        )
    return clients


def run_federated(
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    config: FederatedRunConfig,
    *,
    w0: Optional[np.ndarray] = None,
    verbose: bool = False,
) -> Tuple[TrainingHistory, np.ndarray]:
    """Run one federated experiment end to end.

    Parameters
    ----------
    dataset:
        The federated data (one shard per device).
    model_factory:
        Zero-argument callable building a fresh ``Model``; called once
        under the sequential/batched executors and once per client when
        running on the thread or process pool.
    config:
        See :class:`FederatedRunConfig`.
    w0:
        Optional starting global model (defaults to the model's own
        initialization with ``config.seed``).

    Returns
    -------
    ``(history, w_final)``.
    """
    init_seed, server_seed = (s.entropy for s in spawn_seeds(config.seed, 2))

    probe_model = model_factory()
    with telemetry.span("estimate_smoothness", dataset=dataset.name):
        L = resolve_smoothness(
            probe_model, dataset, override=config.smoothness, seed=config.seed
        )
    eta = 1.0 / (config.beta * L)
    telemetry.gauge_set("fl.run.smoothness_L", L)
    telemetry.gauge_set("fl.run.step_size_eta", eta)

    solver = make_local_solver(
        config.algorithm,
        step_size=eta,
        num_steps=config.num_local_steps,
        batch_size=config.batch_size,
        mu=config.mu,
        **config.solver_kwargs,
    )

    # Concurrent executors need per-client model instances (transient
    # layer caches are per-call state); sequential and batched share one.
    share_model = config.executor in ("sequential", "batched")
    clients = build_clients(
        dataset,
        model_factory,
        solver,
        share_model=share_model,
        seed=config.seed,
    )
    executor = make_executor(config.executor, config.max_workers)

    delay_model = config.delay_model
    if delay_model is None:
        delay_model = make_uniform_delays(dataset.num_devices)

    server = FederatedServer(
        clients,
        eval_model=probe_model,
        executor=executor,
        delay_model=delay_model,
        client_fraction=config.client_fraction,
        seed=server_seed,
    )
    if w0 is None:
        w0 = probe_model.init_parameters(init_seed)

    run_config = {
        "algorithm": config.algorithm,
        "T": config.num_rounds,
        "tau": config.num_local_steps,
        "beta": config.beta,
        "mu": config.mu,
        "batch_size": config.batch_size,
        "L": L,
        "eta": eta,
        "seed": config.seed,
        **{f"solver_{k}": v for k, v in config.solver_kwargs.items()},
    }
    # Simulated time (eq. (19)) is run-scoped: stamp every event this
    # run emits with the server clock's elapsed value.
    telemetry.attach_sim_clock(server.clock)
    try:
        with telemetry.span(
            "run",
            algorithm=config.algorithm,
            dataset=dataset.name,
            executor=config.executor,
            num_rounds=config.num_rounds,
            tau=config.num_local_steps,
        ):
            history, w_final = server.train(
                w0,
                config.num_rounds,
                algorithm_name=config.algorithm,
                dataset_name=dataset.name,
                config=run_config,
                eval_every=config.eval_every,
                verbose=verbose,
            )
    finally:
        executor.close()
    return history, w_final
