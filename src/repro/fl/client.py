"""A federated client: one device's data, model handle, and local solver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.local.base import LocalSolveResult, LocalSolver
from repro.datasets.base import DeviceData
from repro.models.base import Model
from repro.utils.rng import derive_generator


@dataclass
class Client:
    """Simulated device participating in federated training.

    ``model`` may be shared across clients under the sequential executor
    (all models here are pure functions of ``(w, X, y)`` apart from
    transient layer caches); parallel executors must give each client
    its own instance because those caches are per-call state.

    ``base_seed`` makes the client's per-round randomness a pure
    function of ``(client id, round index)``, so results are identical
    under any executor and any client-completion order.
    """

    client_id: int
    data: DeviceData
    model: Model
    solver: LocalSolver
    base_seed: int = 0

    def round_rng(self, round_index: int) -> np.random.Generator:
        """The deterministic RNG stream for one (client, round) pair."""
        return derive_generator(self.base_seed, self.client_id, round_index)

    def local_update(
        self, w_global: np.ndarray, round_index: int
    ) -> LocalSolveResult:
        """Run the local solver on this device's training shard."""
        return self.solver.solve(
            self.model,
            self.data.X_train,
            self.data.y_train,
            w_global,
            self.round_rng(round_index),
        )

    @property
    def num_train(self) -> int:
        """Local training-set size ``D_n``."""
        return self.data.num_train

    def evaluate(
        self, w: np.ndarray, *, split: str = "test"
    ) -> Optional[float]:
        """Local accuracy on train or test shard (``None`` if empty)."""
        if split == "train":
            X, y = self.data.X_train, self.data.y_train
        elif split == "test":
            X, y = self.data.X_test, self.data.y_test
        else:
            raise ValueError(f"split must be 'train' or 'test', got {split!r}")
        if X.shape[0] == 0:
            return None
        return self.model.accuracy(w, X, y)
