"""Random hyperparameter search (the Tables 1-2 methodology).

The paper: "we conduct a random search on carefully chosen ranges of
hyperparameters to determine which combination of them would yield the
highest test accuracy with respect to each algorithm".  This module
implements that search over ``(tau, beta, mu, B)`` grids, evaluating
each draw with a full federated run and reporting the per-algorithm
best row in the papers' table format.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.exceptions import ConfigurationError
from repro.fl.history import TrainingHistory
from repro.fl.runner import FederatedRunConfig, run_federated
from repro.models.base import Model
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class SearchSpace:
    """Candidate values for each searched hyperparameter."""

    tau: Sequence[int] = (10, 20)
    beta: Sequence[float] = (5.0, 7.0, 9.0, 10.0)
    mu: Sequence[float] = (0.0, 0.01, 0.1)
    batch_size: Sequence[int] = (16, 32)

    def sample(self, rng: np.random.Generator) -> Dict[str, object]:
        """Draw one configuration uniformly from the grid."""
        return {
            "tau": int(rng.choice(list(self.tau))),
            "beta": float(rng.choice(list(self.beta))),
            "mu": float(rng.choice(list(self.mu))),
            "batch_size": int(rng.choice(list(self.batch_size))),
        }

    def size(self) -> int:
        """Cardinality of the full grid."""
        return len(self.tau) * len(self.beta) * len(self.mu) * len(self.batch_size)


@dataclass
class TrialResult:
    """One evaluated configuration."""

    algorithm: str
    params: Dict[str, object]
    best_accuracy: float
    final_loss: float
    rounds_to_best: Optional[int]
    history: Optional[TrainingHistory] = None


@dataclass
class SearchReport:
    """All trials for one algorithm, with the winner extracted."""

    algorithm: str
    trials: List[TrialResult] = field(default_factory=list)

    @property
    def best(self) -> TrialResult:
        """Highest-accuracy trial (ties broken by lower final loss)."""
        if not self.trials:
            raise ConfigurationError(f"no trials recorded for {self.algorithm}")
        return max(
            self.trials,
            key=lambda t: (
                t.best_accuracy if np.isfinite(t.best_accuracy) else -1.0,
                -t.final_loss if np.isfinite(t.final_loss) else -np.inf,
            ),
        )

    def table_row(self) -> str:
        """Format the winning trial like the paper's Tables 1-2."""
        b = self.best
        p = b.params
        mu = p.get("mu", 0.0)
        return (
            f"{self.algorithm:>18s} | tau={p['tau']:>3d} beta={p['beta']:>5.1f} "
            f"mu={mu:<6g} B={p['batch_size']:>3d} | "
            f"acc={100 * b.best_accuracy:6.2f}%"
        )


def random_search(
    algorithm: str,
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    *,
    space: Optional[SearchSpace] = None,
    num_trials: int = 8,
    num_rounds: int = 30,
    base_config: Optional[FederatedRunConfig] = None,
    seed: SeedLike = 0,
    keep_histories: bool = False,
    mu_always_zero: bool = False,
) -> SearchReport:
    """Random search for one algorithm.

    ``mu_always_zero`` pins the proximal penalty at 0 (FedAvg has no
    ``mu``, matching the paper's Table 1 row).  Seen configurations are
    deduplicated so small grids are not wastefully resampled.
    """
    space = space or SearchSpace()
    rng = as_generator(seed)
    base = base_config or FederatedRunConfig()
    report = SearchReport(algorithm=algorithm)
    seen: set = set()
    attempts = 0
    max_attempts = max(num_trials * 10, space.size() * 2)
    while len(report.trials) < num_trials and attempts < max_attempts:
        attempts += 1
        params = space.sample(rng)
        if mu_always_zero:
            params["mu"] = 0.0
        key = tuple(sorted(params.items()))
        if key in seen and len(seen) < space.size():
            continue
        seen.add(key)
        cfg = replace(
            base,
            algorithm=algorithm,
            num_rounds=num_rounds,
            num_local_steps=params["tau"],
            beta=params["beta"],
            mu=params["mu"],
            batch_size=params["batch_size"],
        )
        history, _ = run_federated(dataset, model_factory, cfg)
        best_acc = history.best("test_accuracy")
        report.trials.append(
            TrialResult(
                algorithm=algorithm,
                params=params,
                best_accuracy=best_acc,
                final_loss=history.final("train_loss"),
                rounds_to_best=history.rounds_to_accuracy(best_acc)
                if np.isfinite(best_acc)
                else None,
                history=history if keep_histories else None,
            )
        )
    return report


def compare_algorithms(
    algorithms: Sequence[str],
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    **search_kwargs,
) -> List[SearchReport]:
    """Tables 1-2 driver: search each algorithm, return its report.

    FedAvg automatically runs with ``mu = 0``.
    """
    reports = []
    for algo in algorithms:
        reports.append(
            random_search(
                algo,
                dataset,
                model_factory,
                mu_always_zero=(algo == "fedavg"),
                **search_kwargs,
            )
        )
    return reports


def format_table(reports: Sequence[SearchReport], title: str) -> str:
    """Render the paper-style comparison table as text."""
    lines = [title, "-" * len(title)]
    lines.extend(r.table_row() for r in reports)
    return "\n".join(lines)
