"""The federated server: Alg. 1's outer loop.

Per global iteration ``s``: broadcast ``w_bar^{(s-1)}``, run every
client's local solver through the executor, aggregate the returned local
models with the data-size weights (line 12), then record metrics and
simulated time.  Optional client sampling (``client_fraction < 1``)
extends the paper's full-participation protocol to the partial
participation regime of FedAvg.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fl.aggregation import weighted_average
from repro.fl.client import Client
from repro.fl.delays import DelayModel
from repro.fl.executor import ClientExecutor, SequentialExecutor
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.metrics import global_accuracy, global_loss_and_gradient_norm
from repro.models.base import Model
from repro.obs import telemetry
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import SimulatedClock
from repro.utils.validation import check_in_range, check_positive_int


class FederatedServer:
    """Orchestrates global iterations over a fixed client population."""

    def __init__(
        self,
        clients: Sequence[Client],
        eval_model: Model,
        *,
        executor: Optional[ClientExecutor] = None,
        delay_model: Optional[DelayModel] = None,
        aggregator: Callable[..., np.ndarray] = weighted_average,
        client_fraction: float = 1.0,
        seed: SeedLike = 0,
    ) -> None:
        if not clients:
            raise ConfigurationError("server needs >= 1 client")
        self.clients: List[Client] = list(clients)
        self.eval_model = eval_model
        self.executor = executor or SequentialExecutor()
        self.executor.register_clients(self.clients)
        self.delay_model = delay_model
        self.aggregator = aggregator
        self.client_fraction = check_in_range(
            "client_fraction", client_fraction, 0.0, 1.0, inclusive="right"
        )
        self._rng = as_generator(seed)
        self.clock = SimulatedClock()
        sizes = np.array([c.num_train for c in self.clients], dtype=np.float64)
        self._weights = sizes / sizes.sum()

    def _select_round_clients(self) -> List[int]:
        n = len(self.clients)
        if self.client_fraction >= 1.0:
            return list(range(n))
        k = max(1, int(round(self.client_fraction * n)))
        return sorted(self._rng.choice(n, size=k, replace=False).tolist())

    def run_round(self, w_global: np.ndarray, round_index: int) -> dict:
        """One global iteration; returns aggregation + diagnostics."""
        selected = self._select_round_clients()
        participants = [self.clients[i] for i in selected]
        results = self.executor.run_round(participants, w_global, round_index)

        weights = self._weights[selected]
        w_new = self.aggregator([r.w_local for r in results], weights)

        delays: List[float] = []
        if self.delay_model is not None:
            if len(self.delay_model) != len(self.clients):
                raise ConfigurationError(
                    f"delay model covers {len(self.delay_model)} devices, "
                    f"federation has {len(self.clients)}"
                )
            # Charge only the participating devices; the synchronous
            # round costs the slowest of them (SimulatedClock takes max).
            delays = [
                self.delay_model.delays[i].round_delay(r.num_gradient_evaluations)
                for i, r in zip(selected, results)
            ]
        self.clock.advance_round(delays if delays else [0.0])

        # Straggler diagnostics from the executor's per-client spans:
        # the simulated clock only ever sees max(delays); the gap
        # (max - median wall seconds) says how lopsided the round was.
        straggler_gap: Optional[float] = None
        client_seconds = self.executor.last_client_seconds
        if client_seconds:
            straggler_gap = max(client_seconds) - statistics.median(client_seconds)
            telemetry.observe("fl.round.straggler_gap", straggler_gap)

        thetas = [
            r.achieved_accuracy
            for r in results
            if r.achieved_accuracy is not None and np.isfinite(r.achieved_accuracy)
        ]
        return {
            "w": w_new,
            "selected": selected,
            "results": results,
            "mean_local_steps": float(np.mean([r.num_steps for r in results])),
            "mean_gradient_evaluations": float(
                np.mean([r.num_gradient_evaluations for r in results])
            ),
            "mean_achieved_theta": float(np.mean(thetas)) if thetas else None,
            "straggler_gap": straggler_gap,
        }

    def train(
        self,
        w0: np.ndarray,
        num_rounds: int,
        *,
        algorithm_name: str = "",
        dataset_name: str = "",
        config: Optional[dict] = None,
        eval_every: int = 1,
        verbose: bool = False,
    ) -> "tuple[TrainingHistory, np.ndarray]":
        """Run ``num_rounds`` global iterations from ``w0``.

        Returns ``(history, w_final)``.

        Metrics are evaluated every ``eval_every`` rounds (and always on
        the final round).  Divergent runs (non-finite loss) stop early
        with the divergence recorded rather than raising.
        """
        check_positive_int("num_rounds", num_rounds)
        check_positive_int("eval_every", eval_every)
        history = TrainingHistory(
            algorithm=algorithm_name or self.clients[0].solver.name,
            dataset=dataset_name,
            config=dict(config or {}),
        )
        w = np.array(w0, dtype=np.float64, copy=True)
        start = time.perf_counter()
        for s in range(1, num_rounds + 1):
            diverged = False
            with telemetry.span("round", s=s):
                outcome = self.run_round(w, s)
                w = outcome["w"]
                if s % eval_every == 0 or s == num_rounds:
                    with telemetry.span("eval", s=s):
                        loss, grad_norm = global_loss_and_gradient_norm(
                            self.eval_model, self.clients, w
                        )
                        acc = global_accuracy(self.eval_model, self.clients, w)
                    history.append(
                        RoundRecord(
                            round_index=s,
                            train_loss=loss,
                            grad_norm=grad_norm,
                            test_accuracy=acc,
                            sim_time=self.clock.elapsed,
                            wall_time=time.perf_counter() - start,
                            mean_local_steps=outcome["mean_local_steps"],
                            mean_gradient_evaluations=outcome[
                                "mean_gradient_evaluations"
                            ],
                            mean_achieved_theta=outcome["mean_achieved_theta"],
                            straggler_gap=outcome["straggler_gap"],
                        )
                    )
                    if verbose:
                        print(
                            f"[{history.algorithm}] round {s:4d}  "
                            f"loss {loss:10.5f}  acc {acc:6.4f}  "
                            f"|grad| {grad_norm:9.4f}"
                        )
                    diverged = not np.isfinite(loss)
            telemetry.round_finished(s)
            if diverged:
                break
        return history, w
