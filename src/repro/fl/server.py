"""The federated server: Alg. 1's outer loop.

Per global iteration ``s``: broadcast ``w_bar^{(s-1)}``, run the round's
cohort through the executor, aggregate the returned local models with
the data-size weights (line 12), then record metrics and simulated
time.  Optional client sampling (``client_fraction < 1``) extends the
paper's full-participation protocol to the partial participation regime
of FedAvg.

The server schedules against a :class:`~repro.fl.registry.ClientRegistry`
— packed population metadata — and materializes clients through a pool:
:class:`~repro.fl.registry.EagerClientPool` when constructed from a
client list (the classic path, bit-identical to previous behavior), or
:class:`~repro.fl.registry.LazyClientPool` for massive registered
populations where only the ``K`` selected clients per round are ever
hydrated.  Aggregation weights and every population-weighted metric
come from registry metadata, so cost per round is O(K), not O(N).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import asdict
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fl.aggregation import weighted_average
from repro.fl.client import Client
from repro.fl.delays import DelayModel
from repro.fl.executor import ClientExecutor, SequentialExecutor
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.metrics import global_accuracy, global_loss_and_gradient_norm
from repro.fl.registry import ClientRegistry, EagerClientPool, LazyClientPool
from repro.models.base import Model
from repro.obs import RoundObservation, telemetry
from repro.utils.rng import SeedLike, as_generator, derive_generator
from repro.utils.timing import SimulatedClock
from repro.utils.validation import check_in_range, check_positive_int

#: spawn-key tag separating the eval-cohort sampler from the
#: round-selection stream (any fixed int distinct from client ids works)
_EVAL_STREAM = 0x0E7A1

ClientSource = Union[Sequence[Client], EagerClientPool, LazyClientPool]


class FederatedServer:
    """Orchestrates global iterations over a registered client population."""

    def __init__(
        self,
        clients: ClientSource,
        eval_model: Model,
        *,
        executor: Optional[ClientExecutor] = None,
        delay_model: Optional[DelayModel] = None,
        aggregator: Callable[..., np.ndarray] = weighted_average,
        client_fraction: float = 1.0,
        seed: SeedLike = 0,
        eval_client_cap: Optional[int] = None,
    ) -> None:
        if isinstance(clients, (EagerClientPool, LazyClientPool)):
            self._pool = clients
        else:
            if not clients:
                raise ConfigurationError("server needs >= 1 client")
            self._pool = EagerClientPool(list(clients))
        self.registry: ClientRegistry = self._pool.registry
        self.eval_model = eval_model
        self.executor = executor or SequentialExecutor()
        population = self._pool.population
        if population is not None:
            self.executor.register_clients(population)
        self.delay_model = delay_model
        self.aggregator = aggregator
        self.client_fraction = check_in_range(
            "client_fraction", client_fraction, 0.0, 1.0, inclusive="right"
        )
        if eval_client_cap is not None:
            check_positive_int("eval_client_cap", eval_client_cap)
            if isinstance(seed, np.random.Generator):
                raise ConfigurationError(
                    "eval_client_cap needs a stable seed (int/SeedSequence) "
                    "for its dedicated sampling stream"
                )
        self.eval_client_cap = eval_client_cap
        self._seed = seed
        self._rng = as_generator(seed)
        self.clock = SimulatedClock()
        # Satellite of ISSUE 7: weights come from packed registry
        # metadata — the last O(N) walk over client objects is gone.
        self._weights = self.registry.weights()
        telemetry.gauge_set("fl.registry.size", float(self.registry.size))

    @property
    def clients(self) -> List[Client]:
        """The materialized population.

        Cheap for eager pools (the original list); an explicit O(N)
        hydration sweep for lazy pools — diagnostics only, the training
        path never calls this.
        """
        population = self._pool.population
        if population is not None:
            return population
        return list(self._pool.iter_clients(range(self.registry.size)))

    def _select_round_clients(self) -> List[int]:
        n = self.registry.size
        if self.client_fraction >= 1.0:
            return list(range(n))
        k = max(1, int(round(self.client_fraction * n)))
        return sorted(self._rng.choice(n, size=k, replace=False).tolist())

    def _eval_cohort(self) -> Tuple[Iterable[Client], np.ndarray]:
        """Clients + weights for a metrics pass.

        Default: the full population streamed through the pool with the
        exact registry weights (bit-identical to the historical walk).
        With ``eval_client_cap < N``: a weighted sample drawn from a
        dedicated RNG stream (independent of the round-selection
        stream), with the sampled clients' exact weights renormalized —
        the sampling-consistent estimator of the population metrics.
        """
        n = self.registry.size
        cap = self.eval_client_cap
        if cap is None or cap >= n:
            indices: Sequence[int] = range(n)
            weights = self._weights
        else:
            entropy = (
                self._seed.entropy
                if isinstance(self._seed, np.random.SeedSequence)
                else self._seed
            )
            rng = derive_generator(entropy, _EVAL_STREAM)
            indices = np.sort(
                rng.choice(n, size=cap, replace=False, p=self._weights)
            ).tolist()
            weights = self.registry.subset_weights(indices)
        return self._pool.iter_clients(indices), weights

    def run_round(self, w_global: np.ndarray, round_index: int) -> dict:
        """One global iteration; returns aggregation + diagnostics."""
        selected = self._select_round_clients()
        participants = self._pool.hydrate(selected)
        results = self.executor.run_round(participants, w_global, round_index)

        weights = self._weights[selected]
        w_new = self.aggregator([r.w_local for r in results], weights)

        delays: List[float] = []
        if self.delay_model is not None:
            if len(self.delay_model) != self.registry.size:
                raise ConfigurationError(
                    f"delay model covers {len(self.delay_model)} devices, "
                    f"federation has {self.registry.size}"
                )
            # Charge only the participating devices; the synchronous
            # round costs the slowest of them (SimulatedClock takes max).
            # Index-addressable draws: the other N - K devices' delay
            # entries are never touched, let alone materialized.
            delays = [
                self.delay_model.round_delay_at(i, r.num_gradient_evaluations)
                for i, r in zip(selected, results)
            ]
        self.clock.advance_round(delays if delays else [0.0])

        # Straggler diagnostics from the executor's per-client spans:
        # the simulated clock only ever sees max(delays); the gap
        # (max - median wall seconds) says how lopsided the round was.
        straggler_gap: Optional[float] = None
        client_seconds = self.executor.last_client_seconds
        if client_seconds:
            straggler_gap = max(client_seconds) - statistics.median(client_seconds)
            telemetry.observe("fl.round.straggler_gap", straggler_gap)

        thetas = [
            r.achieved_accuracy
            for r in results
            if r.achieved_accuracy is not None and np.isfinite(r.achieved_accuracy)
        ]

        # FedProx-style gradient dissimilarity Γ̂ over the round's cohort:
        # Σ p̃ₙ gₙ² / (Σ p̃ₙ gₙ)² with gₙ = ‖∇Jₙ(w̄)‖ (already measured by
        # every local solve) and p̃ the renormalized cohort weights.  A
        # pure read of solver diagnostics — never touches RNG state or
        # the aggregation arithmetic, so bit-identity on/off is
        # structural.  Γ̂ ≈ 1 means IID-looking gradients; large values
        # mean the σ̄² heterogeneity assumption is under strain.
        grad_dissimilarity: Optional[float] = None
        norms = np.array(
            [r.start_grad_norm for r in results], dtype=np.float64
        )
        total_weight = float(weights.sum())
        if np.all(np.isfinite(norms)) and total_weight > 0.0:
            p = weights / total_weight
            mean_norm = float(np.dot(p, norms))
            den = mean_norm * mean_norm
            if den == 0.0:
                grad_dissimilarity = None
            else:
                grad_dissimilarity = float(np.dot(p, norms * norms)) / den
                telemetry.gauge_set(
                    "fl.round.grad_dissimilarity", grad_dissimilarity
                )

        return {
            "w": w_new,
            "selected": selected,
            "results": results,
            "mean_local_steps": float(np.mean([r.num_steps for r in results])),
            "mean_gradient_evaluations": float(
                np.mean([r.num_gradient_evaluations for r in results])
            ),
            "mean_achieved_theta": float(np.mean(thetas)) if thetas else None,
            "straggler_gap": straggler_gap,
            "grad_dissimilarity": grad_dissimilarity,
        }

    def train(
        self,
        w0: np.ndarray,
        num_rounds: int,
        *,
        algorithm_name: str = "",
        dataset_name: str = "",
        config: Optional[dict] = None,
        eval_every: int = 1,
        verbose: bool = False,
        ledger=None,
        monitors=None,
    ) -> "tuple[TrainingHistory, np.ndarray]":
        """Run ``num_rounds`` global iterations from ``w0``.

        Returns ``(history, w_final)``.

        Metrics are evaluated every ``eval_every`` rounds (and always on
        the final round).  Divergent runs (non-finite loss) stop early
        with the divergence recorded rather than raising.

        ``ledger`` (a :class:`repro.obs.RunLedger`) durably commits one
        record per round — a full :class:`RoundRecord` payload on
        evaluated rounds, the cheap executor diagnostics otherwise.
        ``monitors`` (a :class:`repro.obs.MonitorSuite`) sees every
        round's :class:`repro.obs.RoundObservation`; in fail-fast mode
        its :class:`repro.obs.MonitorFailFast` propagates out of this
        method after the triggering round has been committed.  Both are
        pure observers — no RNG or aggregation arithmetic depends on
        them, so results are bit-identical with or without them.
        """
        check_positive_int("num_rounds", num_rounds)
        check_positive_int("eval_every", eval_every)
        history = TrainingHistory(
            algorithm=algorithm_name or self._pool.solver.name,
            dataset=dataset_name,
            config=dict(config or {}),
        )
        w = np.array(w0, dtype=np.float64, copy=True)
        start = time.perf_counter()
        for s in range(1, num_rounds + 1):
            diverged = False
            record: Optional[RoundRecord] = None
            with telemetry.span("round", s=s):
                outcome = self.run_round(w, s)
                w = outcome["w"]
                if s % eval_every == 0 or s == num_rounds:
                    with telemetry.span("eval", s=s):
                        eval_clients, eval_weights = self._eval_cohort()
                        loss, grad_norm = global_loss_and_gradient_norm(
                            self.eval_model,
                            eval_clients,
                            w,
                            weights=eval_weights,
                        )
                        eval_clients, _ = self._eval_cohort()
                        acc = global_accuracy(self.eval_model, eval_clients, w)
                    record = RoundRecord(
                        round_index=s,
                        train_loss=loss,
                        grad_norm=grad_norm,
                        test_accuracy=acc,
                        sim_time=self.clock.elapsed,
                        wall_time=time.perf_counter() - start,
                        mean_local_steps=outcome["mean_local_steps"],
                        mean_gradient_evaluations=outcome[
                            "mean_gradient_evaluations"
                        ],
                        mean_achieved_theta=outcome["mean_achieved_theta"],
                        straggler_gap=outcome["straggler_gap"],
                        grad_dissimilarity=outcome["grad_dissimilarity"],
                    )
                    history.append(record)
                    if verbose:
                        print(
                            f"[{history.algorithm}] round {s:4d}  "
                            f"loss {loss:10.5f}  acc {acc:6.4f}  "
                            f"|grad| {grad_norm:9.4f}"
                        )
                    diverged = not np.isfinite(loss)
            telemetry.round_finished(s)
            if ledger is not None:
                if record is not None:
                    payload = asdict(record)
                else:
                    payload = {
                        "round_index": s,
                        "mean_local_steps": outcome["mean_local_steps"],
                        "mean_gradient_evaluations": outcome[
                            "mean_gradient_evaluations"
                        ],
                        "mean_achieved_theta": outcome["mean_achieved_theta"],
                        "straggler_gap": outcome["straggler_gap"],
                        "grad_dissimilarity": outcome["grad_dissimilarity"],
                        "sim_time": self.clock.elapsed,
                    }
                ledger.commit_round(
                    s,
                    payload,
                    evaluated=record is not None,
                    sim_time=self.clock.elapsed,
                )
            if monitors is not None:
                monitors.observe_round(
                    RoundObservation(
                        round_index=s,
                        train_loss=record.train_loss if record else None,
                        grad_norm=record.grad_norm if record else None,
                        test_accuracy=record.test_accuracy if record else None,
                        mean_achieved_theta=outcome["mean_achieved_theta"],
                        straggler_gap=outcome["straggler_gap"],
                        grad_dissimilarity=outcome["grad_dissimilarity"],
                        sim_time=self.clock.elapsed,
                        evaluated=record is not None,
                    )
                )
            if diverged:
                break
        return history, w
