"""FSVRG — Federated SVRG (Konecny et al. 2016), reference [12].

The paper's related work positions FedProxVR against FSVRG, which
differs from FedProxVR-SVRG in two protocol-level ways:

1. the SVRG control variate anchors on the **global** gradient
   ``grad F_bar(w_bar)`` — requiring an extra half-round in which every
   device ships its full local gradient to the server;
2. there is no proximal term, and each device scales its step size by
   ``D / (N * D_n)`` so devices with fewer samples take larger steps.

The two-phase round does not fit the one-shot :class:`LocalSolver`
interface, so FSVRG gets its own runner mirroring
:func:`repro.fl.runner.run_federated`'s signature and returning the same
:class:`TrainingHistory`, which makes it drop-in comparable in benches.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

import numpy as np

from repro.datasets.base import FederatedDataset
from repro.fl.aggregation import weighted_average
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.metrics import global_accuracy, global_loss_and_gradient_norm
from repro.fl.runner import FederatedRunConfig, resolve_smoothness
from repro.models.base import Model
from repro.utils.rng import derive_generator, spawn_seeds


def _fsvrg_local_update(
    model: Model,
    X: np.ndarray,
    y: np.ndarray,
    w_global: np.ndarray,
    global_grad: np.ndarray,
    *,
    step_size: float,
    num_steps: int,
    batch_size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One device's FSVRG inner loop (globally-anchored SVRG)."""
    n = X.shape[0]
    w = np.array(w_global, dtype=np.float64, copy=True)
    for _ in range(num_steps):
        size = min(batch_size, n)
        idx = rng.choice(n, size=size, replace=False) if size < n else np.arange(n)
        g_now = model.gradient(w, X[idx], y[idx])
        g_anchor = model.gradient(w_global, X[idx], y[idx])
        # local stochastic part corrected toward the *global* gradient
        v = g_now - g_anchor + global_grad
        w -= step_size * v
    return w


def run_fsvrg(
    dataset: FederatedDataset,
    model_factory: Callable[[], Model],
    config: FederatedRunConfig,
    *,
    w0: Optional[np.ndarray] = None,
    verbose: bool = False,
) -> Tuple[TrainingHistory, np.ndarray]:
    """Run FSVRG for ``config.num_rounds`` global iterations.

    Uses ``config``'s ``beta`` (via ``eta = 1/(beta L)``), ``tau``,
    ``batch_size`` and ``seed``; ``mu`` is ignored (FSVRG has no prox).
    Each device's step size is additionally scaled by ``D / (N D_n)``
    per the FSVRG recipe.
    """
    init_seed, _ = (s.entropy for s in spawn_seeds(config.seed, 2))
    model = model_factory()
    L = resolve_smoothness(model, dataset, override=config.smoothness, seed=config.seed)
    base_eta = 1.0 / (config.beta * L)

    weights = dataset.weights()
    N = dataset.num_devices
    total = dataset.total_train
    step_scales = np.array(
        [total / (N * d.num_train) for d in dataset.devices], dtype=np.float64
    )

    if w0 is None:
        w0 = model.init_parameters(init_seed)
    w = np.array(w0, dtype=np.float64, copy=True)

    # Evaluation plumbing reuses the standard metrics through throwaway
    # Client shells (metrics only touch .data and .num_train).
    from repro.core.local import FedAvgLocalSolver
    from repro.fl.client import Client

    eval_solver = FedAvgLocalSolver(step_size=base_eta, num_steps=1, batch_size=1)
    clients = [
        Client(d.device_id, d, model, eval_solver, base_seed=config.seed)
        for d in dataset.devices
    ]

    history = TrainingHistory(
        algorithm="fsvrg",
        dataset=dataset.name,
        config={
            "algorithm": "fsvrg",
            "T": config.num_rounds,
            "tau": config.num_local_steps,
            "beta": config.beta,
            "batch_size": config.batch_size,
            "L": L,
            "eta": base_eta,
            "seed": config.seed,
        },
    )
    start = time.perf_counter()
    for s in range(1, config.num_rounds + 1):
        # Phase 1: server assembles the global full gradient.
        device_grads = [
            model.gradient(w, d.X_train, d.y_train) for d in dataset.devices
        ]
        global_grad = np.einsum("n,nd->d", weights, np.stack(device_grads))

        # Phase 2: locally anchored SVRG steps, then aggregation.
        local_models = []
        for k, dev in enumerate(dataset.devices):
            rng = derive_generator(config.seed, dev.device_id, s)
            local_models.append(
                _fsvrg_local_update(
                    model,
                    dev.X_train,
                    dev.y_train,
                    w,
                    global_grad,
                    step_size=base_eta * float(step_scales[k]),
                    num_steps=config.num_local_steps,
                    batch_size=config.batch_size,
                    rng=rng,
                )
            )
        w = weighted_average(local_models, weights)

        if s % config.eval_every == 0 or s == config.num_rounds:
            loss, grad_norm = global_loss_and_gradient_norm(model, clients, w)
            acc = global_accuracy(model, clients, w)
            history.append(
                RoundRecord(
                    round_index=s,
                    train_loss=loss,
                    grad_norm=grad_norm,
                    test_accuracy=acc,
                    sim_time=0.0,
                    wall_time=time.perf_counter() - start,
                    mean_local_steps=float(config.num_local_steps),
                    mean_gradient_evaluations=float(2 * config.num_local_steps + 1),
                )
            )
            if verbose:
                print(f"[fsvrg] round {s:4d}  loss {loss:10.5f}  acc {acc:6.4f}")
            if not np.isfinite(loss):
                break
    return history, w
