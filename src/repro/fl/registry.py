"""Registered-population bookkeeping for massive-cohort federations.

ROADMAP item 1: registered-population size ``N`` must be nearly free
when only ``K << N`` clients participate per round.  Three pieces make
that true:

* :class:`ClientRegistry` — per-client metadata (id, training size,
  shard seed) in packed ndarrays.  Everything Theorem 1 needs from the
  *population* — the data-weighted aggregation weights ``p_n = D_n / D``
  and the ``p_n``-weighted moments behind ``sigma_bar^2`` — is computed
  from this metadata, never from materialized client objects, so the
  quantities stay exact under sampling.
* :class:`VirtualClient` — the lightweight handle for one registered
  client; :meth:`VirtualClient.hydrate` turns it into a real
  :class:`~repro.fl.client.Client` once a shard and model are available.
* :class:`LazyClientPool` — hydrates each round's selected cohort on
  demand: dataset shards are regenerated from their seed-derived
  streams (see :class:`repro.datasets.base.LazyFederatedDataset`) and
  the resulting clients are kept in a bounded LRU pool so hot clients
  skip re-setup.  :class:`EagerClientPool` wraps a pre-built client list
  behind the same interface, which is what keeps the eager path
  bit-identical.

Hydration cost is observable through ``repro.obs``: the pool maintains
``fl.registry.size`` (gauge), ``fl.cohort.hydrations``,
``fl.cohort.lru_hits`` and ``fl.cohort.evictions`` (counters).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from repro.core.local.base import LocalSolver
from repro.datasets.base import DeviceData
from repro.exceptions import ConfigurationError
from repro.fl.client import Client
from repro.models.base import Model
from repro.obs import telemetry


class ClientRegistry:
    """Packed per-client metadata for the whole registered population.

    Holding ``N = 10^6`` registrations costs two int64 vectors — no
    client objects, shards, or models.  Aggregation weights are computed
    exactly as the eager server did (`float64(sizes) / sum`), so the two
    paths agree bit-for-bit.
    """

    def __init__(
        self,
        client_ids: np.ndarray,
        num_train: np.ndarray,
        *,
        base_seed: int = 0,
    ) -> None:
        self.client_ids = np.ascontiguousarray(client_ids, dtype=np.int64)
        self.num_train = np.ascontiguousarray(num_train, dtype=np.int64)
        if self.client_ids.ndim != 1 or self.num_train.ndim != 1:
            raise ConfigurationError("registry vectors must be 1-D")
        if self.client_ids.shape[0] != self.num_train.shape[0]:
            raise ConfigurationError(
                f"registry has {self.client_ids.shape[0]} ids for "
                f"{self.num_train.shape[0]} sizes"
            )
        if self.client_ids.shape[0] == 0:
            raise ConfigurationError("registry needs >= 1 client")
        if int(self.num_train.min()) < 1:
            raise ConfigurationError("every client needs >= 1 training sample")
        self.base_seed = int(base_seed)
        self._weights: Optional[np.ndarray] = None

    @classmethod
    def from_dataset(cls, dataset, *, base_seed: int = 0) -> "ClientRegistry":
        """Registry over a dataset's devices (eager or lazy).

        Reads only the packed ``train_sizes`` metadata — no shard is
        materialized.  Client ids are the device indices, matching what
        every generator in :mod:`repro.datasets` assigns.
        """
        sizes = np.asarray(dataset.train_sizes, dtype=np.int64)
        return cls(
            np.arange(sizes.shape[0], dtype=np.int64),
            sizes,
            base_seed=base_seed,
        )

    @classmethod
    def from_clients(
        cls, clients: Sequence[Client], *, base_seed: Optional[int] = None
    ) -> "ClientRegistry":
        """Registry mirroring an already-materialized client list."""
        if not clients:
            raise ConfigurationError("registry needs >= 1 client")
        seed = clients[0].base_seed if base_seed is None else base_seed
        return cls(
            np.array([c.client_id for c in clients], dtype=np.int64),
            np.array([c.num_train for c in clients], dtype=np.int64),
            base_seed=seed,
        )

    @property
    def size(self) -> int:
        """The registered-population size ``N``."""
        return int(self.client_ids.shape[0])

    @property
    def total_train(self) -> int:
        """The paper's ``D = sum_n D_n``."""
        return int(self.num_train.sum())

    def weights(self) -> np.ndarray:
        """Aggregation weights ``p_n = D_n / D`` (cached, sums to one)."""
        if self._weights is None:
            sizes = self.num_train.astype(np.float64)
            self._weights = sizes / sizes.sum()
        return self._weights

    def subset_weights(self, indices: Sequence[int]) -> np.ndarray:
        """Weights of a sampled cohort, renormalized to sum to one.

        The sampling-correct way to estimate population-weighted
        quantities (global loss, ``sigma_bar^2``) from ``K`` hydrated
        clients: restrict the exact ``p_n`` to the sample and rescale.
        """
        sub = self.weights()[np.asarray(indices, dtype=np.int64)]
        total = sub.sum()
        if total <= 0.0:
            raise ConfigurationError("subset weights sum to zero")
        return sub / total

    def virtual(self, index: int) -> "VirtualClient":
        """The lightweight handle for registered client ``index``."""
        if not 0 <= index < self.size:
            raise ConfigurationError(
                f"client index {index} out of range [0, {self.size})"
            )
        return VirtualClient(
            client_id=int(self.client_ids[index]),
            num_train=int(self.num_train[index]),
            base_seed=self.base_seed,
        )


@dataclass(frozen=True)
class VirtualClient:
    """One registered client as metadata only — no shard, no model.

    Carries exactly what the server needs to schedule and weight the
    client; :meth:`hydrate` binds a materialized shard and a model to
    produce the real :class:`~repro.fl.client.Client` the executors run.
    """

    client_id: int
    num_train: int
    base_seed: int = 0

    def hydrate(
        self, data: DeviceData, model: Model, solver: LocalSolver
    ) -> Client:
        """Bind shard + model; validates the shard matches the metadata."""
        if data.num_train != self.num_train:
            raise ConfigurationError(
                f"client {self.client_id}: shard has {data.num_train} train "
                f"samples, registry says {self.num_train}"
            )
        return Client(
            client_id=self.client_id,
            data=data,
            model=model,
            solver=solver,
            base_seed=self.base_seed,
        )


class EagerClientPool:
    """The backward-compatible pool: every client pre-materialized.

    Wraps the classic ``list[Client]`` behind the pool interface so the
    server has a single code path; ``hydrate`` is a list lookup.
    """

    def __init__(
        self,
        clients: Sequence[Client],
        *,
        registry: Optional[ClientRegistry] = None,
    ) -> None:
        if not clients:
            raise ConfigurationError("pool needs >= 1 client")
        self._clients: List[Client] = list(clients)
        self.registry = registry or ClientRegistry.from_clients(self._clients)
        if self.registry.size != len(self._clients):
            raise ConfigurationError(
                f"registry covers {self.registry.size} clients, "
                f"pool holds {len(self._clients)}"
            )
        self.solver = self._clients[0].solver

    @property
    def population(self) -> Optional[List[Client]]:
        """The full materialized population (eager pools only)."""
        return self._clients

    def hydrate(self, indices: Sequence[int]) -> List[Client]:
        return [self._clients[i] for i in indices]

    def iter_clients(self, indices: Sequence[int]) -> Iterator[Client]:
        for i in indices:
            yield self._clients[i]


class LazyClientPool:
    """Bounded LRU pool hydrating registered clients on demand.

    ``dataset.device(k)`` regenerates client ``k``'s shard from its
    seed-derived stream; a hydrated :class:`Client` stays pooled until
    ``capacity`` forces the least-recently-used one out.  Hot clients
    (re-selected across rounds, or everyone at ``client_fraction=1.0``
    with ``capacity >= N``) therefore skip re-setup entirely.

    ``share_model=True`` mirrors the sequential/batched executors' model
    sharing: every hydrated client references one model instance.  With
    ``share_model=False`` (thread/process executors) each hydration
    builds a private model via ``model_factory``.
    """

    def __init__(
        self,
        dataset,
        model_factory: Callable[[], Model],
        solver: LocalSolver,
        *,
        share_model: bool,
        base_seed: int = 0,
        capacity: Optional[int] = None,
        registry: Optional[ClientRegistry] = None,
    ) -> None:
        self.dataset = dataset
        self.model_factory = model_factory
        self.solver = solver
        self.share_model = share_model
        self.registry = registry or ClientRegistry.from_dataset(
            dataset, base_seed=base_seed
        )
        if capacity is None:
            capacity = self.registry.size
        if capacity < 1:
            raise ConfigurationError("pool capacity must be >= 1")
        self.capacity = int(capacity)
        self._shared_model: Optional[Model] = None
        self._cache: "OrderedDict[int, Client]" = OrderedDict()
        #: guards the LRU cache, the shared model, and the counters —
        #: hydration may be triggered from pool worker threads.
        self._lock = threading.Lock()
        self.hydration_count = 0
        self.hit_count = 0
        self.eviction_count = 0

    @property
    def population(self) -> Optional[List[Client]]:
        """Lazy pools have no materialized population to announce."""
        return None

    def _model(self) -> Model:
        # Caller holds self._lock (shared-model lazy init must not race).
        if not self.share_model:
            return self.model_factory()
        if self._shared_model is None:
            self._shared_model = self.model_factory()
        return self._shared_model

    def _build(self, index: int) -> Client:
        return self.registry.virtual(index).hydrate(
            self.dataset.device(index), self._model(), self.solver
        )

    def client(self, index: int) -> Client:
        """Hydrate one client through the LRU (hot clients are cached).

        Thread-safe: the whole lookup-or-hydrate is one critical
        section, so two workers asking for the same cold client cannot
        double-hydrate it or corrupt the LRU ordering.
        """
        with self._lock:
            cached = self._cache.get(index)
            if cached is not None:
                self._cache.move_to_end(index)
                self.hit_count += 1
                telemetry.counter_add("fl.cohort.lru_hits", 1)
                return cached
            client = self._build(index)
            self.hydration_count += 1
            telemetry.counter_add("fl.cohort.hydrations", 1)
            self._cache[index] = client
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)
                self.eviction_count += 1
                telemetry.counter_add("fl.cohort.evictions", 1)
            return client

    def hydrate(self, indices: Sequence[int]) -> List[Client]:
        """Hydrate a round's cohort, ordered like ``indices``."""
        return [self.client(i) for i in indices]

    def iter_clients(self, indices: Sequence[int]) -> Iterator[Client]:
        """Stream clients one at a time *without* polluting the LRU.

        The evaluation pass may sweep far more clients than ``capacity``
        (up to the full population); building them transiently keeps the
        round-hot cohort pooled.  Cached clients are still reused.
        """
        for i in indices:
            with self._lock:
                cached = self._cache.get(i)
                if cached is not None:
                    self.hit_count += 1
                    telemetry.counter_add("fl.cohort.lru_hits", 1)
                else:
                    self.hydration_count += 1
                    telemetry.counter_add("fl.cohort.hydrations", 1)
                    cached = self._build(i)
            yield cached
