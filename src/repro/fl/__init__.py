"""Federated-learning simulation framework.

The outer loop of Alg. 1: a :class:`repro.fl.server.FederatedServer`
broadcasts the global model, a :class:`repro.fl.executor.ClientExecutor`
runs every :class:`repro.fl.client.Client`'s local solver (sequentially
or on a thread pool), the weighted average (line 12) closes the round,
and :mod:`repro.fl.metrics` / :mod:`repro.fl.delays` record convergence
and simulated training time.
"""

from repro.fl.aggregation import (
    weighted_average,
    coordinate_median,
    trimmed_mean,
)
from repro.fl.client import Client
from repro.fl.delays import DelayModel, make_uniform_delays, make_heterogeneous_delays
from repro.fl.executor import SequentialExecutor, ThreadPoolClientExecutor
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.metrics import global_loss, global_accuracy, global_gradient_norm
from repro.fl.server import FederatedServer
from repro.fl.runner import FederatedRunConfig, run_federated

__all__ = [
    "Client",
    "DelayModel",
    "FederatedRunConfig",
    "FederatedServer",
    "RoundRecord",
    "SequentialExecutor",
    "ThreadPoolClientExecutor",
    "TrainingHistory",
    "coordinate_median",
    "global_accuracy",
    "global_gradient_norm",
    "global_loss",
    "make_heterogeneous_delays",
    "make_uniform_delays",
    "run_federated",
    "trimmed_mean",
    "weighted_average",
]
