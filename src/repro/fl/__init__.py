"""Federated-learning simulation framework.

The outer loop of Alg. 1: a :class:`repro.fl.server.FederatedServer`
broadcasts the global model, a :class:`repro.fl.executor.ClientExecutor`
runs every :class:`repro.fl.client.Client`'s local solver (sequentially
or on a thread pool), the weighted average (line 12) closes the round,
and :mod:`repro.fl.metrics` / :mod:`repro.fl.delays` record convergence
and simulated training time.

Two drivers sit on top of the engine: :mod:`repro.fl.fsvrg` (the
two-phase FSVRG baseline, reference [12]) and :mod:`repro.fl.tuning`
(the Tables 1-2 random hyperparameter search).
"""

from repro.fl.aggregation import (
    weighted_average,
    coordinate_median,
    trimmed_mean,
)
from repro.fl.client import Client
from repro.fl.delays import (
    DelayModel,
    PackedDelayModel,
    make_uniform_delays,
    make_heterogeneous_delays,
)
from repro.fl.executor import (
    BatchedCohortExecutor,
    SequentialExecutor,
    ThreadPoolClientExecutor,
)
from repro.fl.history import RoundRecord, TrainingHistory
from repro.fl.metrics import global_loss, global_accuracy, global_gradient_norm
from repro.fl.registry import (
    ClientRegistry,
    EagerClientPool,
    LazyClientPool,
    VirtualClient,
)
from repro.fl.server import FederatedServer
from repro.fl.runner import FederatedRunConfig, build_client_pool, run_federated
from repro.fl.fsvrg import run_fsvrg
from repro.fl.tuning import (
    SearchReport,
    SearchSpace,
    compare_algorithms,
    format_table,
    random_search,
)

__all__ = [
    "BatchedCohortExecutor",
    "Client",
    "ClientRegistry",
    "DelayModel",
    "EagerClientPool",
    "FederatedRunConfig",
    "FederatedServer",
    "LazyClientPool",
    "PackedDelayModel",
    "RoundRecord",
    "SearchReport",
    "SearchSpace",
    "SequentialExecutor",
    "ThreadPoolClientExecutor",
    "TrainingHistory",
    "VirtualClient",
    "build_client_pool",
    "compare_algorithms",
    "coordinate_median",
    "format_table",
    "global_accuracy",
    "global_gradient_norm",
    "global_loss",
    "make_heterogeneous_delays",
    "make_uniform_delays",
    "random_search",
    "run_federated",
    "run_fsvrg",
    "trimmed_mean",
    "weighted_average",
]
