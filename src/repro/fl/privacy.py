"""Differentially-private update release (clip + Gaussian noise).

The paper motivates FL by on-device privacy; update-level DP is the
standard hardening of that story: before leaving the device, the model
update is clipped to an L2 ball of radius ``clip_norm`` and perturbed
with Gaussian noise of scale ``noise_multiplier * clip_norm``.

Accounting uses the classical Gaussian-mechanism composition: each
release is ``(eps_round, delta)``-DP with
``eps_round = clip-sensitivity-normalized sqrt(2 ln(1.25/delta)) /
noise_multiplier``, and rounds compose additively (basic composition —
deliberately conservative and dependency-free; see the docstring of
:class:`PrivacyAccountant` for the caveat).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive


def clip_update(update: np.ndarray, clip_norm: float) -> Tuple[np.ndarray, bool]:
    """Project ``update`` onto the L2 ball of radius ``clip_norm``.

    Returns the (possibly scaled) update and whether clipping occurred.
    """
    check_positive("clip_norm", clip_norm)
    update = np.asarray(update, dtype=np.float64)
    norm = float(np.linalg.norm(update))
    if norm <= clip_norm or norm == 0.0:
        return update.copy(), False
    return update * (clip_norm / norm), True


@dataclass
class GaussianMechanism:
    """Clip-and-noise release of one device's update."""

    clip_norm: float
    noise_multiplier: float

    def __post_init__(self) -> None:
        check_positive("clip_norm", self.clip_norm)
        check_positive("noise_multiplier", self.noise_multiplier, strict=False)

    def privatize(
        self, update: np.ndarray, rng: SeedLike = None
    ) -> np.ndarray:
        """Clip then add isotropic Gaussian noise."""
        clipped, _ = clip_update(update, self.clip_norm)
        if self.noise_multiplier == 0.0:
            return clipped
        gen = as_generator(rng)
        sigma = self.noise_multiplier * self.clip_norm
        return clipped + gen.normal(0.0, sigma, size=clipped.shape)

    def epsilon_per_release(self, delta: float) -> float:
        """(eps, delta) of a single release via the Gaussian mechanism.

        ``sigma = noise_multiplier * sensitivity`` gives
        ``eps = sqrt(2 ln(1.25/delta)) / noise_multiplier``.
        """
        if not 0.0 < delta < 1.0:
            raise ConfigurationError(f"delta must be in (0,1), got {delta}")
        if self.noise_multiplier == 0.0:
            return math.inf
        return math.sqrt(2.0 * math.log(1.25 / delta)) / self.noise_multiplier


@dataclass
class PrivacyAccountant:
    """Basic-composition privacy ledger across rounds.

    Basic composition (eps values add) is loose compared to moments /
    RDP accounting but is exact as an upper bound and keeps the library
    dependency-free; treat the reported epsilon as conservative.
    """

    delta: float
    _spent: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise ConfigurationError(f"delta must be in (0,1), got {self.delta}")

    def record_release(self, mechanism: GaussianMechanism) -> float:
        """Charge one release; returns the cumulative epsilon."""
        self._spent.append(mechanism.epsilon_per_release(self.delta))
        return self.total_epsilon

    @property
    def num_releases(self) -> int:
        """Number of charged releases."""
        return len(self._spent)

    @property
    def total_epsilon(self) -> float:
        """Cumulative epsilon under basic composition."""
        return float(sum(self._spent))

    def remaining(self, budget: float) -> float:
        """Epsilon left under ``budget`` (can be negative if exceeded)."""
        return budget - self.total_epsilon


def privatize_round(
    local_models: Sequence[np.ndarray],
    w_global: np.ndarray,
    mechanism: GaussianMechanism,
    *,
    accountant: PrivacyAccountant = None,
    seed: SeedLike = None,
) -> List[np.ndarray]:
    """Apply the mechanism to every device's update in one round.

    Each device gets an independent noise stream; the accountant (if
    given) is charged once per round — all devices release in parallel
    about disjoint data, so parallel composition applies across devices
    and sequential composition across rounds.
    """
    w_global = np.asarray(w_global, dtype=np.float64)
    gen = as_generator(seed)
    out: List[np.ndarray] = []
    for w_local in local_models:
        update = np.asarray(w_local, dtype=np.float64) - w_global
        out.append(w_global + mechanism.privatize(update, gen))
    if accountant is not None:
        accountant.record_release(mechanism)
    return out
