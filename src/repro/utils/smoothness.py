"""Estimation of the smoothness constant ``L`` (Assumption 1, eq. (3)).

The step size of every algorithm in the paper is ``eta = 1/(beta * L)``,
so a usable ``L`` estimate is part of the system.  We provide analytic
values for the convex models (logistic regression, least squares) and a
Hessian-free power-iteration estimator that works for any model exposing
gradients, matching how the paper says ``L`` "can be estimated by
sampling [the] real-world dataset" (Fig. 1 caption).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import ConvergenceError
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_array_2d, check_positive


def least_squares_smoothness(X: np.ndarray) -> float:
    """Smoothness of per-sample squared loss ``f_i(w) = (x_i^T w - y_i)^2 / 2``.

    ``grad^2 f_i = x_i x_i^T`` has largest eigenvalue ``||x_i||^2``; the
    per-sample ``L`` of Assumption 1 is the max over samples.
    """
    X = check_array_2d("X", X)
    if X.shape[0] == 0:
        return 0.0
    return float(np.max(np.einsum("ij,ij->i", X, X)))


def logistic_smoothness(X: np.ndarray, num_classes: int = 2) -> float:
    """Smoothness of per-sample (multinomial) logistic loss.

    For binary logistic regression the Hessian is bounded by
    ``||x_i||^2 / 4``; for the multinomial softmax loss the bound is
    ``||x_i||^2 / 2`` (largest eigenvalue of ``diag(p) - p p^T`` is at
    most ``1/2``).  We use the per-sample maximum, as Assumption 1 is a
    per-sample condition.
    """
    X = check_array_2d("X", X)
    if X.shape[0] == 0:
        return 0.0
    scale = 0.25 if num_classes == 2 else 0.5
    return float(scale * np.max(np.einsum("ij,ij->i", X, X)))


def estimate_smoothness_power_iteration(
    gradient: Callable[[np.ndarray], np.ndarray],
    w0: np.ndarray,
    *,
    num_iterations: int = 30,
    perturbation: float = 1e-4,
    seed: SeedLike = None,
    tol: float = 1e-6,
) -> float:
    """Estimate ``L`` as the top Hessian eigenvalue magnitude at ``w0``.

    Uses power iteration on the Hessian-vector product approximated with
    central finite differences of ``gradient``:

    ``H v ~ (grad(w0 + r v) - grad(w0 - r v)) / (2 r)``.

    This never forms the Hessian, so it scales to CNN-sized parameter
    vectors.  Returns the Rayleigh-quotient magnitude after
    ``num_iterations`` steps or earlier on stagnation.
    """
    check_positive("num_iterations", num_iterations)
    check_positive("perturbation", perturbation)
    w0 = np.asarray(w0, dtype=np.float64)
    rng = as_generator(seed)
    v = rng.standard_normal(w0.size)
    norm = np.linalg.norm(v)
    if norm == 0.0:  # pragma: no cover - measure-zero event
        raise ConvergenceError("power iteration started with a zero vector")
    v /= norm
    eigenvalue = 0.0
    for _ in range(int(num_iterations)):
        hv = (
            gradient(w0 + perturbation * v) - gradient(w0 - perturbation * v)
        ) / (2.0 * perturbation)
        new_eigenvalue = float(np.dot(v, hv))
        hv_norm = np.linalg.norm(hv)
        if hv_norm < 1e-15:
            # Hessian annihilates v (e.g. dead ReLU region): L ~ 0 here.
            return abs(new_eigenvalue)
        v = hv / hv_norm
        if abs(new_eigenvalue - eigenvalue) <= tol * max(1.0, abs(eigenvalue)):
            eigenvalue = new_eigenvalue
            break
        eigenvalue = new_eigenvalue
    return abs(eigenvalue)


def estimate_lower_curvature(
    gradient: Callable[[np.ndarray], np.ndarray],
    w0: np.ndarray,
    *,
    num_probes: int = 16,
    perturbation: float = 1e-4,
    seed: SeedLike = None,
) -> float:
    """Estimate the paper's ``lambda`` (bound on negative curvature).

    Assumption 1 requires ``F_n`` to be ``(-lambda)``-strongly convex:
    curvature is bounded below by ``-lambda``.  We probe random Rayleigh
    quotients of the Hessian and return ``max(0, -min quotient)``; for a
    convex model this is ~0, for a non-convex one it is a useful scale
    for choosing ``mu > lambda``.
    """
    w0 = np.asarray(w0, dtype=np.float64)
    rng = as_generator(seed)
    worst = np.inf
    for _ in range(int(num_probes)):
        v = rng.standard_normal(w0.size)
        v /= np.linalg.norm(v)
        hv = (
            gradient(w0 + perturbation * v) - gradient(w0 - perturbation * v)
        ) / (2.0 * perturbation)
        worst = min(worst, float(np.dot(v, hv)))
    if not np.isfinite(worst):
        return 0.0
    return max(0.0, -worst)


def suggest_step_size(L: float, beta: float) -> float:
    """The paper's parametrized step size ``eta = 1 / (beta * L)``."""
    check_positive("L", L)
    check_positive("beta", beta)
    return 1.0 / (beta * L)
