"""Flat parameter-vector packing.

Every algorithm in :mod:`repro.core` operates on a single flat
``float64`` vector ``w`` (the paper's :math:`w \\in \\mathbb{R}^l`).
Models with structured parameters (weight matrices, conv kernels,
biases) pack and unpack through a :class:`ParameterSpec`, which records
shapes once and then provides allocation-free views where possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import DimensionMismatchError


def flatten_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate a sequence of arrays into one flat float64 vector."""
    if not arrays:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([np.asarray(a, dtype=np.float64).ravel() for a in arrays])


def unflatten_vector(
    vector: np.ndarray, shapes: Sequence[Tuple[int, ...]]
) -> List[np.ndarray]:
    """Split a flat vector back into arrays of the given shapes.

    The returned arrays are *views* into ``vector`` whenever ``vector``
    is contiguous, so in-place mutation of a piece mutates the vector —
    this is deliberate and is what lets layer backward passes write
    gradients straight into a preallocated flat buffer.
    """
    vector = np.asarray(vector)
    sizes = [int(np.prod(s, dtype=np.int64)) for s in shapes]
    total = int(sum(sizes))
    if vector.ndim != 1 or vector.size != total:
        raise DimensionMismatchError(
            f"vector of size {vector.size} cannot be unflattened into "
            f"shapes {list(shapes)} (need {total})"
        )
    pieces: List[np.ndarray] = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        pieces.append(vector[offset : offset + size].reshape(shape))
        offset += size
    return pieces


@dataclass
class ParameterSpec:
    """Shapes and offsets of a model's structured parameters.

    Parameters
    ----------
    shapes:
        Ordered shapes of the structured parameter arrays.
    """

    shapes: List[Tuple[int, ...]]
    offsets: List[int] = field(init=False)
    size: int = field(init=False)

    def __post_init__(self) -> None:
        self.shapes = [tuple(int(d) for d in s) for s in self.shapes]
        sizes = [int(np.prod(s, dtype=np.int64)) for s in self.shapes]
        self.offsets = list(np.concatenate([[0], np.cumsum(sizes)])[:-1].astype(int))
        self.size = int(sum(sizes))

    def flatten(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        """Pack structured arrays into a new flat vector."""
        if len(arrays) != len(self.shapes):
            raise DimensionMismatchError(
                f"expected {len(self.shapes)} arrays, got {len(arrays)}"
            )
        for a, s in zip(arrays, self.shapes):
            if tuple(np.shape(a)) != s:
                raise DimensionMismatchError(
                    f"array of shape {np.shape(a)} does not match spec shape {s}"
                )
        return flatten_arrays(arrays)

    def unflatten(self, vector: np.ndarray) -> List[np.ndarray]:
        """Unpack a flat vector into views shaped per the spec."""
        return unflatten_vector(vector, self.shapes)

    def zeros(self) -> np.ndarray:
        """A fresh zero vector of the right total size."""
        return np.zeros(self.size, dtype=np.float64)

    def piece(self, vector: np.ndarray, index: int) -> np.ndarray:
        """View of the ``index``-th structured piece of ``vector``."""
        if not 0 <= index < len(self.shapes):
            raise IndexError(f"piece index {index} out of range")
        start = self.offsets[index]
        size = int(np.prod(self.shapes[index], dtype=np.int64))
        return np.asarray(vector)[start : start + size].reshape(self.shapes[index])
