"""Shared utilities: RNG management, parameter vectors, timing, checks."""

from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.parameter_vector import (
    ParameterSpec,
    flatten_arrays,
    unflatten_vector,
)
from repro.utils.smoothness import (
    estimate_smoothness_power_iteration,
    logistic_smoothness,
    least_squares_smoothness,
)
from repro.utils.timing import SimulatedClock, WallClockTimer
from repro.utils.validation import (
    check_positive,
    check_probability,
    check_in_range,
    check_array_2d,
    check_same_length,
)

__all__ = [
    "ParameterSpec",
    "SimulatedClock",
    "WallClockTimer",
    "as_generator",
    "check_array_2d",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_same_length",
    "estimate_smoothness_power_iteration",
    "flatten_arrays",
    "least_squares_smoothness",
    "logistic_smoothness",
    "spawn_generators",
    "spawn_seeds",
    "unflatten_vector",
]
