"""Reproducible random-number management.

Federated simulations have many independent stochastic actors (one
sampling stream per client per round, plus data generation, plus
hyperparameter search).  Sharing one :class:`numpy.random.Generator`
across actors makes results depend on client execution order, which
breaks both reproducibility and parallel execution.  We therefore spawn
statistically independent child generators from a single
:class:`numpy.random.SeedSequence`, following NumPy's recommended
parallel-RNG practice.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged so
    callers can thread one stream through a call chain).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, n: int) -> List[np.random.SeedSequence]:
    """Spawn ``n`` independent :class:`SeedSequence` children.

    Child sequences are independent of each other and of any generator
    later created from the parent, so per-client streams do not collide.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's bit stream.  This
        # consumes entropy from ``seed`` which is exactly what callers
        # expect when they pass a live generator.
        entropy = seed.integers(0, 2**63 - 1, size=4)
        parent = np.random.SeedSequence(entropy.tolist())
    elif isinstance(seed, np.random.SeedSequence):
        parent = seed
    else:
        parent = np.random.SeedSequence(seed)
    return list(parent.spawn(n))


def spawn_generators(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` independent generators (see :func:`spawn_seeds`)."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def derive_generator(
    seed: SeedLike, *key: int, streams: Optional[Sequence[int]] = None
) -> np.random.Generator:
    """Derive a generator keyed by a tuple of integers.

    Useful to obtain the *same* stream for (client ``n``, round ``s``)
    regardless of execution order: ``derive_generator(seed, n, s)``.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "derive_generator requires a stable seed (int/SeedSequence), "
            "not a live Generator, so that derivation is order-independent"
        )
    if isinstance(seed, np.random.SeedSequence):
        base_entropy = seed.entropy
    else:
        base_entropy = seed
    spawn_key = tuple(int(k) for k in key) + tuple(streams or ())
    return np.random.default_rng(
        np.random.SeedSequence(entropy=base_entropy, spawn_key=spawn_key)
    )
