"""Clocks: a simulated federated-training clock and a wall-clock timer.

The paper's training-time objective (eq. (19)) is
``T * (d_com + d_cmp * tau)`` — simulated time, not wall time.  The
:class:`SimulatedClock` accumulates per-round delays under the
synchronous-round semantics of Alg. 1 (a round costs the *maximum*
client delay, since the server waits for all devices).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


@dataclass
class SimulatedClock:
    """Accumulates simulated elapsed time across federated rounds."""

    elapsed: float = 0.0
    round_durations: List[float] = field(default_factory=list)

    def advance_round(self, client_delays: Iterable[float], server_delay: float = 0.0) -> float:
        """Advance by one synchronous round.

        The round takes ``max(client delays) + server_delay`` because
        aggregation (Alg. 1 line 12) waits for the slowest device.
        Returns the round duration.
        """
        delays = list(client_delays)
        if any(d < 0 for d in delays) or server_delay < 0:
            raise ValueError("delays must be non-negative")
        duration = (max(delays) if delays else 0.0) + server_delay
        self.elapsed += duration
        self.round_durations.append(duration)
        return duration

    def snapshot(self) -> Tuple[float, int, float]:
        """``(elapsed, num_rounds, last_duration)`` without touching internals.

        Telemetry sinks stamp simulated time through this instead of
        reaching into :attr:`round_durations`; ``last_duration`` is
        ``0.0`` before the first round.
        """
        last = self.round_durations[-1] if self.round_durations else 0.0
        return (self.elapsed, len(self.round_durations), last)

    def reset(self) -> None:
        """Zero the clock and clear history."""
        self.elapsed = 0.0
        self.round_durations.clear()


class WallClockTimer:
    """Context-manager stopwatch with named laps.

    Used by the benchmark harness to attribute wall time to phases
    (data generation, local solves, aggregation) when profiling — per
    the "no optimization without measuring" rule of the domain guides.
    """

    def __init__(self) -> None:
        self.laps: Dict[str, float] = {}
        self._start: float = 0.0
        self._label: str = ""

    def lap(self, label: str) -> "WallClockTimer":
        """Select the lap label for the next ``with`` block."""
        self._label = label
        return self

    def __enter__(self) -> "WallClockTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        label = self._label or "unlabeled"
        self.laps[label] = self.laps.get(label, 0.0) + elapsed
        self._label = ""

    @property
    def total(self) -> float:
        """Sum of all recorded laps in seconds."""
        return sum(self.laps.values())

    def summary(self) -> str:
        """Human-readable per-lap breakdown, longest first."""
        rows = sorted(self.laps.items(), key=lambda kv: -kv[1])
        return "\n".join(f"{label:>24s}: {secs:8.3f}s" for label, secs in rows)
