"""Lightweight argument validation helpers.

These raise :class:`repro.exceptions.ConfigurationError` (a ``ValueError``
subclass) with messages that name the offending argument, so misuse is
caught at the public-API boundary instead of deep inside NumPy.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative)."""
    value = float(value)
    if not np.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value}")
    if strict and value <= 0:
        raise ConfigurationError(f"{name} must be > 0, got {value}")
    if not strict and value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate ``value`` lies in ``[0, 1]``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    inclusive: str = "both",
) -> float:
    """Validate ``value`` lies in an interval.

    ``inclusive`` is one of ``"both"``, ``"left"``, ``"right"``,
    ``"neither"``.
    """
    value = float(value)
    left_ok = value >= low if inclusive in ("both", "left") else value > low
    right_ok = value <= high if inclusive in ("both", "right") else value < high
    if not (left_ok and right_ok):
        brackets = {
            "both": ("[", "]"),
            "left": ("[", ")"),
            "right": ("(", "]"),
            "neither": ("(", ")"),
        }
        lo, hi = brackets[inclusive]
        raise ConfigurationError(
            f"{name} must be in {lo}{low}, {high}{hi}, got {value}"
        )
    return value


def check_positive_int(name: str, value: int, *, minimum: int = 1) -> int:
    """Validate ``value`` is an integer ``>= minimum``."""
    if int(value) != value:
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_array_2d(name: str, array: np.ndarray) -> np.ndarray:
    """Validate ``array`` is a 2-D float array; returns it as float64."""
    array = np.asarray(array, dtype=np.float64)
    if array.ndim != 2:
        raise DimensionMismatchError(
            f"{name} must be 2-D (samples x features), got shape {array.shape}"
        )
    return array


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Validate two sequences have matching leading length."""
    if len(a) != len(b):
        raise DimensionMismatchError(
            f"{name_a} and {name_b} must have equal length: {len(a)} != {len(b)}"
        )


def check_choice(name: str, value: str, choices: Sequence[str]) -> str:
    """Validate ``value`` is one of ``choices``."""
    if value not in choices:
        raise ConfigurationError(
            f"{name} must be one of {sorted(choices)}, got {value!r}"
        )
    return value
