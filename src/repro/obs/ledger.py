"""Append-only, crash-safe run ledger (``repro.ledger/v1``).

The ledger is the durable counterpart of the ``repro.obs/v1`` event
trace: where the trace records *everything that happened* at span
granularity, the ledger records *what the run committed to* — a run
manifest (resolved configuration, RNG entropy, platform, package
digest) followed by one committed record per round, each carrying a
monotonically increasing cursor and flushed+fsynced before the next
round starts.  A process crash therefore loses at most the round in
flight; the reader tolerates a torn final line and reports the last
committed cursor, which is exactly the resume point the
checkpoint/resume control plane (ROADMAP item 4) needs.

Event types (one JSON object per line):

``manifest``
    first line of every ledger: schema tag, run id, resolved config,
    RNG entropy, platform triple, package digest.
``round``
    one committed round: ``cursor``, ``round``, ``evaluated``,
    ``record`` (the round's metric payload), ``sim_time``.
``alert``
    a structured monitor alert (see :mod:`repro.obs.monitors`).
``hotspots``
    a span self-time snapshot (perfbench drill-downs).
``end``
    final line on clean shutdown: totals + run status.

Every event after the manifest carries the shared monotonic ``cursor``.
The module is stdlib-only and sits at layer 0 of the layering DAG, like
the rest of ``repro.obs``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, TextIO

__all__ = [
    "LEDGER_SCHEMA",
    "LedgerError",
    "LedgerReader",
    "RunLedger",
    "package_digest",
]

#: schema tag stamped into every ledger's manifest
LEDGER_SCHEMA = "repro.ledger/v1"

#: event types every ``repro.ledger/v1`` consumer must understand
EVENT_TYPES = ("manifest", "round", "alert", "hotspots", "end")


class LedgerError(ValueError):
    """A ledger file violates the ``repro.ledger/v1`` contract."""


_digest_cache: Dict[str, str] = {}


def package_digest() -> str:
    """SHA-256 digest over the installed ``repro`` package sources.

    Folds every ``*.py`` file under the package root (sorted by relative
    path) into one hex digest, so two ledgers written by byte-identical
    code carry the same value — the cheap provenance check for
    cross-run diffs.  Cached per process.
    """
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    cached = _digest_cache.get(root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            path = os.path.join(dirpath, name)
            digest.update(os.path.relpath(path, root).encode("utf-8"))
            with open(path, "rb") as fh:
                digest.update(fh.read())
    value = digest.hexdigest()
    _digest_cache[root] = value
    return value


class RunLedger:
    """Writer: append committed events to a JSONL ledger file.

    ``commit_round`` (and every alert) is flushed and ``fsync``-ed
    before returning, so the file on disk always ends on a committed
    event boundary — the crash-safety contract the reader relies on.
    Thread-safe: monitors may append alerts from sink callbacks while
    the server commits rounds.
    """

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self.path = path
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        self._fh: Optional[TextIO] = open(path, "w", encoding="utf-8")
        self._cursor = -1
        self._rounds = 0
        self._alerts = 0
        self._manifest_written = False
        self._closed = False
        self.run_id = hashlib.sha256(os.urandom(16)).hexdigest()[:12]

    # -- writing ------------------------------------------------------

    def write_manifest(
        self,
        config: Dict[str, Any],
        *,
        entropy: Optional[Dict[str, Any]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """First event: schema + resolved config + provenance."""
        event: Dict[str, Any] = {
            "type": "manifest",
            "schema": LEDGER_SCHEMA,
            "run_id": self.run_id,
            "created_unix": time.time(),
            "config": dict(config),
            "entropy": dict(entropy or {}),
            "platform": {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "machine": platform.machine(),
                "system": platform.system(),
            },
            "packages": {
                "repro_source_sha256": package_digest(),
                "argv0": os.path.basename(sys.argv[0]) if sys.argv else "",
            },
        }
        if attrs:
            event["attrs"] = dict(attrs)
        with self._lock:
            if self._manifest_written:
                raise LedgerError("manifest already written")
            self._manifest_written = True
            self._write(event, durable=True)

    def commit_round(
        self,
        round_index: int,
        record: Dict[str, Any],
        *,
        evaluated: bool = True,
        sim_time: Optional[float] = None,
    ) -> int:
        """Durably commit one round's record; returns its cursor."""
        with self._lock:
            self._cursor += 1
            self._rounds += 1
            event = {
                "type": "round",
                "cursor": self._cursor,
                "round": int(round_index),
                "evaluated": bool(evaluated),
                "sim_time": sim_time,
                "record": dict(record),
            }
            self._write(event, durable=True)
            return self._cursor

    def alert(
        self,
        round_index: int,
        monitor: str,
        message: str,
        *,
        severity: str = "error",
        evidence: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Append one structured monitor alert (durably)."""
        with self._lock:
            self._cursor += 1
            self._alerts += 1
            event = {
                "type": "alert",
                "cursor": self._cursor,
                "round": int(round_index),
                "monitor": str(monitor),
                "severity": str(severity),
                "message": str(message),
                "evidence": dict(evidence or {}),
            }
            self._write(event, durable=True)
            return self._cursor

    def hotspots(self, spans: List[Dict[str, Any]], *, label: str = "") -> int:
        """Append a span self-time snapshot (perfbench drill-down)."""
        with self._lock:
            self._cursor += 1
            event = {
                "type": "hotspots",
                "cursor": self._cursor,
                "label": label,
                "spans": [dict(s) for s in spans],
            }
            self._write(event, durable=False)
            return self._cursor

    def close(self, status: str = "completed") -> None:
        """Write the ``end`` event and close the file (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._cursor += 1
            self._write(
                {
                    "type": "end",
                    "cursor": self._cursor,
                    "rounds": self._rounds,
                    "alerts": self._alerts,
                    "status": str(status),
                },
                durable=True,
            )
            assert self._fh is not None
            self._fh.close()
            self._fh = None

    # -- internals ----------------------------------------------------

    def _write(self, event: Dict[str, Any], *, durable: bool) -> None:
        if self._fh is None:
            raise LedgerError(f"RunLedger({self.path!r}) already closed")
        self._fh.write(json.dumps(event, default=float,
                                  separators=(",", ":")) + "\n")
        if durable:
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())

    @property
    def cursor(self) -> int:
        """Cursor of the last committed event (-1 before the first)."""
        return self._cursor

    @property
    def alert_count(self) -> int:
        return self._alerts

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(status="completed" if exc_type is None else "failed")


class LedgerReader:
    """Reader: validate a ledger, tail it, resume from any cursor.

    A torn final line (the crash case: the process died mid-write) is
    dropped and surfaced via :attr:`truncated`; a malformed line
    *before* the end is real corruption and raises :class:`LedgerError`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.events: List[Dict[str, Any]] = []
        self.truncated = False
        self._load()

    def _load(self) -> None:
        raw_lines: List[str] = []
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    raw_lines.append(line)
        for i, line in enumerate(raw_lines):
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                if i == len(raw_lines) - 1:
                    # Torn final line: the write in flight when the
                    # process died.  Everything before it committed.
                    self.truncated = True
                    break
                raise LedgerError(
                    f"{self.path}:{i + 1}: corrupt mid-file line: {exc}"
                ) from exc
            if not isinstance(event, dict):
                raise LedgerError(f"{self.path}:{i + 1}: event is not an object")
            self.events.append(event)

    # -- validation ---------------------------------------------------

    def validate(self) -> List[str]:
        """All ``repro.ledger/v1`` contract violations (empty = valid)."""
        errors: List[str] = []
        if not self.events:
            return [f"{self.path}: ledger contains no events"]
        first = self.events[0]
        if first.get("type") != "manifest":
            errors.append(f"{self.path}: first event must be 'manifest'")
        elif first.get("schema") != LEDGER_SCHEMA:
            errors.append(
                f"{self.path}: manifest schema is {first.get('schema')!r}, "
                f"expected {LEDGER_SCHEMA!r}"
            )
        prev_cursor = -1
        prev_round = 0
        for i, event in enumerate(self.events):
            where = f"{self.path}: event {i}"
            etype = event.get("type")
            if etype not in EVENT_TYPES:
                errors.append(f"{where}: unknown event type {etype!r}")
                continue
            if etype == "manifest":
                if i != 0:
                    errors.append(f"{where}: manifest must be the first event")
                continue
            cursor = event.get("cursor")
            if not isinstance(cursor, int):
                errors.append(f"{where}: {etype} event missing integer cursor")
            elif cursor <= prev_cursor:
                errors.append(
                    f"{where}: cursor {cursor} not monotonic "
                    f"(previous {prev_cursor})"
                )
            else:
                prev_cursor = cursor
            if etype == "round":
                rnd = event.get("round")
                if not isinstance(rnd, int) or rnd < prev_round:
                    errors.append(
                        f"{where}: round index {rnd!r} must be a "
                        f"non-decreasing integer (previous {prev_round})"
                    )
                else:
                    prev_round = rnd
                if not isinstance(event.get("record"), dict):
                    errors.append(f"{where}: round event missing 'record'")
            if etype == "alert":
                for field in ("monitor", "severity", "message"):
                    if not isinstance(event.get(field), str):
                        errors.append(
                            f"{where}: alert event missing string {field!r}"
                        )
            if etype == "end" and i != len(self.events) - 1:
                errors.append(f"{where}: end event must be the last event")
        return errors

    # -- queries ------------------------------------------------------

    @property
    def manifest(self) -> Optional[Dict[str, Any]]:
        if self.events and self.events[0].get("type") == "manifest":
            return self.events[0]
        return None

    def by_type(self, event_type: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e.get("type") == event_type]

    def rounds(self) -> List[Dict[str, Any]]:
        return self.by_type("round")

    def alerts(self) -> List[Dict[str, Any]]:
        return self.by_type("alert")

    @property
    def last_cursor(self) -> int:
        """Largest committed cursor (-1 for a manifest-only ledger)."""
        cursors = [
            e["cursor"] for e in self.events
            if isinstance(e.get("cursor"), int)
        ]
        return max(cursors) if cursors else -1

    @property
    def last_committed_round(self) -> Optional[int]:
        rounds = self.rounds()
        return rounds[-1]["round"] if rounds else None

    @property
    def status(self) -> Optional[str]:
        ends = self.by_type("end")
        return ends[-1].get("status") if ends else None

    def tail(self, from_cursor: int = 0) -> Iterator[Dict[str, Any]]:
        """Events at or after ``from_cursor`` (manifest excluded)."""
        for event in self.events:
            cursor = event.get("cursor")
            if isinstance(cursor, int) and cursor >= from_cursor:
                yield event

    def resume_point(self) -> Dict[str, Any]:
        """Where a resumed run would pick up: last committed cursor/round.

        ``next_round`` is the first round index whose record is *not*
        on disk — the round a checkpoint/resume control plane replays.
        """
        last_round = self.last_committed_round
        return {
            "cursor": self.last_cursor,
            "round": last_round,
            "next_round": 1 if last_round is None else last_round + 1,
            "truncated": self.truncated,
            "status": self.status,
        }
