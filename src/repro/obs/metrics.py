"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Metric identity is ``(name, key)`` where ``key`` is an optional
free-form sub-label (client id, layer name, ...).  The registry is
thread-safe — executors record from pool threads — and supports
snapshot/delta so the telemetry facade can aggregate both per round
(delta between round boundaries) and per run (final snapshot).

Conventions for names follow a dotted hierarchy::

    fl.client.local_steps        counter  (per-solve inner steps)
    fl.client.grad_evals         counter  (per-solve gradient evaluations)
    fl.client.achieved_theta     gauge    (empirical local accuracy)
    fl.round.straggler_gap       histogram (max - median client seconds)
    nn.layer.forward_seconds     histogram (per-layer, profiling only)
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: geometric seconds buckets, 10 µs .. 100 s — wide enough for both a
#: single layer forward and a full local solve.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


class Counter:
    """Monotonically increasing total."""

    kind = "counter"
    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = 0.0

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        self.total += value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "total": self.total}


class Gauge:
    """Last-write value plus running min/max/sum/count."""

    kind = "gauge"
    __slots__ = ("last", "min", "max", "sum", "count")

    def __init__(self) -> None:
        self.last = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.sum = 0.0
        self.count = 0

    def set(self, value: float) -> None:
        self.last = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.sum += value
        self.count += 1

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "last": self.last,
                               "count": self.count, "sum": self.sum}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.sum / self.count
        return out


class Histogram:
    """Fixed-bucket histogram (cumulative-style upper bounds).

    ``counts[i]`` counts observations ``<= buckets[i]``; one overflow
    slot at the end counts the rest.  Also tracks sum/count/min/max so
    means survive even when every sample lands in one bucket.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        b = tuple(float(x) for x in buckets)
        if not b or list(b) != sorted(b):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.buckets = b
        self.counts = [0] * (len(b) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        i = 0
        for bound in self.buckets:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.sum / self.count
        return out


def _metric_id(name: str, key: Optional[str]) -> str:
    return name if key is None else f"{name}{{{key}}}"


class MetricsRegistry:
    """Thread-safe store of named metrics with snapshot/delta support."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def counter_add(
        self, name: str, value: float = 1.0, *, key: Optional[str] = None
    ) -> None:
        mid = _metric_id(name, key)
        with self._lock:
            metric = self._metrics.get(mid)
            if metric is None:
                metric = self._metrics[mid] = Counter()
            metric.add(value)

    def gauge_set(
        self, name: str, value: float, *, key: Optional[str] = None
    ) -> None:
        mid = _metric_id(name, key)
        with self._lock:
            metric = self._metrics.get(mid)
            if metric is None:
                metric = self._metrics[mid] = Gauge()
            metric.set(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        key: Optional[str] = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        mid = _metric_id(name, key)
        with self._lock:
            metric = self._metrics.get(mid)
            if metric is None:
                metric = self._metrics[mid] = Histogram(buckets)
            metric.observe(value)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time copy of every metric, keyed by metric id."""
        with self._lock:
            return {mid: m.snapshot() for mid, m in sorted(self._metrics.items())}

    @staticmethod
    def delta(
        new: Dict[str, Dict[str, Any]], old: Dict[str, Dict[str, Any]]
    ) -> Dict[str, Dict[str, Any]]:
        """Per-interval view between two snapshots.

        Counters and histogram count/sum are differenced; gauges pass
        through at their ``new`` value (a gauge is a level, not a flow).
        Metrics absent from ``old`` are treated as starting at zero.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for mid, snap in new.items():
            prev = old.get(mid)
            kind = snap["kind"]
            if kind == "counter":
                base = prev["total"] if prev else 0.0
                d = snap["total"] - base
                if d != 0.0:
                    out[mid] = {"kind": kind, "total": d}
            elif kind == "histogram":
                base_count = prev["count"] if prev else 0
                base_sum = prev["sum"] if prev else 0.0
                d_count = snap["count"] - base_count
                if d_count:
                    entry: Dict[str, Any] = {
                        "kind": kind,
                        "count": d_count,
                        "sum": snap["sum"] - base_sum,
                    }
                    entry["mean"] = entry["sum"] / d_count
                    if prev:
                        entry["counts"] = [
                            n - o for n, o in zip(snap["counts"], prev["counts"])
                        ]
                    else:
                        entry["counts"] = list(snap["counts"])
                    entry["buckets"] = list(snap["buckets"])
                    out[mid] = entry
            else:  # gauge: report the current level if it moved at all
                if prev is None or snap != prev:
                    out[mid] = dict(snap)
        return out

    def to_rows(
        self, snap: Optional[Dict[str, Dict[str, Any]]] = None
    ) -> List[Dict[str, Any]]:
        """Flatten a snapshot into CSV-friendly rows.

        Columns: ``metric, kind, value, count, sum, min, max, mean``
        where ``value`` is the headline number (counter total, gauge
        last, histogram mean).
        """
        snap = self.snapshot() if snap is None else snap
        rows: List[Dict[str, Any]] = []
        for mid, m in snap.items():
            kind = m["kind"]
            if kind == "counter":
                headline = m["total"]
            elif kind == "gauge":
                headline = m["last"] if "last" in m else m.get("mean", 0.0)
            else:
                headline = m.get("mean", 0.0)
            rows.append(
                {
                    "metric": mid,
                    "kind": kind,
                    "value": headline,
                    "count": m.get("count", ""),
                    "sum": m.get("sum", ""),
                    "min": m.get("min", ""),
                    "max": m.get("max", ""),
                    "mean": m.get("mean", ""),
                }
            )
        return rows

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
