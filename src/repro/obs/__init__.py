"""repro.obs — structured tracing, metrics, and profiling hooks.

Zero-dependency (stdlib-only) observability for the federated stack.
The package sits at the bottom of the layering DAG beside
``repro.utils``: everything above (``core``, ``fl``, ``nn``, the CLI)
may import it, it imports nothing from ``repro``.

Entry points
------------
:data:`telemetry`
    process-global facade; disabled by default (no-op hot paths).
:func:`Telemetry.configure` / :func:`Telemetry.shutdown`
    start/stop a telemetry session with a list of sinks.
Sinks
    :class:`InMemorySink`, :class:`JsonlSink`, :class:`CsvMetricsSink`,
    :class:`StderrReporter`.
Reporting
    :func:`repro.obs.report.render_report` renders a span-tree +
    hotspot summary from a JSONL trace (``repro obs-report``).
"""

from repro.obs.facade import SCHEMA, Telemetry, telemetry
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import (
    CsvMetricsSink,
    InMemorySink,
    JsonlSink,
    Sink,
    StderrReporter,
)
from repro.obs.trace import NOOP_SPAN, NoopSpan, Span, Tracer

__all__ = [
    "CsvMetricsSink",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "MetricsRegistry",
    "NOOP_SPAN",
    "NoopSpan",
    "SCHEMA",
    "Sink",
    "Span",
    "StderrReporter",
    "Telemetry",
    "Tracer",
    "telemetry",
]
