"""repro.obs — structured tracing, metrics, and profiling hooks.

Zero-dependency (stdlib-only) observability for the federated stack.
The package sits at the bottom of the layering DAG beside
``repro.utils``: everything above (``core``, ``fl``, ``nn``, the CLI)
may import it, it imports nothing from ``repro``.

Entry points
------------
:data:`telemetry`
    process-global facade; disabled by default (no-op hot paths).
:func:`Telemetry.configure` / :func:`Telemetry.shutdown`
    start/stop a telemetry session with a list of sinks.
Sinks
    :class:`InMemorySink`, :class:`JsonlSink`, :class:`CsvMetricsSink`,
    :class:`StderrReporter`.
Reporting
    :func:`repro.obs.report.render_report` renders a span-tree +
    hotspot summary from a JSONL trace (``repro obs-report``).
Run ledger (v2)
    :class:`RunLedger` / :class:`LedgerReader` — append-only,
    crash-safe ``repro.ledger/v1`` JSONL with monotonic cursors.
Runtime monitors (v2)
    :class:`MonitorSuite` and the detectors behind
    :func:`default_monitor_suite` (Theorem-1 contraction, θ drift,
    σ̄² drift, divergence, straggler anomalies).
Cross-run analytics (v2)
    :func:`repro.obs.diff.diff_ledgers` /
    :func:`repro.obs.diff.render_diff` (``repro obs-diff``).
"""

from repro.obs.diff import diff_ledgers, render_diff
from repro.obs.facade import SCHEMA, Telemetry, telemetry
from repro.obs.ledger import LEDGER_SCHEMA, LedgerError, LedgerReader, RunLedger
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import (
    CsvMetricsSink,
    InMemorySink,
    JsonlSink,
    Sink,
    StderrReporter,
)
from repro.obs.monitors import (
    Alert,
    MonitorFailFast,
    MonitorSuite,
    RoundObservation,
    default_monitor_suite,
)
from repro.obs.trace import NOOP_SPAN, NoopSpan, Span, Tracer

__all__ = [
    "Alert",
    "CsvMetricsSink",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "LEDGER_SCHEMA",
    "LedgerError",
    "LedgerReader",
    "MetricsRegistry",
    "MonitorFailFast",
    "MonitorSuite",
    "NOOP_SPAN",
    "NoopSpan",
    "RoundObservation",
    "RunLedger",
    "SCHEMA",
    "Sink",
    "Span",
    "StderrReporter",
    "Telemetry",
    "Tracer",
    "default_monitor_suite",
    "diff_ledgers",
    "render_diff",
    "telemetry",
]
