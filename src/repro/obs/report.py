"""Render a span-tree / hotspot report from a JSONL trace.

``repro obs-report trace.jsonl`` uses :func:`render_report`.  Spans are
aggregated by *name path* (``run > round > local_solve``), so a
10-round, 20-client trace renders as a handful of tree rows with counts
and total/mean durations instead of hundreds of raw spans.  Hotspots
rank span names by **self time** (duration minus direct children), the
number that actually says where wall time went.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["render_ledger_report", "render_report"]


def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file (raises ``ValueError`` on a bad line)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(obj, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            events.append(obj)
    return events


def _span_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [e for e in events if e.get("type") == "span"]


#: composite key: span ids are only unique *within* a process (forked
#: workers inherit the parent's id counter), so all id-based lookups key
#: by ``(process, span_id)``; the coordinating process has ``process == ""``
SpanKey = Tuple[str, Optional[int]]


def _span_key(span: Dict[str, Any]) -> SpanKey:
    return (span.get("process", "") or "", span.get("span_id"))


def _parent_key(
    span: Dict[str, Any], by_id: Dict[SpanKey, Dict[str, Any]]
) -> Optional[SpanKey]:
    """Resolve a span's parent key, cross-process aware.

    A worker-process span's ``parent_id`` usually names a span in the
    coordinating process (explicit serialized-context parenting), so if
    the id is unknown within the child's own process, fall back to the
    coordinator's (``""``) namespace.
    """
    parent_id = span.get("parent_id")
    if parent_id is None:
        return None
    own = (span.get("process", "") or "", parent_id)
    # A span is never its own parent: a worker whose *local* id happens
    # to equal the coordinator parent's id must not resolve to itself.
    if own in by_id and own != _span_key(span):
        return own
    home = ("", parent_id)
    if home in by_id and home != _span_key(span):
        return home
    return None


def _name_path(
    span: Dict[str, Any], by_id: Dict[SpanKey, Dict[str, Any]]
) -> Tuple[str, ...]:
    """Ancestor name chain root-first, e.g. ``("run", "round", "eval")``."""
    path = [span.get("name", "?")]
    seen = {_span_key(span)}
    parent_key = _parent_key(span, by_id)
    while parent_key is not None and parent_key not in seen:
        seen.add(parent_key)
        parent = by_id[parent_key]
        path.append(parent.get("name", "?"))
        parent_key = _parent_key(parent, by_id)
    return tuple(reversed(path))


def aggregate_tree(
    events: Iterable[Dict[str, Any]],
) -> Dict[Tuple[str, ...], Dict[str, float]]:
    """Aggregate span events by name path.

    Returns ``{path: {"count": n, "total": secs, "max": secs}}`` sorted
    by path (so parents precede children when rendered in order).
    """
    spans = _span_events(events)
    by_id = {_span_key(s): s for s in spans}
    agg: Dict[Tuple[str, ...], Dict[str, float]] = {}
    for span in spans:
        path = _name_path(span, by_id)
        node = agg.setdefault(path, {"count": 0, "total": 0.0, "max": 0.0})
        dur = float(span.get("duration", 0.0))
        node["count"] += 1
        node["total"] += dur
        if dur > node["max"]:
            node["max"] = dur
    return dict(sorted(agg.items()))


def top_hotspots(
    events: Iterable[Dict[str, Any]], k: int = 10
) -> List[Dict[str, Any]]:
    """Span names ranked by total self time (duration − direct children).

    Aggregation is by span *name* across every process and thread in
    the trace — ids only serve to subtract direct-child time, keyed per
    process so an mp-executor trace (where worker spans parent into the
    coordinator's round span) still reports coherent hotspots.
    """
    spans = _span_events(events)
    by_id = {_span_key(s): s for s in spans}
    child_time: Dict[SpanKey, float] = {}
    for span in spans:
        parent_key = _parent_key(span, by_id)
        if parent_key is not None:
            child_time[parent_key] = child_time.get(parent_key, 0.0) + float(
                span.get("duration", 0.0)
            )
    self_time: Dict[str, Dict[str, float]] = {}
    for span in spans:
        dur = float(span.get("duration", 0.0))
        own = max(0.0, dur - child_time.get(_span_key(span), 0.0))
        node = self_time.setdefault(
            span.get("name", "?"), {"count": 0, "self": 0.0, "total": 0.0}
        )
        node["count"] += 1
        node["self"] += own
        node["total"] += dur
    ranked = sorted(self_time.items(), key=lambda kv: -kv[1]["self"])
    return [
        {"name": name, **stats} for name, stats in ranked[: max(0, int(k))]
    ]


def render_span_tree(events: Iterable[Dict[str, Any]]) -> str:
    """The aggregated tree as indented text."""
    agg = aggregate_tree(events)
    if not agg:
        return "(no span events)"
    lines = [f"{'count':>7s} {'total':>10s} {'mean':>10s} {'max':>10s}  span"]
    for path, node in agg.items():
        mean = node["total"] / node["count"] if node["count"] else 0.0
        indent = "  " * (len(path) - 1)
        lines.append(
            f"{int(node['count']):7d} {node['total']:9.4f}s {mean:9.4f}s "
            f"{node['max']:9.4f}s  {indent}{path[-1]}"
        )
    return "\n".join(lines)


def render_hotspots(events: Iterable[Dict[str, Any]], k: int = 10) -> str:
    """The top-k hotspot table as text."""
    rows = top_hotspots(events, k)
    if not rows:
        return "(no span events)"
    lines = [f"{'self':>10s} {'total':>10s} {'count':>7s}  span"]
    for row in rows:
        lines.append(
            f"{row['self']:9.4f}s {row['total']:9.4f}s "
            f"{int(row['count']):7d}  {row['name']}"
        )
    return "\n".join(lines)


def render_ledger_report(path: str, *, top: int = 10) -> str:
    """Full ``obs-report --ledger`` output for one ``repro.ledger/v1`` file."""
    from repro.obs.ledger import LedgerReader

    reader = LedgerReader(path)
    errors = reader.validate()
    manifest = reader.manifest or {}
    rounds = reader.rounds()
    alerts = reader.alerts()
    lines: List[str] = [
        f"ledger: {path}",
        f"schema: {manifest.get('schema', '(no manifest)')}  "
        f"run: {manifest.get('run_id', '?')}  "
        f"status: {reader.status or '(no end event; crashed?)'}",
    ]
    if errors:
        lines.append("VALIDATION ERRORS:")
        lines.extend(f"  {e}" for e in errors)
    config = manifest.get("config", {})
    if config:
        rendered = ", ".join(f"{k}={config[k]!r}" for k in sorted(config))
        lines.append(f"config: {rendered}")
    resume = reader.resume_point()
    lines.append(
        f"rounds committed: {len(rounds)}  last cursor: {resume['cursor']}  "
        f"next round on resume: {resume['next_round']}"
        + ("  [torn final line dropped]" if resume["truncated"] else "")
    )
    if rounds:
        fields = ["train_loss", "grad_norm", "test_accuracy",
                  "mean_achieved_theta", "grad_dissimilarity"]
        lines.append(
            f"  {'round':>6} " + " ".join(f"{f:>18}" for f in fields)
        )
        for event in rounds:
            record = event.get("record", {})
            cells = []
            for field in fields:
                value = record.get(field)
                cells.append(
                    f"{value:>18.6g}" if isinstance(value, (int, float))
                    else f"{'-':>18}"
                )
            lines.append(f"  {event['round']:>6} " + " ".join(cells))
    lines.append(f"alerts: {len(alerts)}")
    for alert in alerts:
        lines.append(
            f"  round {alert.get('round')}: [{alert.get('severity')}] "
            f"{alert.get('monitor')}: {alert.get('message')}"
        )
    snapshots = reader.by_type("hotspots")
    if snapshots:
        spans = sorted(
            snapshots[-1].get("spans", []),
            key=lambda s: -float(s.get("self_seconds", 0.0)),
        )[: max(0, int(top))]
        lines.append("hotspots (last snapshot, self time):")
        for span in spans:
            lines.append(
                f"  {float(span.get('self_seconds', 0.0)):9.4f}s  "
                f"{span.get('name', '?')}"
            )
    return "\n".join(lines) + "\n"


def render_report(path: str, *, top: int = 10) -> str:
    """Full ``obs-report`` output for one JSONL trace file."""
    events = load_events(path)
    spans = _span_events(events)
    meta = next((e for e in events if e.get("type") == "meta"), None)
    rounds = [e for e in events if e.get("type") == "round_metrics"]
    header = [
        f"trace: {path}",
        f"schema: {meta.get('schema') if meta else '(no meta event)'}",
        f"events: {len(list(events))} ({len(spans)} spans, "
        f"{len(rounds)} round-metric records)",
    ]
    sim_times = [e["sim_time"] for e in spans if e.get("sim_time") is not None]
    if sim_times:
        header.append(f"final simulated time: {max(sim_times):.4f}")
    sections = [
        "\n".join(header),
        "span tree\n---------\n" + render_span_tree(events),
        f"top-{top} hotspots (self time)\n-----------------------------\n"
        + render_hotspots(events, top),
    ]
    return "\n\n".join(sections) + "\n"
