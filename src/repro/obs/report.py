"""Render a span-tree / hotspot report from a JSONL trace.

``repro obs-report trace.jsonl`` uses :func:`render_report`.  Spans are
aggregated by *name path* (``run > round > local_solve``), so a
10-round, 20-client trace renders as a handful of tree rows with counts
and total/mean durations instead of hundreds of raw spans.  Hotspots
rank span names by **self time** (duration minus direct children), the
number that actually says where wall time went.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["render_report"]


def load_events(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file (raises ``ValueError`` on a bad line)."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON: {exc}") from exc
            if not isinstance(obj, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            events.append(obj)
    return events


def _span_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [e for e in events if e.get("type") == "span"]


def _name_path(span: Dict[str, Any], by_id: Dict[int, Dict[str, Any]]) -> Tuple[str, ...]:
    """Ancestor name chain root-first, e.g. ``("run", "round", "eval")``."""
    path = [span.get("name", "?")]
    seen = {span.get("span_id")}
    parent_id = span.get("parent_id")
    while parent_id is not None and parent_id in by_id and parent_id not in seen:
        seen.add(parent_id)
        parent = by_id[parent_id]
        path.append(parent.get("name", "?"))
        parent_id = parent.get("parent_id")
    return tuple(reversed(path))


def aggregate_tree(
    events: Iterable[Dict[str, Any]],
) -> Dict[Tuple[str, ...], Dict[str, float]]:
    """Aggregate span events by name path.

    Returns ``{path: {"count": n, "total": secs, "max": secs}}`` sorted
    by path (so parents precede children when rendered in order).
    """
    spans = _span_events(events)
    by_id = {s.get("span_id"): s for s in spans}
    agg: Dict[Tuple[str, ...], Dict[str, float]] = {}
    for span in spans:
        path = _name_path(span, by_id)
        node = agg.setdefault(path, {"count": 0, "total": 0.0, "max": 0.0})
        dur = float(span.get("duration", 0.0))
        node["count"] += 1
        node["total"] += dur
        if dur > node["max"]:
            node["max"] = dur
    return dict(sorted(agg.items()))


def top_hotspots(
    events: Iterable[Dict[str, Any]], k: int = 10
) -> List[Dict[str, Any]]:
    """Span names ranked by total self time (duration − direct children)."""
    spans = _span_events(events)
    child_time: Dict[Optional[int], float] = {}
    for span in spans:
        parent_id = span.get("parent_id")
        if parent_id is not None:
            child_time[parent_id] = child_time.get(parent_id, 0.0) + float(
                span.get("duration", 0.0)
            )
    self_time: Dict[str, Dict[str, float]] = {}
    for span in spans:
        dur = float(span.get("duration", 0.0))
        own = max(0.0, dur - child_time.get(span.get("span_id"), 0.0))
        node = self_time.setdefault(
            span.get("name", "?"), {"count": 0, "self": 0.0, "total": 0.0}
        )
        node["count"] += 1
        node["self"] += own
        node["total"] += dur
    ranked = sorted(self_time.items(), key=lambda kv: -kv[1]["self"])
    return [
        {"name": name, **stats} for name, stats in ranked[: max(0, int(k))]
    ]


def render_span_tree(events: Iterable[Dict[str, Any]]) -> str:
    """The aggregated tree as indented text."""
    agg = aggregate_tree(events)
    if not agg:
        return "(no span events)"
    lines = [f"{'count':>7s} {'total':>10s} {'mean':>10s} {'max':>10s}  span"]
    for path, node in agg.items():
        mean = node["total"] / node["count"] if node["count"] else 0.0
        indent = "  " * (len(path) - 1)
        lines.append(
            f"{int(node['count']):7d} {node['total']:9.4f}s {mean:9.4f}s "
            f"{node['max']:9.4f}s  {indent}{path[-1]}"
        )
    return "\n".join(lines)


def render_hotspots(events: Iterable[Dict[str, Any]], k: int = 10) -> str:
    """The top-k hotspot table as text."""
    rows = top_hotspots(events, k)
    if not rows:
        return "(no span events)"
    lines = [f"{'self':>10s} {'total':>10s} {'count':>7s}  span"]
    for row in rows:
        lines.append(
            f"{row['self']:9.4f}s {row['total']:9.4f}s "
            f"{int(row['count']):7d}  {row['name']}"
        )
    return "\n".join(lines)


def render_report(path: str, *, top: int = 10) -> str:
    """Full ``obs-report`` output for one JSONL trace file."""
    events = load_events(path)
    spans = _span_events(events)
    meta = next((e for e in events if e.get("type") == "meta"), None)
    rounds = [e for e in events if e.get("type") == "round_metrics"]
    header = [
        f"trace: {path}",
        f"schema: {meta.get('schema') if meta else '(no meta event)'}",
        f"events: {len(list(events))} ({len(spans)} spans, "
        f"{len(rounds)} round-metric records)",
    ]
    sim_times = [e["sim_time"] for e in spans if e.get("sim_time") is not None]
    if sim_times:
        header.append(f"final simulated time: {max(sim_times):.4f}")
    sections = [
        "\n".join(header),
        "span tree\n---------\n" + render_span_tree(events),
        f"top-{top} hotspots (self time)\n-----------------------------\n"
        + render_hotspots(events, top),
    ]
    return "\n\n".join(sections) + "\n"
