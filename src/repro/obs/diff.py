"""Cross-run ledger analytics: align, diff, and judge two runs.

Consumes two ``repro.ledger/v1`` files (see :mod:`repro.obs.ledger`),
aligns their committed rounds by round index, and reports:

* **provenance** — config keys that differ and whether the two runs
  were produced by the same ``repro`` source digest;
* **metric series** — per-field mean/final deltas over the shared
  rounds (train loss, gradient norm, accuracy, θ̂, Γ̂, …);
* **hotspots** — span self-time deltas from each ledger's ``hotspots``
  snapshot, with a noise-aware relative threshold so timer jitter on
  sub-millisecond spans never reads as a regression;
* a one-word **verdict** (``ok`` / ``regression``) driven by the
  time-like fields only — statistical fields drift with the seed and
  are reported, not judged.

Stdlib-only, layer 0, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.ledger import LedgerReader

__all__ = ["diff_ledgers", "render_diff"]

#: record fields judged for the regression verdict (bigger = worse)
TIME_FIELDS = ("wall_time",)

#: absolute floor (seconds) below which span self-time deltas are noise
HOTSPOT_NOISE_FLOOR = 5e-3


def _numeric_fields(rounds: List[Dict[str, Any]]) -> List[str]:
    fields: List[str] = []
    for event in rounds:
        for key, value in event.get("record", {}).items():
            if isinstance(value, (int, float)) and key not in fields:
                fields.append(key)
    return fields


def _series(
    rounds: List[Dict[str, Any]], field: str
) -> Dict[int, float]:
    out: Dict[int, float] = {}
    for event in rounds:
        value = event.get("record", {}).get(field)
        if isinstance(value, (int, float)) and math.isfinite(value):
            out[event["round"]] = float(value)
    return out


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _rel_delta(a: float, b: float) -> float:
    denominator = max(abs(a), 1e-12)
    return (b - a) / denominator


def _hotspot_table(reader: LedgerReader) -> Dict[str, float]:
    """name -> self seconds, from the ledger's last hotspots snapshot."""
    snapshots = reader.by_type("hotspots")
    if not snapshots:
        return {}
    table: Dict[str, float] = {}
    for span in snapshots[-1].get("spans", []):
        name = span.get("name")
        seconds = span.get("self_seconds")
        if isinstance(name, str) and isinstance(seconds, (int, float)):
            table[name] = table.get(name, 0.0) + float(seconds)
    return table


def diff_ledgers(
    path_a: str,
    path_b: str,
    *,
    rel_threshold: float = 0.25,
) -> Dict[str, Any]:
    """Full structured diff of two ledgers (A = baseline, B = candidate).

    ``rel_threshold`` is the noise-aware bar: a time-like field or
    hotspot must regress by more than this fraction — *and*, for
    hotspots, by more than :data:`HOTSPOT_NOISE_FLOOR` seconds — to
    count against the verdict.
    """
    a = LedgerReader(path_a)
    b = LedgerReader(path_b)
    errors = a.validate() + b.validate()
    if errors:
        raise ValueError("invalid ledger(s): " + "; ".join(errors))

    rounds_a, rounds_b = a.rounds(), b.rounds()
    shared = sorted(
        {e["round"] for e in rounds_a} & {e["round"] for e in rounds_b}
    )

    # -- provenance ---------------------------------------------------
    man_a = (a.manifest or {})
    man_b = (b.manifest or {})
    cfg_a, cfg_b = man_a.get("config", {}), man_b.get("config", {})
    config_deltas = {
        key: {"a": cfg_a.get(key), "b": cfg_b.get(key)}
        for key in sorted(set(cfg_a) | set(cfg_b))
        if cfg_a.get(key) != cfg_b.get(key)
    }
    digest_a = man_a.get("packages", {}).get("repro_source_sha256")
    digest_b = man_b.get("packages", {}).get("repro_source_sha256")

    # -- metric series ------------------------------------------------
    metrics: Dict[str, Dict[str, Any]] = {}
    fields = _numeric_fields(rounds_a + rounds_b)
    for field in fields:
        if field == "round_index":
            continue
        series_a = _series(rounds_a, field)
        series_b = _series(rounds_b, field)
        common = [r for r in shared if r in series_a and r in series_b]
        if not common:
            continue
        mean_a = _mean([series_a[r] for r in common])
        mean_b = _mean([series_b[r] for r in common])
        assert mean_a is not None and mean_b is not None
        entry: Dict[str, Any] = {
            "mean_a": mean_a,
            "mean_b": mean_b,
            "delta": mean_b - mean_a,
            "rel_delta": _rel_delta(mean_a, mean_b),
            "final_a": series_a[common[-1]],
            "final_b": series_b[common[-1]],
            "rounds": len(common),
        }
        if field in TIME_FIELDS:
            entry["regression"] = entry["rel_delta"] > rel_threshold
        metrics[field] = entry

    # -- hotspots -----------------------------------------------------
    spots_a = _hotspot_table(a)
    spots_b = _hotspot_table(b)
    hotspots: Dict[str, Dict[str, Any]] = {}
    for name in sorted(set(spots_a) | set(spots_b)):
        sa = spots_a.get(name, 0.0)
        sb = spots_b.get(name, 0.0)
        delta = sb - sa
        # A span present on only one side is a *structural* change
        # (different executor, new instrumentation): a relative delta
        # against a zero baseline is meaningless, so these are reported
        # with a status and excluded from the regression verdict — the
        # total still shows up in the judged wall_time field.
        if name not in spots_a:
            status = "new"
        elif name not in spots_b:
            status = "vanished"
        else:
            status = "both"
        entry = {
            "self_a": sa,
            "self_b": sb,
            "delta": delta,
            "rel_delta": _rel_delta(sa, sb) if status == "both" else None,
            "status": status,
            "regression": (
                status == "both"
                and delta > HOTSPOT_NOISE_FLOOR
                and _rel_delta(sa, sb) > rel_threshold
            ),
        }
        hotspots[name] = entry

    regressions = sorted(
        [f for f, m in metrics.items() if m.get("regression")]
        + [f"span:{n}" for n, h in hotspots.items() if h["regression"]]
    )
    return {
        "a": path_a,
        "b": path_b,
        "run_a": man_a.get("run_id"),
        "run_b": man_b.get("run_id"),
        "shared_rounds": len(shared),
        "rounds_a": len(rounds_a),
        "rounds_b": len(rounds_b),
        "alerts_a": len(a.alerts()),
        "alerts_b": len(b.alerts()),
        "same_source": bool(digest_a) and digest_a == digest_b,
        "config_deltas": config_deltas,
        "metrics": metrics,
        "hotspots": hotspots,
        "rel_threshold": rel_threshold,
        "regressions": regressions,
        "verdict": "regression" if regressions else "ok",
    }


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


def render_diff(result: Dict[str, Any], *, top: int = 10) -> str:
    """Human-readable rendering of a :func:`diff_ledgers` result."""
    lines: List[str] = []
    lines.append(
        f"ledger diff: A={result['a']} (run {result['run_a']})  vs  "
        f"B={result['b']} (run {result['run_b']})"
    )
    lines.append(
        f"rounds: {result['rounds_a']} vs {result['rounds_b']} "
        f"({result['shared_rounds']} aligned)  alerts: "
        f"{result['alerts_a']} vs {result['alerts_b']}  same-source: "
        f"{'yes' if result['same_source'] else 'NO'}"
    )
    if result["config_deltas"]:
        lines.append("config deltas:")
        for key, pair in result["config_deltas"].items():
            lines.append(f"  {key}: {pair['a']!r} -> {pair['b']!r}")
    if result["metrics"]:
        lines.append("metric series (mean over aligned rounds):")
        lines.append(
            f"  {'field':<28} {'A':>12} {'B':>12} {'delta%':>8}"
        )
        for field, m in sorted(result["metrics"].items()):
            flag = "  << regression" if m.get("regression") else ""
            lines.append(
                f"  {field:<28} {_fmt(m['mean_a']):>12} "
                f"{_fmt(m['mean_b']):>12} {100 * m['rel_delta']:>7.1f}%"
                f"{flag}"
            )
    spots: List[Tuple[str, Dict[str, Any]]] = sorted(
        result["hotspots"].items(),
        key=lambda kv: abs(kv[1]["delta"]),
        reverse=True,
    )[:top]
    if spots:
        lines.append("span self-time (last hotspots snapshot):")
        lines.append(
            f"  {'span':<28} {'A (s)':>10} {'B (s)':>10} {'delta%':>8}"
        )
        for name, h in spots:
            flag = "  << regression" if h["regression"] else ""
            if h["rel_delta"] is None:
                shown = "new" if h["status"] == "new" else "gone"
                lines.append(
                    f"  {name:<28} {h['self_a']:>10.4f} "
                    f"{h['self_b']:>10.4f} {shown:>8}{flag}"
                )
            else:
                lines.append(
                    f"  {name:<28} {h['self_a']:>10.4f} "
                    f"{h['self_b']:>10.4f} "
                    f"{100 * h['rel_delta']:>7.1f}%{flag}"
                )
    verdict = result["verdict"]
    if verdict == "ok":
        lines.append(
            f"verdict: ok (no time-like field beyond "
            f"{100 * result['rel_threshold']:.0f}% threshold)"
        )
    else:
        lines.append(
            "verdict: REGRESSION in " + ", ".join(result["regressions"])
        )
    return "\n".join(lines)
