"""Pluggable telemetry sinks.

Every sink receives plain-dict events conforming to the ``repro.obs/v1``
schema (see ``docs/OBSERVABILITY.md``):

``meta``
    first event of a session: schema tag + configuration echo.
``span``
    one finished span (name, ids, duration, attrs, sim_time).
``round_metrics``
    per-round metric deltas at a round boundary.
``run_summary``
    final cumulative metric snapshot.

``emit`` may be called concurrently from pool threads; each sink
serializes internally so JSONL lines never interleave.
"""

from __future__ import annotations

import csv
import io
import json
import sys
import threading
from typing import Any, Dict, List, Optional, TextIO

__all__ = [
    "CsvMetricsSink",
    "InMemorySink",
    "JsonlSink",
    "Sink",
    "StderrReporter",
]


class Sink:
    """Interface: receive telemetry events, release resources on close."""

    def emit(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release (default: nothing to do)."""


class InMemorySink(Sink):
    """Collects events in a list — the test/in-process consumer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events: List[Dict[str, Any]] = []

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            self.events.append(event)

    def by_type(self, event_type: str) -> List[Dict[str, Any]]:
        """Events of one schema type, in emission order."""
        with self._lock:
            return [e for e in self.events if e.get("type") == event_type]


class JsonlSink(Sink):
    """Appends one JSON object per line to a file."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh: Optional[TextIO] = open(path, "w", encoding="utf-8")

    def emit(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, default=str, separators=(",", ":"))
        with self._lock:
            if self._fh is None:
                raise RuntimeError(f"JsonlSink({self.path!r}) already closed")
            self._fh.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


class CsvMetricsSink(Sink):
    """Writes metric rows (per-round deltas + run summary) as CSV.

    Span events are ignored — this sink is the tabular companion to the
    JSONL trace.  Rows are buffered and written on :meth:`close` so the
    file is valid CSV even if the run dies mid-round.
    """

    FIELDS = ("scope", "round", "metric", "kind", "value",
              "count", "sum", "min", "max", "mean")

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._rows: List[Dict[str, Any]] = []
        self._closed = False

    @staticmethod
    def _metric_rows(metrics: Dict[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
        rows = []
        for mid, m in sorted(metrics.items()):
            kind = m["kind"]
            if kind == "counter":
                headline = m["total"]
            elif kind == "gauge":
                headline = m.get("last", m.get("mean", 0.0))
            else:
                headline = m.get("mean", 0.0)
            rows.append(
                {
                    "metric": mid,
                    "kind": kind,
                    "value": headline,
                    "count": m.get("count", ""),
                    "sum": m.get("sum", ""),
                    "min": m.get("min", ""),
                    "max": m.get("max", ""),
                    "mean": m.get("mean", ""),
                }
            )
        return rows

    def emit(self, event: Dict[str, Any]) -> None:
        etype = event.get("type")
        if etype == "round_metrics":
            scope, rnd = "round", event.get("round", "")
        elif etype == "run_summary":
            scope, rnd = "run", ""
        else:
            return
        rows = self._metric_rows(event.get("metrics", {}))
        with self._lock:
            if self._closed:
                raise RuntimeError(f"CsvMetricsSink({self.path!r}) already closed")
            for row in rows:
                row["scope"] = scope
                row["round"] = rnd
                self._rows.append(row)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            with open(self.path, "w", encoding="utf-8", newline="") as fh:
                writer = csv.DictWriter(fh, fieldnames=self.FIELDS)
                writer.writeheader()
                writer.writerows(self._rows)


class StderrReporter(Sink):
    """Human-readable progress: one line per round, a table at the end."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def emit(self, event: Dict[str, Any]) -> None:
        etype = event.get("type")
        if etype == "round_metrics":
            parts = []
            for mid, m in sorted(event.get("metrics", {}).items()):
                if m["kind"] == "counter":
                    parts.append(f"{mid}={m['total']:g}")
                elif m["kind"] == "gauge":
                    parts.append(f"{mid}={m.get('last', 0.0):g}")
                else:
                    parts.append(f"{mid}~{m.get('mean', 0.0):.3g}")
            with self._lock:
                print(
                    f"[obs] round {event.get('round')}: " + "  ".join(parts),
                    file=self._stream,
                )
        elif etype == "run_summary":
            buf = io.StringIO()
            print("[obs] run summary:", file=buf)
            for mid, m in sorted(event.get("metrics", {}).items()):
                if m["kind"] == "counter":
                    print(f"  {mid:<40s} total={m['total']:g}", file=buf)
                elif m["kind"] == "gauge":
                    print(
                        f"  {mid:<40s} last={m.get('last', 0.0):g} "
                        f"mean={m.get('mean', 0.0):g}",
                        file=buf,
                    )
                else:
                    print(
                        f"  {mid:<40s} n={m.get('count', 0)} "
                        f"mean={m.get('mean', 0.0):.4g} max={m.get('max', 0.0):.4g}",
                        file=buf,
                    )
            with self._lock:
                self._stream.write(buf.getvalue())
