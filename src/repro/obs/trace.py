"""Tracing core: nested spans with a thread-local context stack.

A :class:`Span` measures one named region of work (a federated round, a
client's local solve, a layer forward pass) with monotonic timestamps
and free-form attributes.  Spans nest: entering a span pushes it onto
the *current thread's* context stack, so children started on the same
thread pick up their parent automatically.  Work handed to a pool
thread (``ThreadPoolClientExecutor``) starts with an empty stack there;
the submitting code captures :meth:`Tracer.current` and passes it as
the explicit ``parent=`` so the child still nests under the right
round regardless of which worker runs it.

The module is stdlib-only by design — ``repro.obs`` sits at the bottom
of the layering DAG next to ``repro.utils`` and must stay importable
everywhere.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["NOOP_SPAN", "NoopSpan", "Span", "Tracer", "next_span_id"]

#: process-wide span-id source; ``next()`` on :func:`itertools.count` is
#: atomic under the GIL, so ids are unique across threads without a lock.
_span_ids = itertools.count(1)


def next_span_id() -> int:
    """Allocate a fresh span id from the process-wide counter.

    Used for *external* spans — work measured in another process and
    reported back.  A forked worker inherits a copy of the counter, so
    worker-side allocation would collide with the parent's ids; the
    contract is therefore that only the coordinating (parent) process
    allocates ids, stamping worker-measured timings on emit (see
    :meth:`repro.obs.facade.Telemetry.external_span`).
    """
    return next(_span_ids)


class Span:
    """One timed, attributed region of work.

    Use as a context manager::

        with tracer.span("round", s=3) as sp:
            ...
            sp.set_attribute("clients", 20)

    ``duration`` (seconds) and ``parent_id`` are valid after exit.
    """

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "t_start",
        "t_wall",
        "duration",
        "thread",
        "_explicit_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent: Optional["Span"] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.span_id = next(_span_ids)
        self.parent_id: Optional[int] = None
        self._explicit_parent = parent
        self.t_start = 0.0
        self.t_wall = 0.0
        self.duration = 0.0
        self.thread = ""

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one attribute (overwrites an existing key)."""
        self.attrs[key] = value

    def context(self) -> Dict[str, Any]:
        """Serializable parenting context for cross-process spans.

        Small and picklable by construction, so it can ride along with
        task arguments into a process-pool worker; the parent side
        later passes ``context()["span_id"]`` as the ``parent_id`` of
        the external span it emits for that worker's timing.
        """
        return {"span_id": self.span_id, "name": self.name}

    def __enter__(self) -> "Span":
        parent = self._explicit_parent
        if parent is None:
            parent = self.tracer.current()
        self.parent_id = parent.span_id if parent is not None else None
        self.thread = threading.current_thread().name
        self.tracer._push(self)
        self.t_wall = time.time()
        self.t_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.t_start
        self.tracer._pop(self)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self.tracer._finish(self)

    def to_event(self) -> Dict[str, Any]:
        """Serialize to the ``repro.obs/v1`` span-event dict."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_wall": self.t_wall,
            "duration": self.duration,
            "thread": self.thread,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, id={self.span_id}, dur={self.duration:.6f})"


class NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled.

    Carries no state, so one instance serves every call site and every
    thread; entering/exiting it costs two attribute lookups.
    """

    __slots__ = ()

    duration = 0.0
    span_id = 0
    parent_id = None
    name = ""

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        return None

    def context(self) -> Dict[str, Any]:
        return {"span_id": 0, "name": ""}


NOOP_SPAN = NoopSpan()


class _Stack(threading.local):
    """Per-thread span stack (fresh, empty list in every thread)."""

    def __init__(self) -> None:
        self.spans: List[Span] = []


class Tracer:
    """Creates spans and routes finished spans to an emit callback."""

    def __init__(self, on_finish: Optional[Callable[[Span], None]] = None) -> None:
        self._stack = _Stack()
        self._on_finish = on_finish
        self._count_lock = threading.Lock()
        #: spans finished since construction/reset (all threads); read
        #: without the lock is fine, writes must hold ``_count_lock``
        self.finished_count = 0

    def span(
        self, name: str, *, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        """Build (but do not enter) a span; ``parent`` overrides the stack."""
        return Span(self, name, parent=parent, attrs=attrs)

    def current(self) -> Optional[Span]:
        """Innermost open span on *this* thread, or ``None``."""
        spans = self._stack.spans
        return spans[-1] if spans else None

    def _push(self, span: Span) -> None:
        self._stack.spans.append(span)

    def _pop(self, span: Span) -> None:
        spans = self._stack.spans
        # Tolerate exotic exit orders (generator-held spans): remove the
        # specific span rather than blindly popping the top.
        if spans and spans[-1] is span:
            spans.pop()
        elif span in spans:  # pragma: no cover - defensive
            spans.remove(span)

    def _finish(self, span: Span) -> None:
        with self._count_lock:
            self.finished_count += 1
        if self._on_finish is not None:
            self._on_finish(span)

    def note_finished(self) -> None:
        """Count an externally-recorded span toward :attr:`finished_count`."""
        with self._count_lock:
            self.finished_count += 1
