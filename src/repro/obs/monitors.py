"""Streaming runtime monitors: does the run track the theory?

Each monitor consumes one :class:`RoundObservation` per round (built
from data the server already computes — no extra arithmetic touches
the training path, so bit-identity on/off is structural) and may emit
a structured alert.  The :class:`MonitorSuite` fans observations out,
writes alerts into the run ledger, and optionally fails fast.

The Theorem-1 monitor duplicates the paper's contraction factor in
stdlib ``math`` rather than importing :mod:`repro.core.theory`
(layer 2, scipy-backed): ``repro.obs`` sits at layer 0 of the
layering DAG and must stay dependency-free.  The reference
implementation in ``core.theory`` is the authority; a unit test pins
the two against each other.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Alert",
    "DivergenceTripwire",
    "MonitorFailFast",
    "MonitorSuite",
    "RoundObservation",
    "SigmaDriftMonitor",
    "StragglerAnomalyMonitor",
    "TheoremOneMonitor",
    "ThetaDriftMonitor",
    "contraction_factor",
    "default_monitor_suite",
]


class MonitorFailFast(RuntimeError):
    """Raised by a fail-fast :class:`MonitorSuite` on an error alert."""


@dataclass
class RoundObservation:
    """One round's worth of monitor inputs (all already computed)."""

    round_index: int
    train_loss: Optional[float] = None
    grad_norm: Optional[float] = None
    test_accuracy: Optional[float] = None
    mean_achieved_theta: Optional[float] = None
    straggler_gap: Optional[float] = None
    grad_dissimilarity: Optional[float] = None
    sim_time: Optional[float] = None
    evaluated: bool = True


@dataclass
class Alert:
    """A structured monitor finding, destined for the ledger."""

    monitor: str
    round_index: int
    severity: str
    message: str
    evidence: Dict[str, Any] = field(default_factory=dict)


def contraction_factor(
    mu: float,
    theta: float,
    L: float,
    *,
    lam: float = 0.0,
    sigma_sq: float = 0.0,
) -> Optional[float]:
    """Theorem 1's per-round factor Θ, stdlib-only.

    Θ = (1/μ)[1 − θ√(2(1+σ²)) − (2L/μ̃)√((1+θ²)(1+σ²))
              − (2Lμ/μ̃²)(1+θ²)(1+σ²)]        with μ̃ = μ − λ.

    Mirrors ``repro.core.theory.federated_factor`` exactly (pinned by
    a test; β enters Theorem 1 only through θ, eq. 22).  Returns
    ``None`` when the preconditions fail (μ̃ ≤ 0 or non-finite inputs)
    — the caller falls back to monotone-descent monitoring, since a
    non-positive Θ predicts nothing useful.
    """
    if not all(math.isfinite(v) for v in (mu, theta, L, lam, sigma_sq)):
        return None
    mu_tilde = mu - lam
    if mu <= 0.0 or mu_tilde <= 0.0:
        return None
    one_plus = 1.0 + sigma_sq
    theta_sq = 1.0 + theta * theta
    bracket = (
        1.0
        - theta * math.sqrt(2.0 * one_plus)
        - (2.0 * L / mu_tilde) * math.sqrt(theta_sq * one_plus)
        - (2.0 * L * mu / (mu_tilde * mu_tilde)) * theta_sq * one_plus
    )
    return bracket / mu


class TheoremOneMonitor:
    """Predicted-vs-observed objective-gap contraction (Theorem 1).

    When Θ ∈ (0, 1) the paper predicts a geometric gap contraction, so
    consecutive evaluated losses must not *increase* beyond a noise
    slack — and when the constants put Θ outside (0, 1) (the common
    regime for the paper's L ≫ μ workloads, where the bound is vacuous)
    the monitor degrades to the same monotone-descent-with-slack check,
    because every convergent proximal run still descends on average.
    Two consecutive violations (``patience``) raise the alert; a loss
    explosion past ``blowup_factor``× the starting loss fires
    immediately, so a 3-round CI demo with an injected huge stepsize
    is caught on the spot.
    """

    name = "theorem1_contraction"

    def __init__(
        self,
        *,
        slack_rel: float = 0.05,
        slack_abs: float = 1e-9,
        patience: int = 2,
        blowup_factor: float = 10.0,
    ) -> None:
        self.slack_rel = slack_rel
        self.slack_abs = slack_abs
        self.patience = patience
        self.blowup_factor = blowup_factor
        self.theta: Optional[float] = None
        self.factor: Optional[float] = None
        self._constants: Dict[str, float] = {}
        self._prev_loss: Optional[float] = None
        self._first_loss: Optional[float] = None
        self._violations = 0

    def bind_theory(
        self,
        *,
        beta: float,
        mu: float,
        L: float,
        theta: float,
        lam: float = 0.0,
        sigma_sq: float = 0.0,
    ) -> None:
        """Pin the run's constants; computes Θ once, up front."""
        self.theta = theta
        self._constants = {
            "beta": beta, "mu": mu, "L": L, "theta": theta,
            "lam": lam, "sigma_sq": sigma_sq,
        }
        self.factor = contraction_factor(
            mu, theta, L, lam=lam, sigma_sq=sigma_sq
        )

    def observe(self, obs: RoundObservation) -> Optional[Alert]:
        loss = obs.train_loss
        if loss is None or not obs.evaluated:
            return None
        if not math.isfinite(loss):
            # leave the divergence tripwire to report non-finite losses
            self._prev_loss = loss
            return None
        if self._first_loss is None:
            self._first_loss = loss
        prev = self._prev_loss
        self._prev_loss = loss
        if prev is None or not math.isfinite(prev):
            return None
        contractive = self.factor is not None and 0.0 < self.factor < 1.0
        slack = self.slack_abs + self.slack_rel * max(1.0, abs(prev))
        # allowed ceiling for this round's loss under the active regime
        ceiling = prev + slack
        evidence = {
            "prev_loss": prev,
            "loss": loss,
            "slack": slack,
            "factor": self.factor,
            "regime": "contraction" if contractive else "monotone_descent",
            "constants": dict(self._constants),
        }
        blown = (
            self._first_loss is not None
            and loss > self.blowup_factor * max(1.0, abs(self._first_loss))
        )
        if loss <= ceiling and not blown:
            self._violations = 0
            return None
        self._violations += 1
        if not blown and self._violations < self.patience:
            return None
        evidence["violations"] = self._violations
        evidence["blowup"] = blown
        return Alert(
            monitor=self.name,
            round_index=obs.round_index,
            severity="error",
            message=(
                "objective increased "
                f"({prev:.6g} -> {loss:.6g}) against the Theorem-1 "
                f"{evidence['regime']} prediction"
            ),
            evidence=evidence,
        )


class ThetaDriftMonitor:
    """Achieved-θ drift vs a self-calibrated baseline window.

    The local solvers are asked for inexactness θ; the first
    ``baseline_rounds`` observed θ̂ values set the baseline mean, and a
    later round drifting past ``drift_factor``× that mean (plus the
    configured θ as an absolute floor) means the inner solve budget no
    longer delivers the contract Theorem 1 assumes.
    """

    name = "theta_drift"

    def __init__(
        self, *, baseline_rounds: int = 3, drift_factor: float = 3.0
    ) -> None:
        self.baseline_rounds = baseline_rounds
        self.drift_factor = drift_factor
        self.target_theta: Optional[float] = None
        self._baseline: List[float] = []

    def observe(self, obs: RoundObservation) -> Optional[Alert]:
        theta_hat = obs.mean_achieved_theta
        if theta_hat is None or not math.isfinite(theta_hat):
            return None
        if len(self._baseline) < self.baseline_rounds:
            self._baseline.append(theta_hat)
            return None
        base = sum(self._baseline) / len(self._baseline)
        floor = max(base, self.target_theta or 0.0)
        limit = self.drift_factor * max(floor, 1e-12)
        if theta_hat <= limit:
            return None
        return Alert(
            monitor=self.name,
            round_index=obs.round_index,
            severity="warning",
            message=(
                f"achieved theta {theta_hat:.4g} drifted past "
                f"{self.drift_factor:g}x baseline {base:.4g}"
            ),
            evidence={
                "achieved_theta": theta_hat,
                "baseline_mean": base,
                "limit": limit,
                "target_theta": self.target_theta,
            },
        )


class SigmaDriftMonitor:
    """Gradient-dissimilarity (Γ̂, the σ̄² proxy) drift detection.

    FedProx's Γ statistic — Σ p̃ₙ‖∇Jₙ‖² / ‖Σ p̃ₙ∇Jₙ‖²-style ratio over
    the sampled cohort — estimates how non-IID the round was.  A jump
    past ``drift_factor``× the calibrated baseline says the σ̄²
    assumption baked into the run's (β, θ) choice is stale.
    """

    name = "sigma_drift"

    def __init__(
        self, *, baseline_rounds: int = 3, drift_factor: float = 4.0
    ) -> None:
        self.baseline_rounds = baseline_rounds
        self.drift_factor = drift_factor
        self._baseline: List[float] = []

    def observe(self, obs: RoundObservation) -> Optional[Alert]:
        gamma = obs.grad_dissimilarity
        if gamma is None or not math.isfinite(gamma):
            return None
        if len(self._baseline) < self.baseline_rounds:
            self._baseline.append(gamma)
            return None
        base = sum(self._baseline) / len(self._baseline)
        limit = self.drift_factor * max(base, 1e-12)
        if gamma <= limit:
            return None
        return Alert(
            monitor=self.name,
            round_index=obs.round_index,
            severity="warning",
            message=(
                f"gradient dissimilarity {gamma:.4g} drifted past "
                f"{self.drift_factor:g}x baseline {base:.4g}"
            ),
            evidence={
                "grad_dissimilarity": gamma,
                "baseline_mean": base,
                "limit": limit,
            },
        )


class DivergenceTripwire:
    """Immediate alert on non-finite or exploded training loss."""

    name = "divergence"

    def __init__(self, *, loss_ceiling: float = 1e8) -> None:
        self.loss_ceiling = loss_ceiling

    def observe(self, obs: RoundObservation) -> Optional[Alert]:
        loss = obs.train_loss
        if loss is None:
            return None
        if math.isfinite(loss) and abs(loss) <= self.loss_ceiling:
            return None
        kind = "non-finite" if not math.isfinite(loss) else "exploded"
        return Alert(
            monitor=self.name,
            round_index=obs.round_index,
            severity="error",
            message=f"training loss is {kind}: {loss!r}",
            evidence={"loss": loss, "loss_ceiling": self.loss_ceiling},
        )


class StragglerAnomalyMonitor:
    """Straggler-gap outliers via rolling median absolute deviation.

    Keeps the last ``window`` straggler gaps; once ``min_history``
    samples exist, a gap beyond median + ``k``·MAD (with a small
    absolute floor so near-constant histories don't alert on noise)
    flags an anomalous round — a wedged worker, not workload skew.
    """

    name = "straggler_anomaly"

    def __init__(
        self,
        *,
        window: int = 20,
        min_history: int = 5,
        k: float = 8.0,
        min_gap: float = 1e-3,
    ) -> None:
        self.window = window
        self.min_history = min_history
        self.k = k
        self.min_gap = min_gap
        self._history: List[float] = []

    def observe(self, obs: RoundObservation) -> Optional[Alert]:
        gap = obs.straggler_gap
        if gap is None or not math.isfinite(gap):
            return None
        alert = None
        if len(self._history) >= self.min_history:
            ordered = sorted(self._history)
            median = ordered[len(ordered) // 2]
            mad = sorted(abs(v - median) for v in ordered)[len(ordered) // 2]
            limit = median + self.k * max(mad, 1e-6)
            if gap > limit and gap > self.min_gap:
                alert = Alert(
                    monitor=self.name,
                    round_index=obs.round_index,
                    severity="warning",
                    message=(
                        f"straggler gap {gap:.4g}s is an outlier "
                        f"(median {median:.4g}s, MAD {mad:.4g}s)"
                    ),
                    evidence={
                        "gap": gap, "median": median,
                        "mad": mad, "limit": limit,
                    },
                )
        self._history.append(gap)
        if len(self._history) > self.window:
            self._history.pop(0)
        return alert


class MonitorSuite:
    """Fan observations out to monitors; route alerts to the ledger."""

    def __init__(self, monitors: List[Any], *, fail_fast: bool = False) -> None:
        self.monitors = list(monitors)
        self.fail_fast = fail_fast
        self.alerts: List[Alert] = []
        self._ledger = None

    def attach_ledger(self, ledger: Any) -> None:
        self._ledger = ledger

    def bind_theory(
        self,
        *,
        beta: float,
        mu: float,
        L: float,
        theta: float,
        lam: float = 0.0,
        sigma_sq: float = 0.0,
    ) -> None:
        """Push the run's constants to every monitor that wants them."""
        for monitor in self.monitors:
            bind = getattr(monitor, "bind_theory", None)
            if bind is not None:
                bind(beta=beta, mu=mu, L=L, theta=theta,
                     lam=lam, sigma_sq=sigma_sq)
            if hasattr(monitor, "target_theta"):
                monitor.target_theta = theta

    def observe_round(self, obs: RoundObservation) -> List[Alert]:
        """Evaluate all monitors for one round; may raise on fail-fast."""
        from repro.obs.facade import telemetry

        fired: List[Alert] = []
        for monitor in self.monitors:
            alert = monitor.observe(obs)
            if alert is None:
                continue
            fired.append(alert)
            self.alerts.append(alert)
            if self._ledger is not None:
                self._ledger.alert(
                    alert.round_index,
                    alert.monitor,
                    alert.message,
                    severity=alert.severity,
                    evidence=alert.evidence,
                )
            if telemetry.enabled:
                telemetry.counter_add(
                    "obs.monitor.alerts", 1, key=alert.monitor
                )
        if self.fail_fast:
            errors = [a for a in fired if a.severity == "error"]
            if errors:
                raise MonitorFailFast(
                    f"round {errors[0].round_index}: "
                    f"[{errors[0].monitor}] {errors[0].message}"
                )
        return fired


def default_monitor_suite(*, fail_fast: bool = False) -> MonitorSuite:
    """The standard five-detector suite wired by ``--ledger`` runs."""
    return MonitorSuite(
        [
            TheoremOneMonitor(),
            ThetaDriftMonitor(),
            SigmaDriftMonitor(),
            DivergenceTripwire(),
            StragglerAnomalyMonitor(),
        ],
        fail_fast=fail_fast,
    )
