"""The process-global :class:`Telemetry` facade.

All instrumentation in the federated stack goes through the module
singleton :data:`telemetry`.  While disabled (the default) every entry
point degenerates to one attribute check — ``telemetry.enabled`` /
``telemetry.nn_profiling`` are plain instance attributes, not
properties — so hot paths (inner solver loops, layer forwards) pay
essentially nothing and ``repro.core`` stays importable and fast with
``repro.obs`` unconfigured.

Typical session::

    from repro.obs import JsonlSink, telemetry

    telemetry.configure(sinks=[JsonlSink("trace.jsonl")])
    try:
        run_federated(...)
    finally:
        telemetry.shutdown()
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.obs.metrics import DEFAULT_TIME_BUCKETS, MetricsRegistry
from repro.obs.sinks import Sink
from repro.obs.trace import NOOP_SPAN, Span, Tracer, next_span_id

__all__ = ["SCHEMA", "Telemetry", "telemetry"]

#: schema tag stamped into every session's ``meta`` event
SCHEMA = "repro.obs/v1"


class Telemetry:
    """Facade tying together tracer, metrics registry, and sinks."""

    def __init__(self) -> None:
        #: fast-path switch; instrumentation must check this first
        self.enabled = False
        #: separate opt-in for per-layer nn timing (hotter than spans)
        self.nn_profiling = False
        self.tracer = Tracer(self._emit_span)
        self.metrics = MetricsRegistry()
        self._sinks: List[Sink] = []
        self._sim_clock: Optional[Any] = None
        self._round_base: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------

    def configure(
        self,
        sinks: Iterable[Sink] = (),
        *,
        nn_profiling: bool = False,
        extra_meta: Optional[Dict[str, Any]] = None,
    ) -> "Telemetry":
        """Enable telemetry and route events to ``sinks``.

        Reconfiguring an active session flushes nothing — call
        :meth:`shutdown` first.  Returns ``self`` for chaining.
        """
        if self.enabled:
            raise RuntimeError("telemetry already configured; shutdown() first")
        self._sinks = list(sinks)
        self.metrics.reset()
        with self._lock:
            self._round_base = {}
        self._sim_clock = None
        meta: Dict[str, Any] = {"type": "meta", "schema": SCHEMA,
                                "nn_profiling": bool(nn_profiling)}
        if extra_meta:
            meta["attrs"] = dict(extra_meta)
        self._emit(meta)
        self.nn_profiling = bool(nn_profiling)
        self.enabled = True
        return self

    def flush(self) -> None:
        """Emit the cumulative run summary to every sink."""
        if not self.enabled:
            return
        self._emit(
            {
                "type": "run_summary",
                "sim_time": self.sim_time(),
                "metrics": self.metrics.snapshot(),
                "spans_emitted": self.tracer.finished_count,
            }
        )

    def shutdown(self) -> None:
        """Flush the run summary, close sinks, and disable telemetry."""
        if not self.enabled:
            return
        self.flush()
        self.enabled = False
        self.nn_profiling = False
        sinks, self._sinks = self._sinks, []
        for sink in sinks:
            sink.close()
        self._sim_clock = None

    # -- tracing ------------------------------------------------------

    def span(self, name: str, *, parent: Optional[Span] = None, **attrs: Any):
        """A context-manager span, or the shared no-op when disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, parent=parent, **attrs)

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread (``None`` if disabled)."""
        if not self.enabled:
            return None
        return self.tracer.current()

    def external_span(
        self,
        name: str,
        duration: float,
        *,
        t_wall: float = 0.0,
        parent_id: Optional[int] = None,
        process: str = "",
        thread: str = "",
        **attrs: Any,
    ) -> Optional[int]:
        """Emit a span measured in another process (or otherwise outside
        this tracer), allocating its id parent-side.

        Forked pool workers inherit a copy of the span-id counter, so
        letting workers allocate ids would collide across processes;
        instead workers ship raw timings home and the coordinator calls
        this with the serialized parent context's ``span_id`` (see
        :meth:`Span.context`).  ``process`` names the measuring process
        and lands in the event's ``process`` field so report tooling
        can key span ids per process.  Returns the allocated span id,
        or ``None`` while disabled.
        """
        if not self.enabled:
            return None
        span_id = next_span_id()
        event: Dict[str, Any] = {
            "type": "span",
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "t_wall": float(t_wall),
            "duration": float(duration),
            "thread": thread or threading.current_thread().name,
            "attrs": attrs,
        }
        if process:
            event["process"] = process
        event["sim_time"] = self.sim_time()
        self.tracer.note_finished()
        self._emit(event)
        return span_id

    # -- metrics ------------------------------------------------------

    def counter_add(
        self, name: str, value: float = 1.0, *, key: Optional[str] = None
    ) -> None:
        if self.enabled:
            self.metrics.counter_add(name, value, key=key)

    def gauge_set(
        self, name: str, value: float, *, key: Optional[str] = None
    ) -> None:
        if self.enabled:
            self.metrics.gauge_set(name, value, key=key)

    def observe(
        self,
        name: str,
        value: float,
        *,
        key: Optional[str] = None,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        if self.enabled:
            self.metrics.observe(name, value, key=key, buckets=buckets)

    # -- simulated time -----------------------------------------------

    def attach_sim_clock(self, clock: Any) -> None:
        """Stamp subsequent events with ``clock``'s simulated time.

        ``clock`` needs a :meth:`snapshot` returning
        ``(elapsed, num_rounds, last_duration)`` —
        :class:`repro.utils.timing.SimulatedClock` qualifies; any
        duck-typed stand-in works (obs sits *below* utils in the
        layering DAG, so the dependency points up via runtime wiring,
        not an import).
        """
        self._sim_clock = clock

    def sim_time(self) -> Optional[float]:
        """Current simulated elapsed seconds, if a clock is attached."""
        clock = self._sim_clock
        if clock is None:
            return None
        elapsed, _, _ = clock.snapshot()
        return float(elapsed)

    # -- round boundaries ---------------------------------------------

    def round_finished(self, round_index: int) -> None:
        """Emit per-round metric deltas at a round boundary."""
        if not self.enabled:
            return
        snap = self.metrics.snapshot()
        with self._lock:
            base, self._round_base = self._round_base, snap
        delta = MetricsRegistry.delta(snap, base)
        self._emit(
            {
                "type": "round_metrics",
                "round": int(round_index),
                "sim_time": self.sim_time(),
                "metrics": delta,
            }
        )

    # -- plumbing -----------------------------------------------------

    def _emit_span(self, span: Span) -> None:
        event = span.to_event()
        event["sim_time"] = self.sim_time()
        self._emit(event)

    def _emit(self, event: Dict[str, Any]) -> None:
        for sink in self._sinks:
            sink.emit(event)


#: the process-global facade every instrumentation site imports
telemetry = Telemetry()
