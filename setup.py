"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that ``pip install -e . --no-use-pep517`` works on environments without
the ``wheel`` package (offline editable installs).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22", "scipy>=1.8"],
)
