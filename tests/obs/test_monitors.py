"""Tests for the runtime theory monitors.

The load-bearing test pins the stdlib Theorem-1 factor in
``repro.obs.monitors`` against the scipy-backed reference in
``repro.core.theory`` — the obs copy exists only because layer 0 cannot
import layer 2, so the two must agree to the bit.
"""

from __future__ import annotations

import math

import pytest

from repro.core.theory import ProblemConstants, federated_factor
from repro.obs.ledger import LedgerReader, RunLedger
from repro.obs.monitors import (
    Alert,
    DivergenceTripwire,
    MonitorFailFast,
    MonitorSuite,
    RoundObservation,
    SigmaDriftMonitor,
    StragglerAnomalyMonitor,
    TheoremOneMonitor,
    ThetaDriftMonitor,
    contraction_factor,
    default_monitor_suite,
)


def obs(round_index, **kwargs):
    return RoundObservation(round_index=round_index, **kwargs)


class TestContractionFactorPin:
    @pytest.mark.parametrize(
        "mu, theta, L, lam, sigma_sq",
        [
            (2000.0, 0.01, 1.0, 0.0, 0.0),
            (500.0, 0.05, 2.0, 1.0, 0.3),
            (50.0, 0.2, 5.0, 0.0, 1.0),
            (10.0, 0.5, 1.0, 2.0, 0.1),
        ],
    )
    def test_matches_core_theory_reference(self, mu, theta, L, lam, sigma_sq):
        constants = ProblemConstants(L=L, lam=lam, sigma_bar_sq=sigma_sq)
        reference = federated_factor(theta, mu, constants)
        ours = contraction_factor(mu, theta, L, lam=lam, sigma_sq=sigma_sq)
        assert ours == pytest.approx(reference, rel=0, abs=0)

    def test_infeasible_inputs_return_none(self):
        assert contraction_factor(0.0, 0.1, 1.0) is None
        assert contraction_factor(1.0, 0.1, 1.0, lam=2.0) is None  # mu_tilde<0
        assert contraction_factor(float("nan"), 0.1, 1.0) is None
        assert contraction_factor(1.0, float("inf"), 1.0) is None


class TestTheoremOneMonitor:
    def _bound(self, **kwargs):
        m = TheoremOneMonitor(**kwargs)
        # constants chosen so the factor lands in (0, 1): contraction regime
        m.bind_theory(beta=7.0, mu=2000.0, L=1.0, theta=0.01)
        assert m.factor is not None and 0.0 < m.factor < 1.0
        return m

    def test_silent_on_descending_losses(self):
        m = self._bound()
        for s, loss in enumerate([3.0, 2.0, 1.5, 1.2], start=1):
            assert m.observe(obs(s, train_loss=loss)) is None

    def test_patience_requires_consecutive_violations(self):
        m = self._bound()
        assert m.observe(obs(1, train_loss=1.0)) is None
        assert m.observe(obs(2, train_loss=2.0)) is None  # 1st violation
        alert = m.observe(obs(3, train_loss=3.0))  # 2nd: fires
        assert alert is not None and alert.severity == "error"
        assert alert.evidence["regime"] == "contraction"
        assert alert.evidence["violations"] == 2

    def test_recovery_resets_patience(self):
        m = self._bound()
        m.observe(obs(1, train_loss=1.0))
        m.observe(obs(2, train_loss=2.0))  # violation
        assert m.observe(obs(3, train_loss=0.5)) is None  # recovered
        assert m.observe(obs(4, train_loss=1.0)) is None  # count restarted

    def test_blowup_fires_immediately(self):
        m = self._bound()
        m.observe(obs(1, train_loss=5.0))
        alert = m.observe(obs(2, train_loss=500.0))
        assert alert is not None
        assert alert.evidence["blowup"] is True

    def test_small_increase_within_slack_tolerated(self):
        m = self._bound(slack_rel=0.05)
        m.observe(obs(1, train_loss=10.0))
        for s in (2, 3, 4):
            assert m.observe(obs(s, train_loss=10.2)) is None

    def test_unbound_monitor_falls_back_to_monotone_descent(self):
        m = TheoremOneMonitor()  # no bind_theory: factor is None
        m.observe(obs(1, train_loss=1.0))
        m.observe(obs(2, train_loss=2.0))
        alert = m.observe(obs(3, train_loss=4.0))
        assert alert is not None
        assert alert.evidence["regime"] == "monotone_descent"

    def test_skips_unevaluated_and_nonfinite_rounds(self):
        m = self._bound()
        assert m.observe(obs(1, train_loss=1.0)) is None
        assert m.observe(obs(2, train_loss=None)) is None
        assert m.observe(obs(3, train_loss=9.0, evaluated=False)) is None
        assert m.observe(obs(4, train_loss=float("nan"))) is None


class TestDriftMonitors:
    def test_theta_drift_fires_after_baseline(self):
        m = ThetaDriftMonitor(baseline_rounds=2, drift_factor=3.0)
        assert m.observe(obs(1, mean_achieved_theta=0.01)) is None
        assert m.observe(obs(2, mean_achieved_theta=0.01)) is None
        assert m.observe(obs(3, mean_achieved_theta=0.02)) is None  # < 3x
        alert = m.observe(obs(4, mean_achieved_theta=0.1))
        assert alert is not None and alert.severity == "warning"
        assert alert.monitor == "theta_drift"

    def test_theta_drift_uses_target_theta_floor(self):
        m = ThetaDriftMonitor(baseline_rounds=1, drift_factor=3.0)
        m.target_theta = 0.05  # suite sets this from eq. 22
        m.observe(obs(1, mean_achieved_theta=0.001))
        # 0.1 < 3 * max(baseline, target) = 0.15: inside the contract
        assert m.observe(obs(2, mean_achieved_theta=0.1)) is None
        assert m.observe(obs(3, mean_achieved_theta=0.2)) is not None

    def test_sigma_drift_fires_on_dissimilarity_jump(self):
        m = SigmaDriftMonitor(baseline_rounds=2, drift_factor=4.0)
        m.observe(obs(1, grad_dissimilarity=1.1))
        m.observe(obs(2, grad_dissimilarity=0.9))
        assert m.observe(obs(3, grad_dissimilarity=2.0)) is None
        alert = m.observe(obs(4, grad_dissimilarity=5.0))
        assert alert is not None and alert.monitor == "sigma_drift"


class TestDivergenceTripwire:
    def test_fires_on_nan_inf_and_ceiling(self):
        m = DivergenceTripwire(loss_ceiling=100.0)
        assert m.observe(obs(1, train_loss=50.0)) is None
        assert m.observe(obs(2, train_loss=float("nan"))) is not None
        assert m.observe(obs(3, train_loss=float("inf"))) is not None
        alert = m.observe(obs(4, train_loss=1000.0))
        assert alert is not None and "exploded" in alert.message

    def test_none_loss_ignored(self):
        assert DivergenceTripwire().observe(obs(1)) is None


class TestStragglerAnomaly:
    def test_fires_on_outlier_after_history(self):
        m = StragglerAnomalyMonitor(min_history=5, k=8.0)
        for s in range(1, 7):
            assert m.observe(obs(s, straggler_gap=0.01)) is None
        alert = m.observe(obs(7, straggler_gap=1.0))
        assert alert is not None and alert.monitor == "straggler_anomaly"

    def test_constant_history_never_alerts_on_noise(self):
        m = StragglerAnomalyMonitor(min_history=3, min_gap=1e-3)
        for s in range(1, 20):
            assert m.observe(obs(s, straggler_gap=1e-4)) is None


class TestMonitorSuite:
    def test_routes_alerts_to_ledger(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ledger = RunLedger(str(path), fsync=False)
        ledger.write_manifest({})
        suite = MonitorSuite([DivergenceTripwire(loss_ceiling=10.0)])
        suite.attach_ledger(ledger)
        suite.observe_round(obs(1, train_loss=5.0))
        suite.observe_round(obs(2, train_loss=50.0))
        ledger.close()
        reader = LedgerReader(str(path))
        assert reader.validate() == []
        alerts = reader.alerts()
        assert len(alerts) == 1
        assert alerts[0]["monitor"] == "divergence"
        assert len(suite.alerts) == 1

    def test_fail_fast_raises_on_error_severity(self):
        suite = MonitorSuite(
            [DivergenceTripwire(loss_ceiling=10.0)], fail_fast=True
        )
        suite.observe_round(obs(1, train_loss=1.0))
        with pytest.raises(MonitorFailFast, match="divergence"):
            suite.observe_round(obs(2, train_loss=100.0))

    def test_fail_fast_ignores_warnings(self):
        m = SigmaDriftMonitor(baseline_rounds=1, drift_factor=2.0)
        suite = MonitorSuite([m], fail_fast=True)
        suite.observe_round(obs(1, grad_dissimilarity=1.0))
        fired = suite.observe_round(obs(2, grad_dissimilarity=10.0))
        assert len(fired) == 1 and fired[0].severity == "warning"

    def test_bind_theory_reaches_members(self):
        suite = default_monitor_suite()
        suite.bind_theory(beta=7.0, mu=2000.0, L=1.0, theta=0.01)
        t1 = next(
            m for m in suite.monitors if isinstance(m, TheoremOneMonitor)
        )
        drift = next(
            m for m in suite.monitors if isinstance(m, ThetaDriftMonitor)
        )
        assert t1.theta == 0.01
        assert drift.target_theta == 0.01

    def test_default_suite_composition(self):
        suite = default_monitor_suite(fail_fast=True)
        names = {m.name for m in suite.monitors}
        assert names == {
            "theorem1_contraction",
            "theta_drift",
            "sigma_drift",
            "divergence",
            "straggler_anomaly",
        }
        assert suite.fail_fast

    def test_alert_dataclass_defaults(self):
        alert = Alert(monitor="m", round_index=1, severity="error", message="x")
        assert alert.evidence == {}


class TestHealthyRunSilence:
    def test_default_suite_is_silent_on_a_clean_trajectory(self):
        suite = default_monitor_suite()
        suite.bind_theory(beta=7.0, mu=2000.0, L=1.0, theta=0.01)
        loss = 3.0
        for s in range(1, 30):
            fired = suite.observe_round(
                obs(
                    s,
                    train_loss=loss,
                    mean_achieved_theta=0.008 + 0.001 * math.sin(s),
                    grad_dissimilarity=1.1 + 0.05 * math.cos(s),
                    straggler_gap=0.01 + 0.001 * (s % 3),
                )
            )
            assert fired == []
            loss *= 0.9
        assert suite.alerts == []
