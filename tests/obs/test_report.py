"""Tests for the obs-report renderer over synthetic traces."""

from __future__ import annotations

import json

import pytest

from repro.obs.ledger import RunLedger
from repro.obs.report import (
    aggregate_tree,
    load_events,
    render_ledger_report,
    render_report,
    top_hotspots,
)


def _span(span_id, parent_id, name, duration, process=None, **attrs):
    event = {
        "type": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "t_wall": 0.0, "duration": duration,
        "thread": "MainThread", "attrs": attrs, "sim_time": None,
    }
    if process is not None:
        event["process"] = process
    return event


@pytest.fixture()
def trace_file(tmp_path):
    events = [
        {"type": "meta", "schema": "repro.obs/v1", "nn_profiling": False},
        _span(2, 1, "round", 0.6, s=1),
        _span(3, 1, "round", 0.4, s=2),
        _span(4, 2, "local_solve", 0.5, client=0, round=1),
        _span(5, 3, "local_solve", 0.3, client=0, round=2),
        _span(1, None, "run", 1.0),
        {"type": "round_metrics", "round": 1, "sim_time": 1.0, "metrics": {}},
    ]
    path = tmp_path / "trace.jsonl"
    with open(path, "w") as fh:
        for e in events:
            fh.write(json.dumps(e) + "\n")
    return str(path)


class TestLoadEvents:
    def test_roundtrip(self, trace_file):
        events = load_events(trace_file)
        assert len(events) == 7

    def test_bad_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            load_events(str(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not an object"):
            load_events(str(path))


class TestAggregateTree:
    def test_paths_and_totals(self, trace_file):
        agg = aggregate_tree(load_events(trace_file))
        assert agg[("run",)]["count"] == 1
        assert agg[("run", "round")]["count"] == 2
        assert agg[("run", "round")]["total"] == pytest.approx(1.0)
        assert agg[("run", "round", "local_solve")]["total"] == pytest.approx(0.8)
        assert agg[("run", "round")]["max"] == pytest.approx(0.6)

    def test_orphan_parent_id_tolerated(self):
        # parent_id pointing at a span missing from the trace (e.g. the
        # file was truncated) must not crash or loop
        agg = aggregate_tree([_span(7, 99, "orphan", 0.1)])
        assert agg == {("orphan",): {"count": 1, "total": 0.1, "max": 0.1}}


class TestHotspots:
    def test_self_time_subtracts_children(self, trace_file):
        rows = {r["name"]: r for r in top_hotspots(load_events(trace_file), 10)}
        assert rows["local_solve"]["self"] == pytest.approx(0.8)
        # rounds: (0.6 - 0.5) + (0.4 - 0.3)
        assert rows["round"]["self"] == pytest.approx(0.2)
        assert rows["run"]["self"] == pytest.approx(0.0)

    def test_k_limits_rows(self, trace_file):
        assert len(top_hotspots(load_events(trace_file), 1)) == 1


class TestCrossProcessSpans:
    """Span ids are only unique per process (forked workers inherit the
    parent's counter); the report must key by (process, span_id)."""

    def _mp_trace(self):
        # Coordinator: run(1) > round(2).  Two workers whose *local*
        # span ids collide with the coordinator's (both reuse id 2 for
        # their own spans), parenting into coordinator span 2.
        return [
            _span(1, None, "run", 1.0),
            _span(2, 1, "round", 0.9),
            _span(2, 2, "local_solve", 0.4, process="Worker-1"),
            _span(2, 2, "local_solve", 0.3, process="Worker-2"),
        ]

    def test_colliding_ids_do_not_merge_across_processes(self):
        agg = aggregate_tree(self._mp_trace())
        assert agg[("run", "round", "local_solve")]["count"] == 2
        assert agg[("run", "round", "local_solve")]["total"] == pytest.approx(0.7)
        # the coordinator's round span is not confused with worker id 2
        assert agg[("run", "round")]["count"] == 1

    def test_worker_parent_resolves_to_coordinator_namespace(self):
        # Worker span's parent_id=2 is unknown in its own process, so
        # it must fall back to the coordinator's ("", 2) round span.
        rows = {r["name"]: r for r in top_hotspots(self._mp_trace(), 10)}
        # round self time = 0.9 - (0.4 + 0.3): worker children subtract
        assert rows["round"]["self"] == pytest.approx(0.2)
        assert rows["local_solve"]["self"] == pytest.approx(0.7)

    def test_hotspots_aggregate_by_name_across_processes(self):
        rows = top_hotspots(self._mp_trace(), 10)
        names = [r["name"] for r in rows]
        assert names.count("local_solve") == 1  # one row, both processes


class TestRenderLedgerReport:
    def _ledger(self, tmp_path, *, alerts=0):
        path = tmp_path / "run.ledger.jsonl"
        ledger = RunLedger(str(path), fsync=False)
        ledger.write_manifest({"algorithm": "fedavg", "tau": 5})
        ledger.commit_round(
            1,
            {"round_index": 1, "train_loss": 2.5, "grad_norm": 0.5,
             "grad_dissimilarity": 1.08},
            sim_time=1.0,
        )
        for _ in range(alerts):
            ledger.alert(1, "divergence", "loss is non-finite: nan")
        ledger.hotspots(
            [{"name": "local_solve", "self_seconds": 0.1,
              "total_seconds": 0.1, "count": 4}]
        )
        ledger.close()
        return str(path)

    def test_contains_sections(self, tmp_path):
        text = render_ledger_report(self._ledger(tmp_path))
        assert "repro.ledger/v1" in text
        assert "status: completed" in text
        assert "algorithm='fedavg'" in text
        assert "grad_dissimilarity" in text
        assert "1.08" in text
        assert "alerts: 0" in text
        assert "hotspots" in text and "local_solve" in text

    def test_renders_alerts(self, tmp_path):
        text = render_ledger_report(self._ledger(tmp_path, alerts=1))
        assert "alerts: 1" in text
        assert "[error] divergence" in text

    def test_flags_torn_tail(self, tmp_path):
        path = self._ledger(tmp_path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "round", "curs')
        text = render_ledger_report(path)
        assert "[torn final line dropped]" in text


class TestRenderReport:
    def test_contains_sections_and_names(self, trace_file):
        text = render_report(trace_file, top=3)
        assert "span tree" in text
        assert "hotspots" in text
        assert "local_solve" in text
        assert "repro.obs/v1" in text
        assert "final simulated time" not in text  # spans carry no sim_time

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        text = render_report(str(path))
        assert "(no span events)" in text
