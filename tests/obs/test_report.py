"""Tests for the obs-report renderer over synthetic traces."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import (
    aggregate_tree,
    load_events,
    render_report,
    top_hotspots,
)


def _span(span_id, parent_id, name, duration, **attrs):
    return {
        "type": "span", "name": name, "span_id": span_id,
        "parent_id": parent_id, "t_wall": 0.0, "duration": duration,
        "thread": "MainThread", "attrs": attrs, "sim_time": None,
    }


@pytest.fixture()
def trace_file(tmp_path):
    events = [
        {"type": "meta", "schema": "repro.obs/v1", "nn_profiling": False},
        _span(2, 1, "round", 0.6, s=1),
        _span(3, 1, "round", 0.4, s=2),
        _span(4, 2, "local_solve", 0.5, client=0, round=1),
        _span(5, 3, "local_solve", 0.3, client=0, round=2),
        _span(1, None, "run", 1.0),
        {"type": "round_metrics", "round": 1, "sim_time": 1.0, "metrics": {}},
    ]
    path = tmp_path / "trace.jsonl"
    with open(path, "w") as fh:
        for e in events:
            fh.write(json.dumps(e) + "\n")
    return str(path)


class TestLoadEvents:
    def test_roundtrip(self, trace_file):
        events = load_events(trace_file)
        assert len(events) == 7

    def test_bad_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta"}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            load_events(str(path))

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not an object"):
            load_events(str(path))


class TestAggregateTree:
    def test_paths_and_totals(self, trace_file):
        agg = aggregate_tree(load_events(trace_file))
        assert agg[("run",)]["count"] == 1
        assert agg[("run", "round")]["count"] == 2
        assert agg[("run", "round")]["total"] == pytest.approx(1.0)
        assert agg[("run", "round", "local_solve")]["total"] == pytest.approx(0.8)
        assert agg[("run", "round")]["max"] == pytest.approx(0.6)

    def test_orphan_parent_id_tolerated(self):
        # parent_id pointing at a span missing from the trace (e.g. the
        # file was truncated) must not crash or loop
        agg = aggregate_tree([_span(7, 99, "orphan", 0.1)])
        assert agg == {("orphan",): {"count": 1, "total": 0.1, "max": 0.1}}


class TestHotspots:
    def test_self_time_subtracts_children(self, trace_file):
        rows = {r["name"]: r for r in top_hotspots(load_events(trace_file), 10)}
        assert rows["local_solve"]["self"] == pytest.approx(0.8)
        # rounds: (0.6 - 0.5) + (0.4 - 0.3)
        assert rows["round"]["self"] == pytest.approx(0.2)
        assert rows["run"]["self"] == pytest.approx(0.0)

    def test_k_limits_rows(self, trace_file):
        assert len(top_hotspots(load_events(trace_file), 1)) == 1


class TestRenderReport:
    def test_contains_sections_and_names(self, trace_file):
        text = render_report(trace_file, top=3)
        assert "span tree" in text
        assert "hotspots" in text
        assert "local_solve" in text
        assert "repro.obs/v1" in text
        assert "final simulated time" not in text  # spans carry no sim_time

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        text = render_report(str(path))
        assert "(no span events)" in text
