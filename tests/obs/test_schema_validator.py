"""Tests for the stdlib schema validator itself."""

from __future__ import annotations

import json

from tests.obs import schema_validator as sv


def _valid_span():
    return {
        "type": "span", "name": "round", "span_id": 1, "parent_id": None,
        "t_wall": 1.0, "duration": 0.1, "thread": "MainThread",
        "attrs": {"s": 1}, "sim_time": None,
    }


class TestValidateEvent:
    def test_valid_span_passes(self):
        assert sv.validate_event(_valid_span()) == []

    def test_unknown_type_flagged(self):
        assert sv.validate_event({"type": "mystery"})

    def test_missing_required_field(self):
        span = _valid_span()
        del span["duration"]
        errors = sv.validate_event(span)
        assert any("duration" in e for e in errors)

    def test_wrong_type_flagged(self):
        span = _valid_span()
        span["span_id"] = "one"
        errors = sv.validate_event(span)
        assert any("span_id" in e for e in errors)

    def test_unknown_field_flagged(self):
        span = _valid_span()
        span["surprise"] = 1
        errors = sv.validate_event(span)
        assert any("surprise" in e for e in errors)

    def test_negative_duration_flagged(self):
        span = _valid_span()
        span["duration"] = -0.5
        assert any("negative" in e for e in sv.validate_event(span))

    def test_unregistered_span_name_flagged(self):
        span = _valid_span()
        span["name"] = "my_new_span"
        errors = sv.validate_event(span)
        assert any("unregistered span name" in e for e in errors)

    def test_process_field_allowed_on_spans(self):
        span = _valid_span()
        span["name"] = "local_solve"
        span["process"] = "ForkProcess-1"
        assert sv.validate_event(span) == []

    def test_unregistered_metric_name_flagged(self):
        event = {
            "type": "round_metrics", "round": 1, "sim_time": None,
            "metrics": {
                "fl.surprise.metric": {"kind": "counter", "total": 1.0},
            },
        }
        errors = sv.validate_event(event)
        assert any("unregistered metric name" in e for e in errors)

    def test_keyed_metric_id_resolves_to_base_name(self):
        event = {
            "type": "round_metrics", "round": 1, "sim_time": None,
            "metrics": {
                "obs.monitor.alerts{divergence}": {
                    "kind": "counter", "total": 1.0,
                },
            },
        }
        assert sv.validate_event(event) == []

    def test_histogram_shape_checked(self):
        event = {
            "type": "round_metrics", "round": 1, "sim_time": None,
            "metrics": {
                "h": {"kind": "histogram", "count": 1, "sum": 0.1,
                      "buckets": [1.0, 2.0], "counts": [1, 0]},
            },
        }
        errors = sv.validate_event(event)
        assert any("len(counts)" in e for e in errors)


class TestValidateFile:
    def test_empty_file_is_invalid(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        assert sv.validate_file(str(path))

    def test_first_event_must_be_meta(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_valid_span()) + "\n")
        errors = sv.validate_file(str(path))
        assert any("meta" in e for e in errors)

    def test_cli_main(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as fh:
            fh.write(json.dumps({"type": "meta", "schema": "repro.obs/v1",
                                 "nn_profiling": False}) + "\n")
            fh.write(json.dumps(_valid_span()) + "\n")
        assert sv.main([str(path)]) == 0
        assert sv.main([]) == 2
        path.write_text("garbage\n")
        assert sv.main([str(path)]) == 1
