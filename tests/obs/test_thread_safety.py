"""Satellite: span integrity under the thread-pool executor.

Eight clients solve concurrently across several rounds; every
``local_solve`` span must nest under the *correct* round parent, no
event may be lost, and JSONL output must not interleave.
"""

from __future__ import annotations

import json

from repro.core.local import FedAvgLocalSolver
from repro.datasets import make_synthetic
from repro.fl.client import Client
from repro.fl.executor import ThreadPoolClientExecutor
from repro.models import MultinomialLogisticModel
from repro.obs import JsonlSink, telemetry
from tests.obs.schema_validator import validate_file

NUM_CLIENTS = 8
NUM_ROUNDS = 5


def _make_clients():
    dataset = make_synthetic(
        alpha=1.0, beta=1.0, num_devices=NUM_CLIENTS, num_features=10,
        num_classes=3, min_size=20, max_size=40, seed=3,
    )
    solver = FedAvgLocalSolver(step_size=0.01, num_steps=4, batch_size=8)
    clients = [
        Client(
            d.device_id, d,
            MultinomialLogisticModel(dataset.num_features, dataset.num_classes),
            solver, base_seed=0,
        )
        for d in dataset.devices
    ]
    w0 = MultinomialLogisticModel(
        dataset.num_features, dataset.num_classes
    ).init_parameters(0)
    return clients, w0


def test_spans_nest_under_correct_round_and_none_are_lost(
    memory_session, tmp_path
):
    clients, w0 = _make_clients()
    with ThreadPoolClientExecutor(max_workers=8) as executor:
        for s in range(1, NUM_ROUNDS + 1):
            with telemetry.span("round", s=s):
                results = executor.run_round(clients, w0, s)
            assert len(results) == len(clients)
            assert len(executor.last_client_seconds) == len(clients)

    spans = memory_session.by_type("span")
    rounds = [e for e in spans if e["name"] == "round"]
    solves = [e for e in spans if e["name"] == "local_solve"]

    # nothing lost: one span per (client, round) plus one per round
    assert len(rounds) == NUM_ROUNDS
    assert len(solves) == NUM_CLIENTS * NUM_ROUNDS

    # every local_solve hangs off the round span whose `s` attribute
    # matches the round it was submitted for
    round_by_id = {e["span_id"]: e["attrs"]["s"] for e in rounds}
    for solve in solves:
        assert solve["parent_id"] in round_by_id, "solve span lost its parent"
        assert round_by_id[solve["parent_id"]] == solve["attrs"]["round"]

    # all 8 clients appear in every round, exactly once each
    for s in range(1, NUM_ROUNDS + 1):
        client_ids = sorted(
            e["attrs"]["client"] for e in solves if e["attrs"]["round"] == s
        )
        assert client_ids == sorted(c.client_id for c in clients)

    # counters saw every solve (8 clients x 5 rounds x 4 steps)
    snap = telemetry.metrics.snapshot()
    assert snap["fl.client.local_steps{fedavg}"]["total"] == (
        NUM_CLIENTS * NUM_ROUNDS * 4
    )


def test_jsonl_lines_do_not_interleave_across_threads(tmp_path):
    clients, w0 = _make_clients()
    path = tmp_path / "threads.jsonl"
    telemetry.configure([JsonlSink(str(path))])
    try:
        with ThreadPoolClientExecutor(max_workers=8) as executor:
            for s in range(1, NUM_ROUNDS + 1):
                with telemetry.span("round", s=s):
                    executor.run_round(clients, w0, s)
    finally:
        telemetry.shutdown()

    # every line parses and passes schema validation => no torn writes
    assert validate_file(str(path)) == []
    with open(path) as fh:
        names = [
            json.loads(line).get("name")
            for line in fh
            if json.loads(line).get("type") == "span"
        ]
    assert names.count("local_solve") == NUM_CLIENTS * NUM_ROUNDS
    assert names.count("round") == NUM_ROUNDS
