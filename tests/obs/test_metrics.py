"""Tests for the metrics registry (counters, gauges, histograms, deltas)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        reg = MetricsRegistry()
        reg.counter_add("evals", 3)
        reg.counter_add("evals", 2.5)
        assert reg.snapshot()["evals"]["total"] == 5.5

    def test_keys_are_separate_series(self):
        reg = MetricsRegistry()
        reg.counter_add("steps", 1, key="sarah")
        reg.counter_add("steps", 2, key="svrg")
        snap = reg.snapshot()
        assert snap["steps{sarah}"]["total"] == 1.0
        assert snap["steps{svrg}"]["total"] == 2.0

    def test_negative_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter_add("c", -1)


class TestGauge:
    def test_tracks_last_min_max_mean(self):
        reg = MetricsRegistry()
        for v in (2.0, 0.5, 1.0):
            reg.gauge_set("theta", v)
        snap = reg.snapshot()["theta"]
        assert snap["last"] == 1.0
        assert snap["min"] == 0.5
        assert snap["max"] == 2.0
        assert snap["mean"] == pytest.approx(3.5 / 3)
        assert snap["count"] == 3


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        # <=1, <=10, overflow
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_registry_observe_custom_buckets(self):
        reg = MetricsRegistry()
        reg.observe("dist", 0.3, buckets=(0.25, 0.5, 1.0))
        snap = reg.snapshot()["dist"]
        assert snap["counts"] == [0, 1, 0, 0]


class TestDelta:
    def test_counter_and_histogram_differenced(self):
        reg = MetricsRegistry()
        reg.counter_add("c", 5)
        reg.observe("h", 0.1)
        base = reg.snapshot()
        reg.counter_add("c", 7)
        reg.observe("h", 0.2)
        delta = MetricsRegistry.delta(reg.snapshot(), base)
        assert delta["c"]["total"] == 7.0
        assert delta["h"]["count"] == 1
        assert delta["h"]["sum"] == pytest.approx(0.2)

    def test_untouched_metrics_absent_from_delta(self):
        reg = MetricsRegistry()
        reg.counter_add("c", 5)
        base = reg.snapshot()
        delta = MetricsRegistry.delta(reg.snapshot(), base)
        assert delta == {}

    def test_gauge_passes_through_current_level(self):
        reg = MetricsRegistry()
        reg.gauge_set("g", 1.0)
        base = reg.snapshot()
        reg.gauge_set("g", 3.0)
        delta = MetricsRegistry.delta(reg.snapshot(), base)
        assert delta["g"]["last"] == 3.0


class TestThreadSafety:
    def test_concurrent_counter_adds_lose_nothing(self):
        reg = MetricsRegistry()
        n_threads, n_adds = 8, 500

        def work():
            for _ in range(n_adds):
                reg.counter_add("hits")
                reg.observe("lat", 0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["hits"]["total"] == n_threads * n_adds
        assert snap["lat"]["count"] == n_threads * n_adds


class TestRows:
    def test_to_rows_headline_values(self):
        reg = MetricsRegistry()
        reg.counter_add("c", 4)
        reg.gauge_set("g", 2.0)
        reg.observe("h", 1.0, buckets=(10.0,))
        rows = {r["metric"]: r for r in reg.to_rows()}
        assert rows["c"]["value"] == 4.0
        assert rows["g"]["value"] == 2.0
        assert rows["h"]["value"] == 1.0  # histogram headline = mean
